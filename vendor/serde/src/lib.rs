//! Offline placeholder for the [`serde`](https://crates.io/crates/serde)
//! crate.
//!
//! The build environment cannot reach a cargo registry, so the
//! `serde` entry in `[workspace.dependencies]` resolves here. The derive
//! macros cannot be stubbed without a proc-macro toolchain dependency, so
//! the workspace's wire protocol (`tsa-service::json`) is hand-rolled
//! NDJSON instead; nothing currently uses these traits. They exist so
//! future code (and the workspace manifest) keep a stable name to hang
//! real serde support on when a registry is reachable.

/// Marker for types that can be serialized (no-op placeholder).
pub trait Serialize {}

/// Marker for types that can be deserialized (no-op placeholder).
pub trait Deserialize<'de> {}
