//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Provides the macro/API surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`/`bench_with_input`, `Throughput`, `BenchmarkId`,
//! [`black_box`] — with a simple measurement loop: warm-up, then
//! `sample_size` timed samples, reporting median / mean / throughput to
//! stdout. No statistical regression analysis, HTML reports, or
//! command-line filtering.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements per iteration (reported as Kelem/s etc.).
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Measurement configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Samples per benchmark (minimum 2).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let cfg = self.clone();
        run_one(&cfg, None, &id.into().id, None, f);
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set per-iteration throughput for subsequent benches in the group.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Samples per benchmark for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let cfg = self.criterion.clone();
        run_one(&cfg, Some(&self.name), &id.into().id, self.throughput, f);
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let cfg = self.criterion.clone();
        run_one(
            &cfg,
            Some(&self.name),
            &id.into().id,
            self.throughput,
            |b| f(b, input),
        );
    }

    /// Finish the group (prints nothing extra; exists for API parity).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, running it `self.iters` times.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(
    cfg: &Criterion,
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };

    // Warm up and estimate a per-iteration cost.
    let mut iters = 1u64;
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_secs(1);
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed > Duration::ZERO {
            per_iter = b.elapsed / iters as u32;
        }
        if warm_start.elapsed() >= cfg.warm_up_time {
            break;
        }
        if b.elapsed < Duration::from_millis(1) {
            iters = iters.saturating_mul(2);
        }
    }

    // Pick an iteration count so all samples fit the measurement budget.
    let budget_per_sample = cfg.measurement_time / cfg.sample_size as u32;
    let iters_per_sample = if per_iter.is_zero() {
        1_000
    } else {
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut samples: Vec<Duration> = (0..cfg.sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed / iters_per_sample as u32
        })
        .collect();
    samples.sort_unstable();

    let median = samples[samples.len() / 2];
    let mean: Duration = samples.iter().sum::<Duration>() / samples.len() as u32;
    let thr = throughput
        .map(|t| {
            let (units, label) = match t {
                Throughput::Elements(n) => (n as f64, "elem/s"),
                Throughput::Bytes(n) => (n as f64, "B/s"),
            };
            let per_sec = units / median.as_secs_f64().max(f64::MIN_POSITIVE);
            format!("  {} {label}", human_rate(per_sec))
        })
        .unwrap_or_default();
    println!(
        "bench {full:<48} median {median:>12?}  mean {mean:>12?}  ({} samples x {iters_per_sample} iters){thr}",
        samples.len(),
    );
}

fn human_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.3}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3}K", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

/// Declare a benchmark group: either form the real crate accepts.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(100));
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            ran += 1;
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn rates_humanize() {
        assert_eq!(human_rate(1.5e9), "1.500G");
        assert_eq!(human_rate(2.5e6), "2.500M");
        assert_eq!(human_rate(3.0e3), "3.000K");
        assert_eq!(human_rate(12.0), "12.0");
    }
}
