//! Distributions: the `Standard` distribution and `WeightedIndex`.

use crate::{Rng, RngCore};
use std::borrow::Borrow;
use std::fmt;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution per type: uniform over the domain for
/// integers, `[0, 1)` for floats, fair for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Error constructing a [`WeightedIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightedError {
    /// No weights were provided.
    NoItem,
    /// A weight was negative or not finite.
    InvalidWeight,
    /// All weights are zero.
    AllWeightsZero,
}

impl fmt::Display for WeightedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightedError::NoItem => write!(f, "no weights provided"),
            WeightedError::InvalidWeight => write!(f, "weight is negative or not finite"),
            WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Samples indices `0..n` proportionally to a weight per index.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedIndex {
    /// Cumulative weights; `cumulative.last() == total`.
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    /// Build from any iterator of `f64`-borrowable weights.
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: Borrow<f64>,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w = *w.borrow();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(WeightedIndex { cumulative, total })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        // Uniform in [0, total); strictly below, so a trailing
        // zero-weight item is never selected.
        let x = rng.gen::<f64>() * self.total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("weights are finite"))
        {
            // Landing exactly on a cumulative boundary belongs to the
            // *next* index (half-open intervals).
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn rejects_bad_weights() {
        assert_eq!(
            WeightedIndex::new(Vec::<f64>::new()),
            Err(WeightedError::NoItem)
        );
        assert_eq!(
            WeightedIndex::new([1.0, -0.5]).unwrap_err(),
            WeightedError::InvalidWeight
        );
        assert_eq!(
            WeightedIndex::new([0.0, 0.0]).unwrap_err(),
            WeightedError::AllWeightsZero
        );
        assert_eq!(
            WeightedIndex::new([f64::NAN]).unwrap_err(),
            WeightedError::InvalidWeight
        );
    }

    #[test]
    fn zero_weight_items_never_sampled() {
        let d = WeightedIndex::new([0.0, 1.0, 0.0, 1.0]).unwrap();
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let i = d.sample(&mut r);
            assert!(i == 1 || i == 3, "sampled zero-weight index {i}");
        }
    }

    #[test]
    fn proportions_are_respected() {
        let d = WeightedIndex::new([1.0, 3.0]).unwrap();
        let mut r = StdRng::seed_from_u64(2);
        let ones = (0..100_000).filter(|_| d.sample(&mut r) == 1).count();
        assert!((73_000..77_000).contains(&ones), "{ones}");
    }
}
