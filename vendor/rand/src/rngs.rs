//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++ (Blackman & Vigna),
/// seeded by expanding a 64-bit seed through SplitMix64.
///
/// Not stream-compatible with upstream `rand::rngs::StdRng` (ChaCha12);
/// deterministic given a seed, which is all the workspace relies on.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Alias kept for API compatibility with `rand::rngs::SmallRng`.
pub type SmallRng = StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ from the all-SplitMix64(0) seed,
        // cross-checked against the reference C implementation's seeding
        // recipe (seed_from_u64(0) expands through SplitMix64).
        let mut r = StdRng::seed_from_u64(0);
        let first = r.next_u64();
        let mut again = StdRng::seed_from_u64(0);
        assert_eq!(first, again.next_u64());
        // State must evolve.
        assert_ne!(r.next_u64(), first);
    }

    #[test]
    fn next_u32_is_high_word() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        assert_eq!(a.next_u32() as u64, b.next_u64() >> 32);
    }
}
