//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access to a cargo registry, so the
//! workspace vendors the *API subset it actually uses* — `StdRng`,
//! `SeedableRng::seed_from_u64`, the `Rng` convenience methods
//! (`gen`, `gen_range`, `gen_bool`), and
//! `distributions::{Distribution, WeightedIndex}` — implemented on a
//! xoshiro256++ generator seeded through SplitMix64.
//!
//! It is **not** stream-compatible with upstream `rand`: sequences drawn
//! from a given seed differ from the real crate's. Everything in this
//! workspace only relies on *determinism given a seed* and reasonable
//! statistical quality, both of which hold.

pub mod distributions;
pub mod rngs;

/// Low-level generator interface: a source of random `u32`/`u64` words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (expanded internally via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, integers uniform over the full domain,
    /// `bool` fair).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        self.gen::<f64>() < p
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample one value uniformly from itself.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` by Lemire's multiply-shift with rejection
/// to avoid modulo bias.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        // `u64::MAX % bound + 1` may overflow only when bound is a power
        // of two dividing 2^64, where every low word is acceptable.
        let threshold = bound.wrapping_neg() % bound;
        if lo >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64_below(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
        assert!((0..1000).all(|_| !r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut r = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 11];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
