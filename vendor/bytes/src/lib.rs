//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes)
//! crate: the `BytesMut` growable buffer and the `BufMut` write trait, in
//! the subset this workspace uses, backed by a plain `Vec<u8>`. The real
//! crate's zero-copy splitting is not needed here.

use std::ops::{Deref, DerefMut};

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// New empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Copy out as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }

    /// Clear the buffer, keeping capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Append from a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Consume into the backing `Vec<u8>`.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> Self {
        BytesMut { buf }
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Self {
        b.buf
    }
}

/// Write access to a growable buffer.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, b: u8);
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.buf.push(b);
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_accumulate_in_order() {
        let mut b = BytesMut::new();
        b.put_u8(b'>');
        b.put_slice(b"id");
        b.put_u8(b'\n');
        assert_eq!(b.to_vec(), b">id\n");
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
    }

    #[test]
    fn deref_and_conversions() {
        let mut b = BytesMut::from(vec![1, 2, 3]);
        b[0] = 9;
        assert_eq!(&*b, &[9, 2, 3]);
        let v: Vec<u8> = b.into();
        assert_eq!(v, vec![9, 2, 3]);
    }
}
