//! Multi-producer multi-consumer channels.
//!
//! Semantics mirror `crossbeam-channel`:
//! * both [`Sender`] and [`Receiver`] are `Clone`;
//! * a channel disconnects when *all* senders or *all* receivers drop;
//! * receivers drain buffered messages even after disconnection, then
//!   observe [`RecvError`];
//! * `send` on a full bounded channel blocks; `try_send` reports
//!   [`TrySendError::Full`] instead.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Error on [`Sender::send`]: every receiver is gone. Returns the
/// unsendable message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Error on [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is bounded and at capacity.
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

impl<T: fmt::Debug> std::error::Error for TrySendError<T> {}

/// Error on [`Receiver::recv`]: the channel is empty and every sender is
/// gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error on [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing buffered right now.
    Empty,
    /// Nothing buffered and every sender is gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "receiving on an empty channel"),
            TryRecvError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error on [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with nothing buffered.
    Timeout,
    /// Nothing buffered and every sender is gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Signaled when a message arrives or the last sender drops.
    not_empty: Condvar,
    /// Signaled when space frees up or the last receiver drops.
    not_full: Condvar,
    /// `None` = unbounded.
    cap: Option<usize>,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half; clone freely.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; clone freely (messages go to whichever clone
/// receives first).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// An unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_cap(None)
}

/// A bounded FIFO channel; `send` blocks when `cap` messages are queued.
///
/// # Panics
/// Panics on `cap == 0`: the real crate's rendezvous channels are not
/// implemented in this stand-in, and nothing in the workspace uses them.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "zero-capacity (rendezvous) channels unsupported");
    with_cap(Some(cap))
}

fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        cap,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Send, blocking while a bounded channel is full.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            match self.shared.cap {
                Some(cap) if st.queue.len() >= cap => {
                    st = self
                        .shared
                        .not_full
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                _ => break,
            }
        }
        st.queue.push_back(msg);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Send without blocking; a full bounded channel reports
    /// [`TrySendError::Full`].
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut st = self.shared.lock();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.shared.cap {
            if st.queue.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        st.queue.push_back(msg);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// `true` if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let last = {
            let mut st = self.shared.lock();
            st.senders -= 1;
            st.senders == 0
        };
        if last {
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receive, blocking until a message or disconnection.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.lock();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .shared
                .not_empty
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.lock();
        if let Some(msg) = st.queue.pop_front() {
            drop(st);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receive, giving up after `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.lock();
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (g, _) = self
                .shared
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = g;
        }
    }

    /// Messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// `true` if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain whatever is buffered right now into an iterator, without
    /// blocking.
    pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.try_recv().ok())
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let last = {
            let mut st = self.shared.lock();
            st.receivers -= 1;
            st.receivers == 0
        };
        if last {
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
    }

    #[test]
    fn bounded_send_blocks_until_space() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2).unwrap());
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_timeout_expires() {
        let (tx, rx) = unbounded::<i32>();
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn mpmc_delivers_every_message_exactly_once() {
        let (tx, rx) = unbounded::<usize>();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..250 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<usize> = (0..4)
            .flat_map(|p| (0..250).map(move |i| p * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }
}
