//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate: the `channel` module's MPMC channels in the subset this
//! workspace uses (`unbounded`, `bounded`, clone-able senders *and*
//! receivers, blocking/timeout/non-blocking receive, non-blocking send,
//! disconnect-on-drop semantics). Built on `Mutex` + `Condvar` rather
//! than lock-free queues — slower than real crossbeam under heavy
//! contention, identical in semantics.

pub mod channel;
