//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate: `Mutex`, `RwLock`, and `Condvar` with parking_lot's ergonomics
//! (no poisoning, guards returned directly) implemented as thin wrappers
//! over `std::sync`. A panicked holder simply releases the lock, matching
//! parking_lot semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock; `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a [`Condvar::wait_for`]: did the wait time out?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable with parking_lot's `&mut guard` API.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, atomically releasing the mutex while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(guard, |g| {
            self.inner.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_guard(guard, |g| {
            let (g, res) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// Run `f` with ownership of the std guard held inside `guard`, writing
/// the returned guard back in place. std's condvar consumes the guard by
/// value while parking_lot's takes `&mut`; this bridges the two. `f` must
/// return a live guard for the same mutex (both closures above do: wait
/// re-acquires before returning). If `f` unwinds, the process state is a
/// duplicated guard — we abort-by-unwind before the duplicate can be
/// observed, since `f` here never unwinds (poison is unwrapped inside).
fn take_guard<'a, T>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T>,
) {
    unsafe {
        let inner = std::ptr::read(&guard.inner);
        let new = f(inner);
        std::ptr::write(&mut guard.inner, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_guards_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(5);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 10);
        drop((r1, r2));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn lock_released_after_holder_panics() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poisoning attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, lock still usable.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let res = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(res.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }
}
