//! Parallel iterators over slices and integer ranges.

use crate::run_chunked;
use std::ops::Range;

/// `.par_iter()` on a borrowed collection (slices and `Vec` here).
pub trait IntoParallelRefIterator<'a> {
    /// The parallel iterator type.
    type Iter;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter {
            slice: self,
            min_len: 1,
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        self.as_slice().par_iter()
    }
}

/// `.into_par_iter()` on an owned collection (integer ranges here).
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// The parallel iterator type.
    type Iter;
    /// Consuming parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    slice: &'a [T],
    min_len: usize,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Lower bound on items per spawned task (limits task granularity).
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Run `f` on every item, in parallel across chunks.
    pub fn for_each(self, f: impl Fn(&'a T) + Sync) {
        let slice = self.slice;
        run_chunked(slice.len(), self.min_len, |lo, hi| {
            for item in &slice[lo..hi] {
                f(item);
            }
        });
    }

    /// Map every item and collect into a `Vec`, preserving order.
    pub fn map<O: Send>(
        self,
        f: impl Fn(&'a T) -> O + Sync,
    ) -> ParMap<'a, T, impl Fn(&'a T) -> O + Sync> {
        ParMap {
            slice: self.slice,
            min_len: self.min_len,
            f,
        }
    }
}

/// Result of [`ParIter::map`]; terminate with [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    min_len: usize,
    f: F,
}

impl<'a, T: Sync, O: Send, F: Fn(&'a T) -> O + Sync> ParMap<'a, T, F> {
    /// Evaluate in parallel, preserving input order.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        let slice = self.slice;
        let f = &self.f;
        let mut out: Vec<Option<O>> = Vec::with_capacity(slice.len());
        out.resize_with(slice.len(), || None);
        {
            let cells = as_send_cells(&mut out);
            run_chunked(slice.len(), self.min_len, |lo, hi| {
                for i in lo..hi {
                    // SAFETY: each index is written by exactly one chunk.
                    unsafe { (*cells[i].get()) = Some(f(&slice[i])) };
                }
            });
        }
        out.into_iter()
            .map(|o| o.expect("all chunks ran"))
            .collect()
    }
}

/// View a `&mut [T]` as shareable cells for disjoint parallel writes.
fn as_send_cells<T>(v: &mut [Option<T>]) -> &[SyncCell<Option<T>>] {
    // SAFETY: SyncCell is repr(transparent) over UnsafeCell<Option<T>>,
    // and callers write disjoint indices only.
    unsafe { &*(v as *mut [Option<T>] as *const [SyncCell<Option<T>>]) }
}

#[repr(transparent)]
struct SyncCell<T>(std::cell::UnsafeCell<T>);

unsafe impl<T: Send> Sync for SyncCell<T> {}

impl<T> SyncCell<T> {
    fn get(&self) -> *mut T {
        self.0.get()
    }
}

/// Parallel iterator over an integer range.
pub struct ParRange<T> {
    range: Range<T>,
    min_len: usize,
}

macro_rules! impl_par_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = ParRange<$t>;
            fn into_par_iter(self) -> ParRange<$t> {
                ParRange { range: self, min_len: 1 }
            }
        }

        impl ParRange<$t> {
            /// Lower bound on items per spawned task.
            pub fn with_min_len(mut self, min_len: usize) -> Self {
                self.min_len = min_len.max(1);
                self
            }

            /// Run `f` on every index, in parallel across chunks.
            pub fn for_each(self, f: impl Fn($t) + Sync) {
                let start = self.range.start;
                let len = (self.range.end.saturating_sub(start)) as usize;
                run_chunked(len, self.min_len, |lo, hi| {
                    for i in lo..hi {
                        f(start + i as $t);
                    }
                });
            }

            /// Sum every index, in parallel across chunks.
            pub fn sum<S>(self) -> S
            where
                S: Send + std::iter::Sum<$t> + std::iter::Sum<S>,
            {
                let start = self.range.start;
                let len = (self.range.end.saturating_sub(start)) as usize;
                let partials = std::sync::Mutex::new(Vec::<S>::new());
                run_chunked(len, self.min_len, |lo, hi| {
                    let s: S = (lo..hi).map(|i| start + i as $t).sum();
                    partials.lock().unwrap().push(s);
                });
                partials.into_inner().unwrap().into_iter().sum()
            }
        }
    )*};
}

impl_par_range!(u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..5000u64).collect();
        let doubled: Vec<u64> = v.par_iter().with_min_len(16).map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..5000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_inputs_are_noops() {
        let v: Vec<u8> = Vec::new();
        v.par_iter().for_each(|_| panic!("no items"));
        (0..0u32).into_par_iter().for_each(|_| panic!("no items"));
    }

    #[test]
    fn range_offsets_apply() {
        let hits = std::sync::Mutex::new(Vec::new());
        (10..20usize)
            .into_par_iter()
            .for_each(|i| hits.lock().unwrap().push(i));
        let mut got = hits.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, (10..20).collect::<Vec<_>>());
    }
}
