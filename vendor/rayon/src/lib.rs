//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon)
//! crate.
//!
//! Implements, with *real* thread parallelism over `std::thread::scope`,
//! exactly the API subset this workspace uses:
//!
//! * `slice.par_iter().with_min_len(n).for_each(f)`;
//! * `range.into_par_iter().for_each(f)` / `.sum()`;
//! * [`join`] for fork-join recursion (with a spawn-depth budget so deep
//!   recursion degrades to sequential instead of exploding the thread
//!   count);
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — a pool here is a
//!   *concurrency limit* scoped to the `install` call, not a set of
//!   pre-spawned workers;
//! * [`current_num_threads`].
//!
//! Work executes on freshly scoped threads per parallel call rather than
//! a work-stealing pool; for the plane/tile-sized chunks this workspace
//! dispatches, spawn cost is dwarfed by kernel cost. Panics from worker
//! closures propagate to the caller like real rayon.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

mod par_iter;

pub use par_iter::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParRange};

/// Everything needed for `.par_iter()` / `.into_par_iter()` call sites.
pub mod prelude {
    pub use crate::par_iter::{IntoParallelIterator, IntoParallelRefIterator};
}

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Worker threads parallel calls on this thread currently target:
/// the innermost `ThreadPool::install` scope, else the
/// `build_global` setting, else the hardware parallelism.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(Cell::get);
    if installed > 0 {
        return installed;
    }
    match GLOBAL_THREADS.load(Ordering::Relaxed) {
        0 => hardware_threads(),
        n => n,
    }
}

/// Error from [`ThreadPoolBuilder::build`]. Never actually produced by
/// this stand-in; exists so `build().unwrap()` call sites compile.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Target worker count (0 = hardware parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build a scoped concurrency limit.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                hardware_threads()
            } else {
                self.num_threads
            },
        })
    }

    /// Set the process-global default worker count.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// A concurrency limit applied to parallel calls made under
/// [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count as the limit for nested
    /// parallel calls on this thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = INSTALLED_THREADS.with(|c| c.replace(self.num_threads));
        // Restore on unwind too, so a panicking closure does not leak the
        // override into unrelated code on this thread.
        struct Reset(usize);
        impl Drop for Reset {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _reset = Reset(prev);
        f()
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Live threads spawned by [`join`] across the process; bounds fork-join
/// recursion.
static ACTIVE_JOIN_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Run both closures, potentially in parallel, returning both results.
///
/// `b` runs on a scoped thread when the process-wide spawn budget
/// (4 × hardware threads) has headroom, otherwise inline — deep
/// recursion degrades gracefully to sequential execution.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let budget = hardware_threads() * 4;
    let claimed = ACTIVE_JOIN_THREADS
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
            (n < budget).then_some(n + 1)
        })
        .is_ok();
    if !claimed {
        return (a(), b());
    }
    struct Release;
    impl Drop for Release {
        fn drop(&mut self) {
            ACTIVE_JOIN_THREADS.fetch_sub(1, Ordering::Relaxed);
        }
    }
    std::thread::scope(|s| {
        let hb = s.spawn(move || {
            let _release = Release;
            b()
        });
        let ra = a();
        // Scope propagates the panic if `b` panicked.
        let rb = match hb.join() {
            Ok(rb) => rb,
            Err(p) => std::panic::resume_unwind(p),
        };
        (ra, rb)
    })
}

/// Execute `body(lo, hi)` over `0..len` split into chunks of at least
/// `min_len`, using up to [`current_num_threads`] scoped threads. The
/// `lo == 0` chunk runs on the calling thread.
pub(crate) fn run_chunked(len: usize, min_len: usize, body: impl Fn(usize, usize) + Sync) {
    if len == 0 {
        return;
    }
    let threads = current_num_threads().max(1);
    let chunk = len.div_ceil(threads).max(min_len).max(1);
    let n_chunks = len.div_ceil(chunk);
    if n_chunks <= 1 || threads == 1 {
        body(0, len);
        return;
    }
    let body = &body;
    std::thread::scope(|s| {
        for c in 1..n_chunks {
            let lo = c * chunk;
            let hi = (lo + chunk).min(len);
            s.spawn(move || body(lo, hi));
        }
        body(0, chunk.min(len));
    });
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn par_iter_visits_every_item_once() {
        let items: Vec<usize> = (0..10_000).collect();
        let seen = Mutex::new(HashSet::new());
        items.par_iter().with_min_len(64).for_each(|&i| {
            assert!(seen.lock().unwrap().insert(i), "duplicate visit {i}");
        });
        assert_eq!(seen.lock().unwrap().len(), items.len());
    }

    #[test]
    fn range_for_each_and_sum() {
        let total = Mutex::new(0u64);
        (0..1000u64).into_par_iter().for_each(|i| {
            *total.lock().unwrap() += i;
        });
        assert_eq!(*total.lock().unwrap(), 499_500);
        let s: u64 = (0..1000u64).into_par_iter().sum();
        assert_eq!(s, 499_500);
        let s2: usize = (0..0usize).into_par_iter().sum();
        assert_eq!(s2, 0);
    }

    #[test]
    fn join_returns_both_and_runs_nested() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(fib(16), 987);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn install_restores_after_panic() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let before = current_num_threads();
        let _ = std::panic::catch_unwind(|| pool.install(|| panic!("boom")));
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn worker_panic_propagates() {
        let items = [1, 2, 3];
        let r = std::panic::catch_unwind(|| {
            items
                .par_iter()
                .with_min_len(1)
                .for_each(|_| panic!("kernel"));
        });
        assert!(r.is_err());
    }
}
