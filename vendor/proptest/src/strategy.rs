//! Value-generation strategies (no shrinking).

use std::ops::{Range, RangeInclusive};

/// Deterministic generator (SplitMix64) driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound > 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; bias is negligible for test-case generation.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (**self).gen_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).gen_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Weighted union built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` pairs.
    ///
    /// # Panics
    /// Panics if empty or all weights are zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { options, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.below(self.total);
        for (w, s) in &self.options {
            if roll < *w as u64 {
                return s.gen_value(rng);
            }
            roll -= *w as u64;
        }
        unreachable!("roll bounded by total weight");
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // Dividing by (2^53 - 1) makes the top value reachable.
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5),
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn gen_value(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|i| self[i].gen_value(rng))
    }
}

/// Types with a canonical "anything goes" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Length bounds for [`vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// Strategy for `Vec<T>` with a random length in the size range.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `prop::collection::vec(element, sizes)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// Strategy that picks one of the given values uniformly.
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    choices: Vec<T>,
}

/// `prop::sample::select(choices)`.
///
/// # Panics
/// Panics if `choices` is empty.
pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
    assert!(!choices.is_empty(), "select from an empty set");
    Select { choices }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.choices[rng.below(self.choices.len() as u64) as usize].clone()
    }
}

/// String literals are regex-subset strategies: literal characters,
/// character classes (`[a-z0-9_.:-]`), and quantifiers `{n}`, `{m,n}`,
/// `?`, `*`, `+` (the latter two capped at 8 repetitions). Groups and
/// alternation are not supported — extend this when a test needs them.
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse_pattern(pattern);
    let mut out = String::new();
    for (choices, lo, hi) in atoms {
        let reps = lo + rng.below((hi - lo) as u64 + 1) as usize;
        for _ in 0..reps {
            out.push(choices[rng.below(choices.len() as u64) as usize]);
        }
    }
    out
}

/// Each atom: (allowed characters, min repetitions, max repetitions).
fn parse_pattern(pattern: &str) -> Vec<(Vec<char>, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"))
                    + i;
                let class = expand_class(&chars[i + 1..close], pattern);
                i = close + 1;
                class
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 2;
                vec![c]
            }
            '(' | ')' | '|' => panic!(
                "pattern {pattern:?}: groups/alternation unsupported by the vendored proptest stand-in"
            ),
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier lower bound"),
                        hi.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(lo <= hi, "bad quantifier in pattern {pattern:?}");
        atoms.push((choices, lo, hi));
    }
    atoms
}

fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(!body.is_empty(), "empty character class in {pattern:?}");
    assert!(
        body[0] != '^',
        "negated classes unsupported by the vendored proptest stand-in ({pattern:?})"
    );
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        // `a-z` range, unless '-' is first/last (then it is a literal).
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted class range in {pattern:?}");
            for c in lo..=hi {
                out.push(c);
            }
            i += 3;
        } else if body[i] == '\\' && i + 1 < body.len() {
            out.push(body[i + 1]);
            i += 2;
        } else {
            out.push(body[i]);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(42)
    }

    #[test]
    fn regex_class_with_trailing_dash_and_colon() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[A-Za-z0-9_.:-]{1,12}".gen_value(&mut r);
            assert!(!s.is_empty() && s.len() <= 12, "{s:?}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || "_.:-".contains(c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn regex_quantifiers() {
        let mut r = rng();
        assert_eq!("abc".gen_value(&mut r), "abc");
        assert_eq!("a{3}".gen_value(&mut r), "aaa");
        for _ in 0..50 {
            let s = "x?y+".gen_value(&mut r);
            assert!(s.ends_with('y'));
            assert!(s.len() <= 9);
        }
    }

    #[test]
    fn union_respects_zero_weight() {
        let u = Union::new(vec![(0u32, Just(1u8).boxed()), (5, Just(2u8).boxed())]);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(u.gen_value(&mut r), 2);
        }
    }

    #[test]
    fn vec_sizes_within_bounds() {
        let s = vec(0u8..10, 2..5);
        let mut r = rng();
        for _ in 0..200 {
            let v = s.gen_value(&mut r);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn boxed_and_map_compose() {
        let s = (0u8..3).prop_map(|x| x * 10).boxed();
        let mut r = rng();
        for _ in 0..50 {
            assert!([0, 10, 20].contains(&s.gen_value(&mut r)));
        }
    }
}
