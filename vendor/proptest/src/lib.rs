//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Provides the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, strategies for integer/float
//! ranges, tuples, fixed-size arrays, `Just`, `any`, regex-subset string
//! literals, `prop::collection::vec`, `prop::sample::select`, the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!`/`prop_oneof!` macros, and
//! [`ProptestConfig`].
//!
//! Differences from the real crate: no shrinking (a failing case panics
//! with the generated inputs' case number but is not minimized), and the
//! value streams differ. Cases are deterministic per (test name, case
//! index), so failures reproduce run-to-run.

pub mod strategy;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, TestRng};

/// Runner configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; these DP-heavy properties run
        // unoptimized under `cargo test`, so keep the default moderate.
        ProptestConfig { cases: 96 }
    }
}

/// Namespaced strategy constructors (`prop::collection`, `prop::sample`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::{vec, SizeRange, VecStrategy};
    }
    /// Sampling strategies.
    pub mod sample {
        pub use crate::strategy::{select, Select};
    }
}

/// The glob-import surface tests use.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{prop, ProptestConfig};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Deterministic per-test seed: FNV-1a over the test path string.
#[doc(hidden)]
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop_holds(x in 0usize..10, v in prop::collection::vec(any::<u8>(), 0..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut __proptest_rng =
                        $crate::TestRng::new(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)));
                    $(
                        let $arg = $crate::Strategy::gen_value(&($strat), &mut __proptest_rng);
                    )+
                    // Name the case in panics so a failure is reproducible
                    // (same name + case index regenerates the inputs).
                    let run = move || $body;
                    run();
                }
            }
        )*
    };
}

/// Assert inside a property; panics (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Weighted union of strategies producing the same value type.
///
/// `prop_oneof![3 => a(), 1 => b()]` or `prop_oneof![a(), b()]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_differ_by_name_and_are_stable() {
        assert_ne!(crate::seed_for("a::x"), crate::seed_for("a::y"));
        assert_eq!(crate::seed_for("a::x"), crate::seed_for("a::x"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 5usize..10, y in -3i32..=3, f in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-3..=3).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_select_compose(
            v in prop::collection::vec(prop::sample::select(vec![1u8, 2, 3]), 2..=6),
        ) {
            prop_assert!(v.len() >= 2 && v.len() <= 6);
            prop_assert!(v.iter().all(|x| [1, 2, 3].contains(x)));
        }

        #[test]
        fn oneof_map_just_and_regex(
            e in prop_oneof![3 => (1u8..5).prop_map(Some), 1 => Just(None)],
            s in "[ab]{2,4}",
            raw in any::<u8>(),
        ) {
            if let Some(x) = e {
                prop_assert!((1..5).contains(&x));
            }
            prop_assert!(s.len() >= 2 && s.len() <= 4);
            prop_assert!(s.bytes().all(|b| b == b'a' || b == b'b'));
            let _ = raw;
        }

        #[test]
        fn tuples_and_arrays(
            pair in (0u8..4, "x{1,2}"),
            trio in [0u8..2, 0u8..2, 0u8..2],
        ) {
            prop_assert!(pair.0 < 4);
            prop_assert!(!pair.1.is_empty());
            prop_assert!(trio.iter().all(|&b| b < 2));
        }
    }
}
