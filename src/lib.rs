//! # three-seq-align
//!
//! A production-quality reproduction of *"Efficient Parallel Algorithm for
//! Optimal Three-Sequences Alignment"* (Lin, Huang, Chung & Tang, ICPP 2007):
//! exact, optimal three-sequence global alignment under sum-of-pairs scoring,
//! computed by 3-dimensional dynamic programming and parallelized over
//! anti-diagonal wavefront planes.
//!
//! This facade crate re-exports the workspace's public API. See the
//! individual crates for detail:
//!
//! * [`seq`] (`tsa-seq`) — sequences, FASTA, workload generation;
//! * [`scoring`] (`tsa-scoring`) — substitution matrices, gap models,
//!   sum-of-pairs scoring;
//! * [`wavefront`] (`tsa-wavefront`) — generic wavefront scheduling;
//! * [`pairwise`] (`tsa-pairwise`) — 2-sequence baselines and components;
//! * [`core`] (`tsa-core`) — the three-sequence aligners themselves;
//! * [`msa`] (`tsa-msa`) — progressive k-sequence alignment on the same
//!   substrate;
//! * [`perfmodel`] (`tsa-perfmodel`) — the analytic speedup model;
//! * [`service`] (`tsa-service`) — the embeddable batch alignment service
//!   (bounded queue, worker pool, result cache, NDJSON protocol).
//!
//! ## Quickstart
//!
//! ```
//! use three_seq_align::prelude::*;
//!
//! let a = Seq::dna("GATTACA").unwrap();
//! let b = Seq::dna("GATACA").unwrap();
//! let c = Seq::dna("GTTACA").unwrap();
//!
//! let aln = Aligner::new()
//!     .algorithm(Algorithm::Wavefront)
//!     .align3(&a, &b, &c)
//!     .unwrap();
//! assert!(aln.validate(&a, &b, &c).is_ok());
//! println!("score = {}\n{}", aln.score, aln.pretty());
//! ```

pub use tsa_core as core;
pub use tsa_msa as msa;
pub use tsa_pairwise as pairwise;
pub use tsa_perfmodel as perfmodel;
pub use tsa_scoring as scoring;
pub use tsa_seq as seq;
pub use tsa_service as service;
pub use tsa_wavefront as wavefront;

/// The most commonly used items, importable with one `use`.
pub mod prelude {
    pub use tsa_core::{Algorithm, Aligner, Alignment3, Column3};
    pub use tsa_msa::{Msa, MsaBuilder};
    pub use tsa_scoring::{GapModel, Scoring};
    pub use tsa_seq::{family::FamilyConfig, fasta, Alphabet, Seq};
    pub use tsa_service::{AlignRequest, Engine, JobOutcome, ServiceConfig};
}
