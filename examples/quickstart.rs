//! Quickstart: align three short DNA sequences and print the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use three_seq_align::prelude::*;

fn main() {
    let a = Seq::dna("GATTACAGATTACA").unwrap().with_id("A");
    let b = Seq::dna("GATACAGATTAC").unwrap().with_id("B");
    let c = Seq::dna("GTTACAGATCACA").unwrap().with_id("C");

    // Algorithm::Auto picks the parallel wavefront for inputs this small.
    let aln = Aligner::new()
        .scoring(Scoring::dna_default())
        .align3(&a, &b, &c)
        .expect("configuration is valid");

    // Every alignment can be checked against its inputs.
    aln.validate(&a, &b, &c)
        .expect("alignment is structurally sound");

    println!("optimal sum-of-pairs score: {}", aln.score);
    println!(
        "columns: {}, all-match columns: {}",
        aln.len(),
        aln.full_match_columns()
    );
    println!("{}", aln.pretty());

    // The same optimum in O(n²) memory, for when the cube would not fit:
    let dc = Aligner::new()
        .algorithm(Algorithm::ParallelHirschberg)
        .align3(&a, &b, &c)
        .unwrap();
    assert_eq!(dc.score, aln.score);
    println!("(divide-and-conquer agrees: {})", dc.score);
}
