//! Align the bundled tRNA-style sample triple (RNA alphabet, realistic
//! length and composition) and print a Clustal view with conservation
//! marks — the "downstream user with a FASTA file" workflow, end to end.
//!
//! ```text
//! cargo run --release --example trna_family
//! ```

use three_seq_align::core::{format, stats, Algorithm};
use three_seq_align::prelude::*;

const BUNDLED: &str = include_str!("data/trna_family.fasta");

fn main() {
    let seqs = fasta::parse(BUNDLED, Alphabet::Rna).expect("bundled FASTA is valid");
    assert_eq!(seqs.len(), 3);
    let (a, b, c) = (&seqs[0], &seqs[1], &seqs[2]);
    println!(
        "loaded {} / {} / {} nt ({})",
        a.len(),
        b.len(),
        c.len(),
        a.alphabet().name()
    );

    let scoring = Scoring::dna_default(); // match/mismatch works for RNA too
    let aln = Aligner::new()
        .scoring(scoring.clone())
        .algorithm(Algorithm::CarrilloLipman) // exact, pruned
        .align3(a, b, c)
        .expect("valid configuration");
    aln.validate(a, b, c).expect("sound alignment");

    let st = stats::alignment_stats(&aln);
    println!(
        "SP score {} over {} columns; {} full matches, mean pairwise identity {:.2}\n",
        aln.score, st.columns, st.full_match_columns, st.mean_identity
    );

    print!("{}", format::to_clustal(&aln, [a.id(), b.id(), c.id()], 60));

    // Round-trip through aligned FASTA.
    let text = format::to_aligned_fasta(&aln, [a.id(), b.id(), c.id()], 60);
    let (parsed, _) = format::from_aligned_fasta(&text).expect("round trip");
    assert_eq!(parsed.columns, aln.columns);
    println!("\n(aligned-FASTA round trip verified)");
}
