//! Align a synthetic homologous DNA family — the workload the benchmark
//! suite is built on — with every exact algorithm, and show that they
//! agree, how long each takes, and how tight the cheap bounds are.
//!
//! ```text
//! cargo run --release --example dna_family [length]
//! ```

use std::time::Instant;
use three_seq_align::core::{bounds, Algorithm};
use three_seq_align::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(96);

    // A random ancestor mutated into three descendants: 15% substitutions,
    // 5% indels — a realistic divergent triple.
    let family = FamilyConfig::new(n, 0.15, 0.05).generate(2007);
    let (a, b, c) = family.triple();
    println!(
        "family of ancestor length {n}: member lengths {} / {} / {}, mean pairwise identity {:.2}",
        a.len(),
        b.len(),
        c.len(),
        family.mean_pairwise_identity()
    );

    let scoring = Scoring::dna_default();
    let br = bounds::bounds(a, b, c, &scoring);
    println!(
        "cheap bounds: center-star {} ≤ optimum ≤ pairwise-sum {}",
        br.lower, br.upper
    );

    let algorithms: &[(&str, Algorithm)] = &[
        ("sequential full DP", Algorithm::FullDp),
        ("parallel wavefront", Algorithm::Wavefront),
        ("blocked (tile 16)", Algorithm::Blocked { tile: 16 }),
        (
            "dataflow (tile 16)",
            Algorithm::BlockedDataflow {
                tile: 16,
                threads: 4,
            },
        ),
        ("hirschberg (O(n²) mem)", Algorithm::Hirschberg),
        ("parallel hirschberg", Algorithm::ParallelHirschberg),
        ("carrillo-lipman pruned", Algorithm::CarrilloLipman),
        ("banded (adaptive)", Algorithm::BandedAdaptive),
    ];

    let mut reference = None;
    for (name, alg) in algorithms {
        let start = Instant::now();
        let aln = Aligner::new()
            .scoring(scoring.clone())
            .algorithm(*alg)
            .align3(a, b, c)
            .expect("valid configuration");
        let dt = start.elapsed();
        aln.validate(a, b, c).expect("valid alignment");
        assert!(br.contains(aln.score), "score escaped its bounds");
        match reference {
            None => reference = Some(aln.score),
            Some(r) => assert_eq!(r, aln.score, "{name} disagreed"),
        }
        println!(
            "{name:<26} score {:>6}  ({:>8.2} ms)",
            aln.score,
            dt.as_secs_f64() * 1e3
        );
    }
    println!("all exact algorithms agree ✓");
}
