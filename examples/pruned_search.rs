//! Carrillo–Lipman pruning in action: how much of the `O(n³)` lattice an
//! exact aligner really needs to touch, as a function of sequence
//! divergence.
//!
//! ```text
//! cargo run --release --example pruned_search [length]
//! ```

use std::time::Instant;
use three_seq_align::core::{carrillo_lipman, full};
use three_seq_align::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(80);
    let scoring = Scoring::dna_default();

    println!(
        "{:>8} {:>9} {:>12} {:>11} {:>11}",
        "sub rate", "identity", "visited %", "full ms", "pruned ms"
    );
    for rate in [0.02, 0.05, 0.10, 0.20, 0.35, 0.50] {
        let fam = FamilyConfig::new(n, rate, 0.05).generate(4242);
        let (a, b, c) = fam.triple();

        let t0 = Instant::now();
        let reference = full::align_score(a, b, c, &scoring);
        let t_full = t0.elapsed();

        let t0 = Instant::now();
        let (score, stats) = carrillo_lipman::align_score_with_stats(a, b, c, &scoring);
        let t_pruned = t0.elapsed();

        assert_eq!(score, reference, "pruning must preserve the optimum");
        println!(
            "{:>8.2} {:>9.2} {:>12.1} {:>11.2} {:>11.2}",
            rate,
            fam.mean_pairwise_identity(),
            100.0 * stats.visited_fraction(),
            t_full.as_secs_f64() * 1e3,
            t_pruned.as_secs_f64() * 1e3,
        );
    }

    println!(
        "\nThe pruned DP computes only cells whose pairwise-projection upper\n\
         bound reaches the center-star lower bound — for similar sequences\n\
         that is a thin tube around the main diagonal, yet the optimum (and\n\
         even the canonical traceback) is provably unchanged."
    );
}
