//! Beyond three sequences: progressive multiple alignment of a whole
//! family on the same substrate (pairwise distances → UPGMA guide tree →
//! exact profile–profile merges), with the exact three-sequence optimum
//! as a quality yardstick on the first three members.
//!
//! ```text
//! cargo run --release --example progressive_msa [k] [length]
//! ```

use three_seq_align::msa::MsaBuilder;
use three_seq_align::prelude::*;

fn main() {
    let k: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let n: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);

    // k descendants of one ancestor (three per generated family).
    let mut seqs: Vec<Seq> = Vec::with_capacity(k);
    let mut batch = 0u64;
    while seqs.len() < k {
        let fam = FamilyConfig::new(n, 0.12, 0.04).generate(7_000 + batch);
        for m in fam.members {
            if seqs.len() < k {
                seqs.push(m.with_id(format!("seq{}", seqs.len())));
            }
        }
        batch += 1;
    }

    let scoring = Scoring::dna_default();
    let msa = MsaBuilder::new()
        .scoring(scoring.clone())
        .align(&seqs)
        .expect("valid configuration");
    msa.validate(&seqs)
        .expect("alignment de-gaps to its inputs");

    println!(
        "progressive MSA of {k} sequences (~{n} nt): {} columns, SP score {}",
        msa.len(),
        msa.sp_score
    );
    println!("{}\n", msa.pretty());

    // Quality yardstick: on the first three sequences, compare the
    // progressive result with the exact three-sequence optimum.
    let triple = &seqs[..3];
    let progressive3 = MsaBuilder::new()
        .scoring(scoring.clone())
        .align(triple)
        .unwrap();
    let exact3 = MsaBuilder::new()
        .scoring(scoring)
        .exact_triples(true)
        .align(triple)
        .unwrap();
    println!(
        "first three sequences: progressive SP {} vs exact optimum {} ({} lost)",
        progressive3.sp_score,
        exact3.sp_score,
        exact3.sp_score - progressive3.sp_score
    );
    assert!(progressive3.sp_score <= exact3.sp_score);
}
