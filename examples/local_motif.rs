//! Local (Smith–Waterman) three-way alignment: find the best common
//! sub-segment — "motif" — shared by three sequences with unrelated
//! flanks.
//!
//! ```text
//! cargo run --release --example local_motif
//! ```

use three_seq_align::core::local;
use three_seq_align::prelude::*;

fn main() {
    // One conserved motif embedded at different offsets in unrelated
    // flanking sequence.
    let motif = "GATTACACATTAG";
    let mk = |prefix: &str, suffix: &str, id: &str| {
        Seq::dna(format!("{prefix}{motif}{suffix}"))
            .expect("valid DNA")
            .with_id(id)
    };
    let a = mk("TTGGTT", "AACCAAGG", "seq_a");
    let b = mk("CCAACCGGTT", "TT", "seq_b");
    let c = mk("G", "CCGGCCAATT", "seq_c");

    let scoring = Scoring::dna_default();
    let loc = local::align(&a, &b, &c, &scoring);

    println!("local SP score: {}", loc.alignment.score);
    for (r, seq) in [&a, &b, &c].into_iter().enumerate() {
        let (lo, hi) = loc.ranges[r];
        println!("{}: residues {lo}..{hi} of {}", seq.id(), seq.len());
    }
    println!("\naligned segment:\n{}", loc.alignment.pretty());

    // The recovered segment contains the embedded motif (it may extend a
    // little further when flank residues happen to pay their way).
    let segment = String::from_utf8(loc.alignment.degapped_row(0)).expect("ascii");
    assert!(segment.contains(motif), "segment {segment} misses motif");
    assert!(loc.alignment.full_match_columns() >= motif.len());

    // Contrast with the global aligner, which must pay for the unrelated
    // flanks.
    let global = Aligner::new().align3(&a, &b, &c).unwrap();
    println!(
        "\nglobal score {} < local score {} (flanks cost the global alignment)",
        global.score, loc.alignment.score
    );
    assert!(global.score < loc.alignment.score);
}
