//! Protein alignment with a real substitution matrix: three serum-albumin
//! N-terminal fragments under BLOSUM62, first with linear gaps, then with
//! affine (quasi-natural) gap costs — note how the affine optimum groups
//! its gaps into runs.
//!
//! ```text
//! cargo run --release --example protein_blosum
//! ```

use three_seq_align::core::affine::quasi_natural_score;
use three_seq_align::core::Algorithm;
use three_seq_align::prelude::*;

fn main() {
    // Homologous-style fragments (hand-mutated from one template).
    let a = Seq::protein("MKWVTFISLLLLFSSAYSRGVFRRDTHKSEIAHRFKDLGE")
        .unwrap()
        .with_id("albumin_sp1");
    let b = Seq::protein("MKWVTFISLLFLFSSAYSRGVRRDAHKSEVAHRFKDLGE")
        .unwrap()
        .with_id("albumin_sp2");
    let c = Seq::protein("MKWVTFISLLLLFSSAYSRSVFRRDTHKSEIAHRFNDLGE")
        .unwrap()
        .with_id("albumin_sp3");

    // Linear gaps.
    let linear = Scoring::blosum62(); // gap -8 per residue
    let aln = Aligner::new()
        .scoring(linear.clone())
        .align3(&a, &b, &c)
        .unwrap();
    aln.validate(&a, &b, &c).unwrap();
    println!("BLOSUM62, linear gap -8: SP score {}", aln.score);
    println!("{}\n", aln.pretty());

    // Affine gaps (quasi-natural): expensive open, cheap extension.
    let affine = Scoring::blosum62().with_gap(GapModel::affine(-11, -1));
    let aln2 = Aligner::new()
        .scoring(affine.clone())
        .algorithm(Algorithm::AffineDp)
        .align3(&a, &b, &c)
        .unwrap();
    aln2.validate(&a, &b, &c).unwrap();
    assert_eq!(quasi_natural_score(&aln2.columns, &affine), aln2.score);
    println!(
        "BLOSUM62, affine open -11 / extend -1: quasi-natural score {}",
        aln2.score
    );
    println!("{}", aln2.pretty());

    // The two objectives generally choose different gap placements:
    println!(
        "\nlinear optimum re-scored under affine: {} (affine optimum: {})",
        quasi_natural_score(&aln.columns, &affine),
        aln2.score
    );
}
