//! Explore the parallel structure of the 3D wavefront analytically:
//! plane-size profiles, critical path, speedup bounds, and the effect of
//! tiling — without running a single alignment. This is the model the
//! measured curves in the benchmark harness are compared against.
//!
//! ```text
//! cargo run --release --example scaling_model [length]
//! ```

use three_seq_align::perfmodel::{memory, model, planes, CostModel};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);

    let profile = planes::plane_profile(n, n, n);
    let cells: usize = profile.iter().sum();
    println!(
        "lattice {n}³: {cells} cells, {} planes (critical path)",
        profile.len()
    );
    println!(
        "largest plane: {} cells; mean parallelism (speedup cap): {:.0}",
        profile.iter().max().unwrap(),
        model::speedup_cap(&profile)
    );

    // A model with a measured-ish cell cost and a 5 µs plane barrier.
    let m = CostModel {
        t_cell_ns: 10.0,
        t_barrier_ns: 5_000.0,
    };
    println!("\ncell-level wavefront (t_cell 10 ns, barrier 5 µs):");
    println!("{:>4} {:>12} {:>9} {:>6}", "P", "time_ms", "speedup", "eff");
    for p in [1usize, 2, 4, 8, 16, 32, 64] {
        println!(
            "{:>4} {:>12.2} {:>9.2} {:>6.2}",
            p,
            m.predict_time_ns(&profile, p) / 1e6,
            m.predict_speedup(&profile, p),
            m.predict_efficiency(&profile, p)
        );
    }

    // Tiled schedule: the same lattice in 16³ tiles. Per-tile cost =
    // tile volume × t_cell; the barrier count collapses ~48×.
    let tile = 16usize;
    let tile_profile = planes::tile_plane_profile(n, n, n, tile);
    let mt = CostModel {
        t_cell_ns: 10.0 * (tile * tile * tile) as f64,
        t_barrier_ns: 5_000.0,
    };
    println!(
        "\ntiled wavefront (tile {tile}): {} tile planes",
        tile_profile.len()
    );
    println!("{:>4} {:>12} {:>9}", "P", "time_ms", "speedup");
    for p in [1usize, 2, 4, 8, 16, 32, 64] {
        println!(
            "{:>4} {:>12.2} {:>9.2}",
            p,
            mt.predict_time_ns(&tile_profile, p) / 1e6,
            mt.predict_speedup(&tile_profile, p)
        );
    }

    println!("\nmemory at n = {n}:");
    println!(
        "  full lattice:        {:>10.1} MiB",
        memory::full_lattice(n, n, n) as f64 / 1048576.0
    );
    println!(
        "  affine (7 states):   {:>10.1} MiB",
        memory::affine_lattice(n, n, n) as f64 / 1048576.0
    );
    println!(
        "  score-only slabs:    {:>10.3} MiB",
        memory::slab_score(n, n) as f64 / 1048576.0
    );
    println!(
        "  hirschberg peak:     {:>10.3} MiB",
        memory::hirschberg(n, n, n) as f64 / 1048576.0
    );
}
