//! Linear-space pairwise score computation.
//!
//! Keeps two DP rows instead of the full matrix: `O(min(n, m))` space for a
//! score, and — crucially — the *last row* of the forward (or backward) DP,
//! which is exactly what Hirschberg's divide-and-conquer combiner needs.

use tsa_scoring::Scoring;
use tsa_seq::Seq;

/// The final DP row of aligning all of `a` against every prefix of `b`:
/// `out[j] = optimal score of align(a, b[..j])`, for `j in 0..=|b|`.
pub fn forward_last_row(a: &Seq, b: &Seq, scoring: &Scoring) -> Vec<i32> {
    last_row_of(a.residues(), b.residues(), scoring)
}

/// The backward analogue: `out[j] = optimal score of align(a, b[j..])`,
/// computed by running the forward DP on the reversed residues.
pub fn backward_last_row(a: &Seq, b: &Seq, scoring: &Scoring) -> Vec<i32> {
    let ra: Vec<u8> = a.residues().iter().rev().copied().collect();
    let rb: Vec<u8> = b.residues().iter().rev().copied().collect();
    let mut row = last_row_of(&ra, &rb, scoring);
    row.reverse();
    row
}

/// Optimal global alignment score in linear space.
pub fn score(a: &Seq, b: &Seq, scoring: &Scoring) -> i32 {
    *forward_last_row(a, b, scoring)
        .last()
        .expect("row is non-empty")
}

fn last_row_of(ra: &[u8], rb: &[u8], scoring: &Scoring) -> Vec<i32> {
    let g = scoring.gap_linear();
    let m = rb.len();
    let mut prev: Vec<i32> = (0..=m as i32).map(|j| j * g).collect();
    let mut cur = vec![0i32; m + 1];
    for (i, &ai) in ra.iter().enumerate() {
        cur[0] = (i as i32 + 1) * g;
        for j in 1..=m {
            let diag = prev[j - 1] + scoring.sub(ai, rb[j - 1]);
            let up = prev[j] + g;
            let left = cur[j - 1] + g;
            cur[j] = diag.max(up).max(left);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::nw;
    use crate::test_util::random_pair;

    fn s() -> Scoring {
        Scoring::dna_default()
    }

    #[test]
    fn score_matches_full_matrix() {
        for seed in 0..30 {
            let (a, b) = random_pair(seed, 50);
            assert_eq!(
                score(&a, &b, &s()),
                nw::align_score(&a, &b, &s()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn forward_row_matches_matrix_last_row() {
        let (a, b) = random_pair(3, 30);
        let m = nw::fill_matrix(&a, &b, &s());
        let row = forward_last_row(&a, &b, &s());
        for j in 0..=b.len() {
            assert_eq!(row[j], m.at(a.len(), j), "j={j}");
        }
    }

    #[test]
    fn backward_row_matches_suffix_alignments() {
        let (a, b) = random_pair(5, 20);
        let row = backward_last_row(&a, &b, &s());
        for j in 0..=b.len() {
            let suffix = b.slice(j, b.len());
            assert_eq!(row[j], nw::align_score(&a, &suffix, &s()), "j={j}");
        }
    }

    #[test]
    fn empty_inputs() {
        let e = Seq::dna("").unwrap();
        let b = Seq::dna("ACG").unwrap();
        assert_eq!(score(&e, &e, &s()), 0);
        assert_eq!(score(&e, &b, &s()), -6);
        assert_eq!(score(&b, &e, &s()), -6);
        assert_eq!(forward_last_row(&e, &b, &s()), vec![0, -2, -4, -6]);
    }

    #[test]
    fn hirschberg_split_identity_holds() {
        // For any split row i of a: max_j fwd(a[..i], b[..j]) + bwd(a[i..], b[j..])
        // equals the full optimum — the invariant Hirschberg relies on.
        let (a, b) = random_pair(11, 24);
        let full = score(&a, &b, &s());
        let mid = a.len() / 2;
        let fa = a.slice(0, mid);
        let sa = a.slice(mid, a.len());
        let f = forward_last_row(&fa, &b, &s());
        let r = backward_last_row(&sa, &b, &s());
        let combined = (0..=b.len()).map(|j| f[j] + r[j]).max().unwrap();
        assert_eq!(combined, full);
    }
}
