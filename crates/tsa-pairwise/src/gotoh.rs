//! Gotoh's three-state algorithm: optimal pairwise alignment with affine
//! gaps (`open + k·extend` per maximal gap run).
//!
//! Three lattices are maintained — `M` (residue–residue column), `X`
//! (residue of `a` against a gap), `Y` (residue of `b` against a gap) —
//! with gap opening charged on every transition *into* a gap state from a
//! different state. This is the 2D rehearsal of the 3D quasi-natural
//! affine aligner in `tsa-core::affine`.

use crate::PairAlignment;
use tsa_scoring::{Scoring, NEG_INF};
use tsa_seq::Seq;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    M,
    X,
    Y,
}

struct Lattices {
    m: Vec<i32>,
    x: Vec<i32>,
    y: Vec<i32>,
    w: usize,
}

impl Lattices {
    #[inline(always)]
    fn idx(&self, i: usize, j: usize) -> usize {
        i * self.w + j
    }
}

fn fill(a: &Seq, b: &Seq, scoring: &Scoring) -> Lattices {
    let (n, m) = (a.len(), b.len());
    let (open, ext) = (scoring.gap.open_penalty(), scoring.gap.extend_penalty());
    let (ra, rb) = (a.residues(), b.residues());
    let w = m + 1;
    let mut l = Lattices {
        m: vec![NEG_INF; (n + 1) * w],
        x: vec![NEG_INF; (n + 1) * w],
        y: vec![NEG_INF; (n + 1) * w],
        w,
    };
    l.m[0] = 0;
    for j in 1..=m {
        l.y[j] = open + j as i32 * ext;
    }
    let idx = |i: usize, j: usize| i * w + j;
    for i in 1..=n {
        l.x[idx(i, 0)] = open + i as i32 * ext;
    }
    for i in 1..=n {
        let ai = ra[i - 1];
        for j in 1..=m {
            let here = idx(i, j);
            let diag = idx(i - 1, j - 1);
            let up = idx(i - 1, j);
            let left = idx(i, j - 1);
            l.m[here] = scoring.sub(ai, rb[j - 1]) + l.m[diag].max(l.x[diag]).max(l.y[diag]);
            l.x[here] = (l.m[up] + open + ext)
                .max(l.x[up] + ext)
                .max(l.y[up] + open + ext);
            l.y[here] = (l.m[left] + open + ext)
                .max(l.y[left] + ext)
                .max(l.x[left] + open + ext);
        }
    }
    l
}

/// Optimal affine-gap global alignment of `a` and `b`.
///
/// Works for linear gap models too (treated as `open = 0`), in which case
/// the score equals plain Needleman–Wunsch.
pub fn align(a: &Seq, b: &Seq, scoring: &Scoring) -> PairAlignment {
    let l = fill(a, b, scoring);
    let (n, m) = (a.len(), b.len());
    let (open, ext) = (scoring.gap.open_penalty(), scoring.gap.extend_penalty());
    let (ra, rb) = (a.residues(), b.residues());

    let end = l.idx(n, m);
    let score = l.m[end].max(l.x[end]).max(l.y[end]);
    let mut state = if score == l.m[end] {
        State::M
    } else if score == l.x[end] {
        State::X
    } else {
        State::Y
    };

    let (mut i, mut j) = (n, m);
    let mut row_a: Vec<Option<u8>> = Vec::with_capacity(n + m);
    let mut row_b: Vec<Option<u8>> = Vec::with_capacity(n + m);
    while i > 0 || j > 0 {
        match state {
            State::M => {
                debug_assert!(i > 0 && j > 0, "M state at boundary");
                let v = l.m[l.idx(i, j)];
                let diag = l.idx(i - 1, j - 1);
                let s = scoring.sub(ra[i - 1], rb[j - 1]);
                row_a.push(Some(ra[i - 1]));
                row_b.push(Some(rb[j - 1]));
                state = if v == l.m[diag] + s {
                    State::M
                } else if v == l.x[diag] + s {
                    State::X
                } else {
                    debug_assert_eq!(v, l.y[diag] + s, "broken M traceback");
                    State::Y
                };
                i -= 1;
                j -= 1;
            }
            State::X => {
                debug_assert!(i > 0, "X state with i == 0");
                let v = l.x[l.idx(i, j)];
                let up = l.idx(i - 1, j);
                row_a.push(Some(ra[i - 1]));
                row_b.push(None);
                state = if v == l.x[up] + ext {
                    State::X
                } else if v == l.m[up] + open + ext {
                    State::M
                } else {
                    debug_assert_eq!(v, l.y[up] + open + ext, "broken X traceback");
                    State::Y
                };
                i -= 1;
            }
            State::Y => {
                debug_assert!(j > 0, "Y state with j == 0");
                let v = l.y[l.idx(i, j)];
                let left = l.idx(i, j - 1);
                row_a.push(None);
                row_b.push(Some(rb[j - 1]));
                state = if v == l.y[left] + ext {
                    State::Y
                } else if v == l.m[left] + open + ext {
                    State::M
                } else {
                    debug_assert_eq!(v, l.x[left] + open + ext, "broken Y traceback");
                    State::X
                };
                j -= 1;
            }
        }
    }
    row_a.reverse();
    row_b.reverse();
    PairAlignment {
        row_a,
        row_b,
        score,
    }
}

/// Affine alignment score only.
pub fn align_score(a: &Seq, b: &Seq, scoring: &Scoring) -> i32 {
    let l = fill(a, b, scoring);
    let end = l.idx(a.len(), b.len());
    l.m[end].max(l.x[end]).max(l.y[end])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nw;
    use crate::test_util::random_pair;
    use tsa_scoring::GapModel;

    fn affine() -> Scoring {
        Scoring::dna_default().with_gap(GapModel::affine(-4, -1))
    }

    #[test]
    fn zero_open_equals_linear_nw() {
        let zero_open = Scoring::dna_default().with_gap(GapModel::affine(0, -2));
        let linear = Scoring::dna_default();
        for seed in 0..25 {
            let (a, b) = random_pair(seed, 40);
            assert_eq!(
                align_score(&a, &b, &zero_open),
                nw::align_score(&a, &b, &linear),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn alignments_validate_and_rescore() {
        let sc = affine();
        for seed in 0..25 {
            let (a, b) = random_pair(seed, 40);
            let al = align(&a, &b, &sc);
            al.validate(&a, &b, &sc)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn prefers_one_long_gap_over_two_short() {
        // With expensive opens, the optimum groups gaps together.
        let sc = Scoring::dna_default().with_gap(GapModel::affine(-10, -1));
        let a = Seq::dna("AAAATTTTGGGG").unwrap();
        let b = Seq::dna("AAAAGGGG").unwrap(); // TTTT deleted as one block
        let al = align(&a, &b, &sc);
        al.validate(&a, &b, &sc).unwrap();
        // 8 matches (+16), one run of 4 gaps (−10 −4) = 2.
        assert_eq!(al.score, 16 - 14);
        // The gap columns must be contiguous.
        let gap_cols: Vec<usize> = al
            .row_b
            .iter()
            .enumerate()
            .filter_map(|(c, r)| r.is_none().then_some(c))
            .collect();
        assert_eq!(gap_cols.len(), 4);
        assert!(gap_cols.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn empty_inputs() {
        let sc = affine();
        let e = Seq::dna("").unwrap();
        let b = Seq::dna("ACGT").unwrap();
        assert_eq!(align_score(&e, &e, &sc), 0);
        // One run of 4: open(-4) + 4*ext(-1) = -8.
        assert_eq!(align_score(&e, &b, &sc), -8);
        let al = align(&e, &b, &sc);
        al.validate(&e, &b, &sc).unwrap();
    }

    #[test]
    fn affine_score_never_exceeds_zero_open_score() {
        // Opening penalties only remove score.
        let zero_open = Scoring::dna_default().with_gap(GapModel::affine(0, -1));
        let with_open = Scoring::dna_default().with_gap(GapModel::affine(-6, -1));
        for seed in 0..15 {
            let (a, b) = random_pair(seed + 100, 30);
            assert!(align_score(&a, &b, &with_open) <= align_score(&a, &b, &zero_open));
        }
    }

    #[test]
    fn adjacent_insertion_deletion_is_allowed() {
        // X↔Y transitions: a gap in `a` directly next to a gap in `b`.
        // With a cheap open and a terrible mismatch, aligning X against Y
        // as (X, -) + (-, Y) can beat the mismatch column.
        let m = tsa_scoring::SubstMatrix::match_mismatch("harsh", 2, -100);
        let sc = Scoring::new(m, GapModel::affine(-1, -1));
        let a = Seq::dna("ACA").unwrap();
        let b = Seq::dna("AGA").unwrap();
        let al = align(&a, &b, &sc);
        al.validate(&a, &b, &sc).unwrap();
        // 2 matches + two gap runs (−2 each) = 0 > 4 − 100.
        assert_eq!(al.score, 0);
    }
}
