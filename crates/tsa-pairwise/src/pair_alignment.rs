//! The two-row alignment result type.

use std::fmt;
use tsa_scoring::{sp::projected_pair_score, Scoring};
use tsa_seq::Seq;

/// A global alignment of two sequences: two equal-length rows over
/// `Option<u8>` (`None` = gap) plus the score the producing algorithm
/// reported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairAlignment {
    /// Row for the first sequence.
    pub row_a: Vec<Option<u8>>,
    /// Row for the second sequence.
    pub row_b: Vec<Option<u8>>,
    /// Score reported by the aligner.
    pub score: i32,
}

/// Why a [`PairAlignment`] failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PairValidationError {
    /// The two rows differ in length.
    RowLengthMismatch(usize, usize),
    /// A column contains two gaps (never produced by a canonical pairwise
    /// alignment).
    DoubleGapColumn(usize),
    /// De-gapping a row does not reproduce the corresponding input.
    SequenceMismatch(&'static str),
    /// Re-scoring the rows disagrees with the recorded score.
    ScoreMismatch {
        /// Score stored in the alignment.
        recorded: i32,
        /// Score recomputed from the rows.
        recomputed: i32,
    },
}

impl fmt::Display for PairValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PairValidationError::RowLengthMismatch(a, b) => {
                write!(f, "row lengths differ: {a} vs {b}")
            }
            PairValidationError::DoubleGapColumn(c) => {
                write!(f, "column {c} is gap-gap")
            }
            PairValidationError::SequenceMismatch(which) => {
                write!(f, "row {which} does not de-gap to its input sequence")
            }
            PairValidationError::ScoreMismatch {
                recorded,
                recomputed,
            } => write!(f, "recorded score {recorded} != recomputed {recomputed}"),
        }
    }
}

impl std::error::Error for PairValidationError {}

impl PairAlignment {
    /// Number of alignment columns.
    pub fn len(&self) -> usize {
        self.row_a.len()
    }

    /// True if the alignment has no columns.
    pub fn is_empty(&self) -> bool {
        self.row_a.is_empty()
    }

    /// Recompute the score of the rows under `scoring` (linear or affine,
    /// per the scoring's own gap model).
    pub fn rescore(&self, scoring: &Scoring) -> i32 {
        projected_pair_score(scoring, &self.row_a, &self.row_b)
    }

    /// Check structural validity against the input sequences and score
    /// consistency under `scoring`.
    pub fn validate(&self, a: &Seq, b: &Seq, scoring: &Scoring) -> Result<(), PairValidationError> {
        if self.row_a.len() != self.row_b.len() {
            return Err(PairValidationError::RowLengthMismatch(
                self.row_a.len(),
                self.row_b.len(),
            ));
        }
        for (c, (x, y)) in self.row_a.iter().zip(&self.row_b).enumerate() {
            if x.is_none() && y.is_none() {
                return Err(PairValidationError::DoubleGapColumn(c));
            }
        }
        let degap = |row: &[Option<u8>]| -> Vec<u8> { row.iter().flatten().copied().collect() };
        if degap(&self.row_a) != a.residues() {
            return Err(PairValidationError::SequenceMismatch("A"));
        }
        if degap(&self.row_b) != b.residues() {
            return Err(PairValidationError::SequenceMismatch("B"));
        }
        let recomputed = self.rescore(scoring);
        if recomputed != self.score {
            return Err(PairValidationError::ScoreMismatch {
                recorded: self.score,
                recomputed,
            });
        }
        Ok(())
    }

    /// Render the two rows as gapped text, one per line.
    pub fn pretty(&self) -> String {
        let render = |row: &[Option<u8>]| -> String {
            row.iter()
                .map(|r| r.map(char::from).unwrap_or('-'))
                .collect()
        };
        format!("{}\n{}", render(&self.row_a), render(&self.row_b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(s: &str) -> Vec<Option<u8>> {
        s.chars()
            .map(|c| if c == '-' { None } else { Some(c as u8) })
            .collect()
    }

    fn aln(a: &str, b: &str, score: i32) -> PairAlignment {
        PairAlignment {
            row_a: row(a),
            row_b: row(b),
            score,
        }
    }

    #[test]
    fn validate_accepts_correct_alignment() {
        let scoring = Scoring::dna_default();
        let a = Seq::dna("ACGT").unwrap();
        let b = Seq::dna("AGT").unwrap();
        // A C G T
        // A - G T : 3 matches + 1 gap = 6 - 2 = 4
        let al = aln("ACGT", "A-GT", 4);
        al.validate(&a, &b, &scoring).unwrap();
    }

    #[test]
    fn validate_rejects_length_mismatch() {
        let scoring = Scoring::dna_default();
        let a = Seq::dna("AC").unwrap();
        let al = PairAlignment {
            row_a: row("AC"),
            row_b: row("A"),
            score: 0,
        };
        assert!(matches!(
            al.validate(&a, &a, &scoring),
            Err(PairValidationError::RowLengthMismatch(2, 1))
        ));
    }

    #[test]
    fn validate_rejects_double_gap() {
        let scoring = Scoring::dna_default();
        let a = Seq::dna("A").unwrap();
        let al = aln("A-", "-A", -4);
        // structurally has no double gap; craft one:
        let bad = aln("A-", "A-", 2);
        assert!(matches!(
            bad.validate(&a, &a, &scoring),
            Err(PairValidationError::DoubleGapColumn(1))
        ));
        let _ = al;
    }

    #[test]
    fn validate_rejects_wrong_residues() {
        let scoring = Scoring::dna_default();
        let a = Seq::dna("AC").unwrap();
        let b = Seq::dna("AC").unwrap();
        let al = aln("AG", "AC", 1);
        assert!(matches!(
            al.validate(&a, &b, &scoring),
            Err(PairValidationError::SequenceMismatch("A"))
        ));
    }

    #[test]
    fn validate_rejects_wrong_score() {
        let scoring = Scoring::dna_default();
        let a = Seq::dna("AC").unwrap();
        let al = aln("AC", "AC", 99);
        assert!(matches!(
            al.validate(&a, &a, &scoring),
            Err(PairValidationError::ScoreMismatch {
                recorded: 99,
                recomputed: 4
            })
        ));
    }

    #[test]
    fn pretty_renders_gaps() {
        let al = aln("AC-T", "A-GT", 0);
        assert_eq!(al.pretty(), "AC-T\nA-GT");
    }

    #[test]
    fn empty_alignment_is_valid_for_empty_inputs() {
        let scoring = Scoring::dna_default();
        let e = Seq::dna("").unwrap();
        let al = aln("", "", 0);
        al.validate(&e, &e, &scoring).unwrap();
        assert!(al.is_empty());
        assert_eq!(al.len(), 0);
    }

    #[test]
    fn rescore_affine() {
        let scoring = Scoring::dna_default().with_gap(tsa_scoring::GapModel::affine(-5, -1));
        let al = aln("AAAA", "A--A", 0);
        assert_eq!(al.rescore(&scoring), 2 + 2 - 5 - 2);
    }
}
