//! Local (Smith–Waterman) pairwise alignment.
//!
//! Finds the best-scoring pair of *sub*-sequences: the recurrence clamps
//! every cell at 0 (an empty alignment is always available), the optimum
//! is the lattice maximum, and traceback stops at the first zero cell.

use crate::PairAlignment;
use tsa_scoring::Scoring;
use tsa_seq::Seq;

/// A local alignment: the aligned rows plus the half-open residue ranges
/// they cover in each input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalPairAlignment {
    /// The aligned segment (rows cover only the matched region).
    pub alignment: PairAlignment,
    /// Residues `range_a.0 .. range_a.1` of `a` are covered.
    pub range_a: (usize, usize),
    /// Residues `range_b.0 .. range_b.1` of `b` are covered.
    pub range_b: (usize, usize),
}

/// Best local alignment of `a` and `b` under linear gaps. An all-negative
/// scoring landscape yields the empty alignment with score 0.
pub fn align(a: &Seq, b: &Seq, scoring: &Scoring) -> LocalPairAlignment {
    let g = scoring.gap_linear();
    let (ra, rb) = (a.residues(), b.residues());
    let (n, m) = (ra.len(), rb.len());
    let w = m + 1;
    let mut d = vec![0i32; (n + 1) * w];
    let (mut best, mut bi, mut bj) = (0i32, 0usize, 0usize);
    for i in 1..=n {
        for j in 1..=m {
            let diag = d[(i - 1) * w + j - 1] + scoring.sub(ra[i - 1], rb[j - 1]);
            let up = d[(i - 1) * w + j] + g;
            let left = d[i * w + j - 1] + g;
            let v = diag.max(up).max(left).max(0);
            d[i * w + j] = v;
            if v > best {
                best = v;
                bi = i;
                bj = j;
            }
        }
    }
    // Traceback from the maximum until a zero cell.
    let (mut i, mut j) = (bi, bj);
    let mut row_a: Vec<Option<u8>> = Vec::new();
    let mut row_b: Vec<Option<u8>> = Vec::new();
    while i > 0 && j > 0 && d[i * w + j] > 0 {
        let v = d[i * w + j];
        if v == d[(i - 1) * w + j - 1] + scoring.sub(ra[i - 1], rb[j - 1]) {
            row_a.push(Some(ra[i - 1]));
            row_b.push(Some(rb[j - 1]));
            i -= 1;
            j -= 1;
        } else if v == d[(i - 1) * w + j] + g {
            row_a.push(Some(ra[i - 1]));
            row_b.push(None);
            i -= 1;
        } else {
            debug_assert_eq!(v, d[i * w + j - 1] + g, "broken local traceback");
            row_a.push(None);
            row_b.push(Some(rb[j - 1]));
            j -= 1;
        }
    }
    row_a.reverse();
    row_b.reverse();
    LocalPairAlignment {
        alignment: PairAlignment {
            row_a,
            row_b,
            score: best,
        },
        range_a: (i, bi),
        range_b: (j, bj),
    }
}

/// Local alignment score only.
pub fn align_score(a: &Seq, b: &Seq, scoring: &Scoring) -> i32 {
    align(a, b, scoring).alignment.score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nw;
    use crate::test_util::random_pair;

    fn s() -> Scoring {
        Scoring::dna_default()
    }

    #[test]
    fn finds_embedded_common_segment() {
        let a = Seq::dna("TTTTGATTACATTTT").unwrap();
        let b = Seq::dna("CCCCGATTACACCCC").unwrap();
        let loc = align(&a, &b, &s());
        assert_eq!(loc.alignment.score, 7 * 2);
        assert_eq!(loc.range_a, (4, 11));
        assert_eq!(loc.range_b, (4, 11));
        assert_eq!(
            loc.alignment
                .row_a
                .iter()
                .flatten()
                .copied()
                .collect::<Vec<u8>>(),
            b"GATTACA"
        );
    }

    #[test]
    fn disjoint_alphabets_give_empty_alignment() {
        let a = Seq::dna("AAAA").unwrap();
        let b = Seq::dna("CCCC").unwrap();
        let loc = align(&a, &b, &s());
        assert_eq!(loc.alignment.score, 0);
        assert!(loc.alignment.is_empty());
    }

    #[test]
    fn local_score_at_least_global() {
        // The global optimum is one feasible "local" choice minus end
        // penalties, so local ≥ global for any inputs.
        for seed in 0..20 {
            let (a, b) = random_pair(seed, 30);
            assert!(
                align_score(&a, &b, &s()) >= nw::align_score(&a, &b, &s()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn ranges_degap_to_the_input_slices() {
        for seed in 0..15 {
            let (a, b) = random_pair(seed + 60, 25);
            let loc = align(&a, &b, &s());
            let (sa, ea) = loc.range_a;
            let (sb, eb) = loc.range_b;
            let degap_a: Vec<u8> = loc.alignment.row_a.iter().flatten().copied().collect();
            let degap_b: Vec<u8> = loc.alignment.row_b.iter().flatten().copied().collect();
            assert_eq!(degap_a, a.residues()[sa..ea], "seed {seed}");
            assert_eq!(degap_b, b.residues()[sb..eb], "seed {seed}");
            // And the segment's score re-derives via projected rescoring.
            assert_eq!(
                loc.alignment.rescore(&s()),
                loc.alignment.score,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_brute_force_over_all_substrings() {
        // Local optimum == max over all substring pairs of the global
        // score (clamped at 0).
        for seed in 0..8 {
            let (a, b) = random_pair(seed + 400, 7);
            let mut want = 0i32;
            for sa in 0..=a.len() {
                for ea in sa..=a.len() {
                    for sb in 0..=b.len() {
                        for eb in sb..=b.len() {
                            let ga = a.slice(sa, ea);
                            let gb = b.slice(sb, eb);
                            want = want.max(nw::align_score(&ga, &gb, &s()));
                        }
                    }
                }
            }
            assert_eq!(align_score(&a, &b, &s()), want, "seed {seed}");
        }
    }

    #[test]
    fn empty_inputs() {
        let e = Seq::dna("").unwrap();
        let a = Seq::dna("ACG").unwrap();
        assert_eq!(align_score(&e, &e, &s()), 0);
        assert_eq!(align_score(&e, &a, &s()), 0);
        assert_eq!(align_score(&a, &e, &s()), 0);
    }
}
