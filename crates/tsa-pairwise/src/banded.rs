//! Banded Needleman–Wunsch.
//!
//! Restricts the DP to cells with `|i − j| ≤ w`. For sequences of similar
//! length and high identity the optimal path stays near the main diagonal,
//! so a narrow band finds the true optimum in `O(n·w)` time and space. The
//! band must satisfy `w ≥ ||a| − |b||` or the end cell is unreachable.
//!
//! [`align_adaptive`] doubles the band until the score stops improving (or
//! the band covers the whole matrix, at which point the result is exactly
//! Needleman–Wunsch).

use crate::PairAlignment;
use tsa_scoring::{Scoring, NEG_INF};
use tsa_seq::Seq;

/// Banded alignment storage: row `i` keeps scores for `j ∈ [i−w, i+w]`.
struct Band {
    scores: Vec<i32>,
    w: usize,
    cols: usize,
}

impl Band {
    fn new(rows: usize, cols: usize, w: usize) -> Self {
        Band {
            scores: vec![NEG_INF; (rows + 1) * (2 * w + 1)],
            w,
            cols,
        }
    }

    #[inline(always)]
    fn in_band(&self, i: usize, j: usize) -> bool {
        let off = j as i64 - i as i64;
        off.abs() <= self.w as i64 && j <= self.cols
    }

    #[inline(always)]
    fn slot(&self, i: usize, j: usize) -> usize {
        debug_assert!(self.in_band(i, j));
        i * (2 * self.w + 1) + (j + self.w - i)
    }

    #[inline(always)]
    fn get(&self, i: usize, j: usize) -> i32 {
        if self.in_band(i, j) {
            self.scores[self.slot(i, j)]
        } else {
            NEG_INF
        }
    }

    #[inline(always)]
    fn set(&mut self, i: usize, j: usize, v: i32) {
        let s = self.slot(i, j);
        self.scores[s] = v;
    }
}

/// Banded global alignment with band half-width `w`.
///
/// Returns `None` when `w < ||a| − |b||` (the end cell lies outside the
/// band). The returned alignment is the optimum *among paths inside the
/// band*; it equals the global optimum whenever some optimal path fits.
pub fn align(a: &Seq, b: &Seq, scoring: &Scoring, w: usize) -> Option<PairAlignment> {
    let (n, m) = (a.len(), b.len());
    if (n as i64 - m as i64).unsigned_abs() as usize > w {
        return None;
    }
    let g = scoring.gap_linear();
    let (ra, rb) = (a.residues(), b.residues());
    let mut band = Band::new(n, m, w);
    band.set(0, 0, 0);
    for j in 1..=m.min(w) {
        band.set(0, j, j as i32 * g);
    }
    for i in 1..=n {
        let j_lo = i.saturating_sub(w);
        let j_hi = (i + w).min(m);
        let ai = ra[i - 1];
        for j in j_lo..=j_hi {
            let v = if j == 0 {
                i as i32 * g
            } else {
                let diag = band.get(i - 1, j - 1) + scoring.sub(ai, rb[j - 1]);
                let up = band.get(i - 1, j).saturating_add(g);
                let left = band.get(i, j - 1).saturating_add(g);
                diag.max(up).max(left)
            };
            band.set(i, j, v);
        }
    }
    let score = band.get(n, m);
    debug_assert!(score > NEG_INF / 2, "end cell unreachable inside band");

    // Traceback inside the band (same tie order as full NW).
    let (mut i, mut j) = (n, m);
    let mut row_a = Vec::with_capacity(n + m);
    let mut row_b = Vec::with_capacity(n + m);
    while i > 0 || j > 0 {
        let v = band.get(i, j);
        if i > 0 && j > 0 && v == band.get(i - 1, j - 1) + scoring.sub(ra[i - 1], rb[j - 1]) {
            row_a.push(Some(ra[i - 1]));
            row_b.push(Some(rb[j - 1]));
            i -= 1;
            j -= 1;
        } else if i > 0 && band.in_band(i - 1, j) && v == band.get(i - 1, j) + g {
            row_a.push(Some(ra[i - 1]));
            row_b.push(None);
            i -= 1;
        } else {
            debug_assert!(
                j > 0 && v == band.get(i, j - 1) + g,
                "broken banded traceback"
            );
            row_a.push(None);
            row_b.push(Some(rb[j - 1]));
            j -= 1;
        }
    }
    row_a.reverse();
    row_b.reverse();
    Some(PairAlignment {
        row_a,
        row_b,
        score,
    })
}

/// Adaptive banding: start at `w = max(8, ||a|−|b||)` and double until the
/// score stops improving or the band covers the whole matrix. Covering the
/// whole matrix makes the result exactly Needleman–Wunsch, so the final
/// answer is always a valid global alignment; termination one step after
/// the score stabilizes makes it the true optimum for all but adversarial
/// inputs at a fraction of the cost.
pub fn align_adaptive(a: &Seq, b: &Seq, scoring: &Scoring) -> PairAlignment {
    let (n, m) = (a.len(), b.len());
    let full_w = n.max(m);
    let mut w = 8usize.max(n.abs_diff(m));
    let mut best = align(a, b, scoring, w).expect("w >= length difference");
    while w < full_w {
        w = (w * 2).min(full_w);
        let next = align(a, b, scoring, w).expect("w >= length difference");
        let done = next.score == best.score;
        best = next;
        if done {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nw;
    use crate::test_util::random_pair;
    use tsa_seq::family::FamilyConfig;

    fn s() -> Scoring {
        Scoring::dna_default()
    }

    #[test]
    fn full_width_band_equals_nw() {
        for seed in 0..20 {
            let (a, b) = random_pair(seed, 40);
            let w = a.len().max(b.len());
            let banded = align(&a, &b, &s(), w).unwrap();
            assert_eq!(banded.score, nw::align_score(&a, &b, &s()), "seed {seed}");
            banded.validate(&a, &b, &s()).unwrap();
        }
    }

    #[test]
    fn too_narrow_band_returns_none() {
        let a = Seq::dna("AAAAAAAA").unwrap();
        let b = Seq::dna("AA").unwrap();
        assert!(align(&a, &b, &s(), 3).is_none());
        assert!(align(&a, &b, &s(), 6).is_some());
    }

    #[test]
    fn similar_sequences_need_only_narrow_band() {
        let fam = FamilyConfig::new(120, 0.05, 0.01).generate(5);
        let (a, b, _) = fam.triple();
        let banded = align(a, b, &s(), 16).unwrap();
        assert_eq!(banded.score, nw::align_score(a, b, &s()));
        banded.validate(a, b, &s()).unwrap();
    }

    #[test]
    fn adaptive_matches_nw_on_randoms() {
        for seed in 0..20 {
            let (a, b) = random_pair(seed + 300, 60);
            let adaptive = align_adaptive(&a, &b, &s());
            assert_eq!(adaptive.score, nw::align_score(&a, &b, &s()), "seed {seed}");
            adaptive.validate(&a, &b, &s()).unwrap();
        }
    }

    #[test]
    fn adaptive_on_empty_and_tiny() {
        let e = Seq::dna("").unwrap();
        let b = Seq::dna("ACG").unwrap();
        let al = align_adaptive(&e, &b, &s());
        assert_eq!(al.score, -6);
        al.validate(&e, &b, &s()).unwrap();
        assert!(align_adaptive(&e, &e, &s()).is_empty());
    }

    #[test]
    fn band_result_is_valid_even_when_suboptimal() {
        // A band that is wide enough to reach the corner but too narrow for
        // the optimum still yields a structurally valid alignment whose
        // score is ≤ the optimum.
        let a = Seq::dna("TTTTAAAACCCC").unwrap();
        let b = Seq::dna("AAAACCCCGGGG").unwrap();
        let banded = align(&a, &b, &s(), 2).unwrap();
        banded.validate(&a, &b, &s()).unwrap();
        assert!(banded.score <= nw::align_score(&a, &b, &s()));
    }
}
