//! Full-matrix Needleman–Wunsch with traceback (linear gaps).
//!
//! The reference pairwise aligner: `O(n·m)` time and space, exact optimum.
//! Traceback recomputes the winning predecessor from the score matrix (no
//! separate move matrix), halving memory traffic — the same technique the
//! 3D full-lattice aligner uses.

use crate::PairAlignment;
use tsa_scoring::{Scoring, NEG_INF};
use tsa_seq::Seq;

/// The score matrix of a pairwise DP, kept for traceback and inspection.
pub struct ScoreMatrix {
    /// `(rows+1) × (cols+1)` scores, row-major.
    pub scores: Vec<i32>,
    /// First-sequence length.
    pub rows: usize,
    /// Second-sequence length.
    pub cols: usize,
}

impl ScoreMatrix {
    /// Score at `(i, j)`.
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> i32 {
        self.scores[i * (self.cols + 1) + j]
    }

    /// The optimal global alignment score, `D[rows][cols]`.
    pub fn final_score(&self) -> i32 {
        self.at(self.rows, self.cols)
    }
}

/// Fill the full DP matrix for `a` vs `b`.
pub fn fill_matrix(a: &Seq, b: &Seq, scoring: &Scoring) -> ScoreMatrix {
    let (n, m) = (a.len(), b.len());
    let g = scoring.gap_linear();
    let (ra, rb) = (a.residues(), b.residues());
    let w = m + 1;
    let mut scores = vec![NEG_INF; (n + 1) * w];
    scores[0] = 0;
    for (j, s) in scores[..=m].iter_mut().enumerate().skip(1) {
        *s = j as i32 * g;
    }
    for i in 1..=n {
        let ai = ra[i - 1];
        let (prev_row, cur_row) = scores.split_at_mut(i * w);
        let prev_row = &prev_row[(i - 1) * w..];
        cur_row[0] = i as i32 * g;
        let mut left = cur_row[0];
        #[allow(clippy::needless_range_loop)] // j indexes two slices in lockstep
        for j in 1..=m {
            let diag = prev_row[j - 1] + scoring.sub(ai, rb[j - 1]);
            let up = prev_row[j] + g;
            let v = diag.max(up).max(left + g);
            cur_row[j] = v;
            left = v;
        }
    }
    ScoreMatrix {
        scores,
        rows: n,
        cols: m,
    }
}

/// Trace an optimal path through a filled matrix, yielding the aligned
/// rows. Ties are broken diagonal-first, then up (gap in `b`), then left —
/// fixing a canonical optimum so algorithms can be compared exactly.
pub fn traceback(matrix: &ScoreMatrix, a: &Seq, b: &Seq, scoring: &Scoring) -> PairAlignment {
    let g = scoring.gap_linear();
    let (ra, rb) = (a.residues(), b.residues());
    let (mut i, mut j) = (matrix.rows, matrix.cols);
    let mut row_a: Vec<Option<u8>> = Vec::with_capacity(i + j);
    let mut row_b: Vec<Option<u8>> = Vec::with_capacity(i + j);
    while i > 0 || j > 0 {
        let v = matrix.at(i, j);
        if i > 0 && j > 0 && v == matrix.at(i - 1, j - 1) + scoring.sub(ra[i - 1], rb[j - 1]) {
            row_a.push(Some(ra[i - 1]));
            row_b.push(Some(rb[j - 1]));
            i -= 1;
            j -= 1;
        } else if i > 0 && v == matrix.at(i - 1, j) + g {
            row_a.push(Some(ra[i - 1]));
            row_b.push(None);
            i -= 1;
        } else {
            debug_assert!(j > 0 && v == matrix.at(i, j - 1) + g, "broken traceback");
            row_a.push(None);
            row_b.push(Some(rb[j - 1]));
            j -= 1;
        }
    }
    row_a.reverse();
    row_b.reverse();
    PairAlignment {
        row_a,
        row_b,
        score: matrix.final_score(),
    }
}

/// Optimal global alignment of `a` and `b` under linear gaps.
///
/// ```
/// use tsa_pairwise::nw;
/// use tsa_scoring::Scoring;
/// use tsa_seq::Seq;
///
/// let a = Seq::dna("GATTACA").unwrap();
/// let b = Seq::dna("GATACA").unwrap();
/// let aln = nw::align(&a, &b, &Scoring::dna_default());
/// assert_eq!(aln.score, 10); // six matches, one gap
/// ```
pub fn align(a: &Seq, b: &Seq, scoring: &Scoring) -> PairAlignment {
    let m = fill_matrix(a, b, scoring);
    traceback(&m, a, b, scoring)
}

/// Optimal global alignment *score* only (still full-matrix; see
/// [`crate::score_only`] for the linear-space version).
pub fn align_score(a: &Seq, b: &Seq, scoring: &Scoring) -> i32 {
    fill_matrix(a, b, scoring).final_score()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::random_pair;

    fn s() -> Scoring {
        Scoring::dna_default()
    }

    #[test]
    fn identical_sequences_align_without_gaps() {
        let a = Seq::dna("ACGTACGT").unwrap();
        let al = align(&a, &a, &s());
        assert_eq!(al.score, 16);
        assert!(al.row_a.iter().all(|r| r.is_some()));
        al.validate(&a, &a, &s()).unwrap();
    }

    #[test]
    fn empty_vs_nonempty_is_all_gaps() {
        let a = Seq::dna("").unwrap();
        let b = Seq::dna("ACG").unwrap();
        let al = align(&a, &b, &s());
        assert_eq!(al.score, -6);
        assert_eq!(al.len(), 3);
        assert!(al.row_a.iter().all(|r| r.is_none()));
        al.validate(&a, &b, &s()).unwrap();
    }

    #[test]
    fn both_empty() {
        let e = Seq::dna("").unwrap();
        let al = align(&e, &e, &s());
        assert_eq!(al.score, 0);
        assert!(al.is_empty());
    }

    #[test]
    fn single_substitution() {
        let a = Seq::dna("ACGT").unwrap();
        let b = Seq::dna("AGGT").unwrap();
        let al = align(&a, &b, &s());
        // 3 matches + 1 mismatch beats gapping (2 gaps cost -4 vs -1).
        assert_eq!(al.score, 3 * 2 - 1);
        al.validate(&a, &b, &s()).unwrap();
    }

    #[test]
    fn known_small_alignment() {
        // Classic: GATTACA vs GCATGCU-style check with DNA scores.
        let a = Seq::dna("GATTACA").unwrap();
        let b = Seq::dna("GATACA").unwrap();
        let al = align(&a, &b, &s());
        // Best: delete one T → 6 matches, 1 gap = 12 - 2 = 10.
        assert_eq!(al.score, 10);
        al.validate(&a, &b, &s()).unwrap();
    }

    #[test]
    fn edit_distance_scoring_recovers_levenshtein() {
        let a = Seq::dna("GATTACA").unwrap();
        let b = Seq::dna("GCTTAA").unwrap();
        let sc = Scoring::edit_distance();
        let al = align(&a, &b, &sc);
        // Levenshtein("GATTACA", "GCTTAA") = 2 (A→C substitution, delete C).
        assert_eq!(-al.score, 2);
        al.validate(&a, &b, &sc).unwrap();
    }

    #[test]
    fn score_matches_matrix_final() {
        let (a, b) = random_pair(42, 40);
        let m = fill_matrix(&a, &b, &s());
        assert_eq!(m.final_score(), align_score(&a, &b, &s()));
    }

    #[test]
    fn random_alignments_validate() {
        for seed in 0..25 {
            let (a, b) = random_pair(seed, 48);
            let al = align(&a, &b, &s());
            al.validate(&a, &b, &s())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn alignment_is_symmetric_in_score() {
        for seed in 0..10 {
            let (a, b) = random_pair(seed, 32);
            assert_eq!(align_score(&a, &b, &s()), align_score(&b, &a, &s()));
        }
    }

    #[test]
    fn protein_alignment_with_blosum() {
        let sc = Scoring::blosum62();
        let a = Seq::protein("HEAGAWGHEE").unwrap();
        let b = Seq::protein("PAWHEAE").unwrap();
        let al = align(&a, &b, &sc);
        al.validate(&a, &b, &sc).unwrap();
        // Optimal global score must beat the all-gap alignment.
        assert!(al.score > (a.len() + b.len()) as i32 * -8);
    }

    #[test]
    fn matrix_boundaries_are_gap_multiples() {
        let (a, b) = random_pair(7, 20);
        let m = fill_matrix(&a, &b, &s());
        for i in 0..=a.len() {
            assert_eq!(m.at(i, 0), -2 * i as i32);
        }
        for j in 0..=b.len() {
            assert_eq!(m.at(0, j), -2 * j as i32);
        }
    }
}
