//! Anti-diagonal parallel Needleman–Wunsch — the 2D warm-up of the paper's
//! 3D wavefront algorithm.
//!
//! Cells on diagonal `d = i + j` depend only on diagonals `d−1` and `d−2`,
//! so each diagonal is computed with a rayon `par_iter`, with the implicit
//! barrier between diagonals providing the ordering. The full matrix is
//! retained (in a [`tsa_wavefront::SharedGrid`]) so the standard traceback
//! can run afterwards; results are bit-identical to [`crate::nw`].
//!
//! For 2D lattices at laptop scale the per-diagonal barrier usually costs
//! more than the parallelism wins (diagonals are short); the function
//! exists for exposition, testing, and the harness's 2D-vs-3D comparison.
//! The 3D planes of the real workload are quadratically larger, which is
//! why the same strategy wins there.

use crate::nw::ScoreMatrix;
use crate::PairAlignment;
use rayon::prelude::*;
use tsa_scoring::{Scoring, NEG_INF};
use tsa_seq::Seq;
use tsa_wavefront::diag;
use tsa_wavefront::SharedGrid;

/// Diagonals shorter than this are filled sequentially — scheduling a rayon
/// task per handful of cells costs more than the cells themselves.
const PAR_THRESHOLD: usize = 128;

/// Fill the full DP matrix in parallel, diagonal by diagonal.
pub fn fill_matrix_parallel(a: &Seq, b: &Seq, scoring: &Scoring) -> ScoreMatrix {
    let (n, m) = (a.len(), b.len());
    let g = scoring.gap_linear();
    let (ra, rb) = (a.residues(), b.residues());
    let w = m + 1;
    let grid: SharedGrid<i32> = SharedGrid::new((n + 1) * w, NEG_INF);

    // SAFETY (whole function): writes within a diagonal hit distinct
    // (i, j) cells; reads target diagonals d−1 and d−2, finished before
    // this diagonal starts (rayon's for_each joins before returning).
    let cell = |i: usize, j: usize| -> i32 {
        if i == 0 {
            return j as i32 * g;
        }
        if j == 0 {
            return i as i32 * g;
        }
        let diag_score =
            unsafe { grid.get((i - 1) * w + (j - 1)) } + scoring.sub(ra[i - 1], rb[j - 1]);
        let up = unsafe { grid.get((i - 1) * w + j) } + g;
        let left = unsafe { grid.get(i * w + (j - 1)) } + g;
        diag_score.max(up).max(left)
    };

    for d in 0..diag::num_diagonals(n, m) {
        let len = diag::diag_len(n, m, d);
        if len < PAR_THRESHOLD {
            for (i, j) in diag::diag_cells(n, m, d) {
                unsafe { grid.set(i * w + j, cell(i, j)) };
            }
        } else {
            let cells: Vec<(usize, usize)> = diag::diag_cells(n, m, d).collect();
            cells
                .par_iter()
                .with_min_len(64)
                .for_each(|&(i, j)| unsafe {
                    grid.set(i * w + j, cell(i, j));
                });
        }
    }

    ScoreMatrix {
        scores: grid.into_vec(),
        rows: n,
        cols: m,
    }
}

/// Optimal global alignment computed with the parallel wavefront fill.
pub fn align(a: &Seq, b: &Seq, scoring: &Scoring) -> PairAlignment {
    let matrix = fill_matrix_parallel(a, b, scoring);
    crate::nw::traceback(&matrix, a, b, scoring)
}

/// Parallel-fill alignment score only.
pub fn align_score(a: &Seq, b: &Seq, scoring: &Scoring) -> i32 {
    fill_matrix_parallel(a, b, scoring).final_score()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nw;
    use crate::test_util::random_pair;

    fn s() -> Scoring {
        Scoring::dna_default()
    }

    #[test]
    fn matrix_is_bit_identical_to_sequential() {
        for seed in 0..15 {
            let (a, b) = random_pair(seed, 50);
            let seq_m = nw::fill_matrix(&a, &b, &s());
            let par_m = fill_matrix_parallel(&a, &b, &s());
            assert_eq!(seq_m.scores, par_m.scores, "seed {seed}");
        }
    }

    #[test]
    fn alignments_match_sequential() {
        for seed in 0..15 {
            let (a, b) = random_pair(seed + 50, 60);
            let par = align(&a, &b, &s());
            let seq = nw::align(&a, &b, &s());
            assert_eq!(par, seq, "seed {seed}");
            par.validate(&a, &b, &s()).unwrap();
        }
    }

    #[test]
    fn crosses_the_parallel_threshold() {
        // Long enough that middle diagonals exceed PAR_THRESHOLD.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(999);
        let a = tsa_seq::gen::random_seq(tsa_seq::Alphabet::Dna, 300, &mut rng);
        let b = tsa_seq::gen::random_seq(tsa_seq::Alphabet::Dna, 280, &mut rng);
        assert!(a.len().min(b.len()) > PAR_THRESHOLD);
        assert_eq!(align_score(&a, &b, &s()), nw::align_score(&a, &b, &s()));
    }

    #[test]
    fn empty_inputs() {
        let e = Seq::dna("").unwrap();
        let b = Seq::dna("ACGT").unwrap();
        assert_eq!(align_score(&e, &b, &s()), -8);
        assert_eq!(align_score(&e, &e, &s()), 0);
    }

    #[test]
    fn works_inside_small_thread_pool() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        pool.install(|| {
            let (a, b) = random_pair(123, 200);
            assert_eq!(align_score(&a, &b, &s()), nw::align_score(&a, &b, &s()));
        });
    }
}
