//! Hirschberg's divide-and-conquer alignment: full optimal traceback in
//! linear space.
//!
//! Split the first sequence at its midpoint `i = n/2`. Any optimal path
//! crosses the row `i` at some column `j`, and the crossing column is the
//! argmax of `forward(a[..i], b[..j]) + backward(a[i..], b[j..])`. Recurse
//! on the two halves; total work ≤ 2× the plain DP, space `O(n + m)`.
//!
//! This module is the 2D rehearsal of [the 3D version](`tsa_core` crate's
//! `hirschberg3`), with the same base-case / combine structure.

use crate::nw;
use crate::score_only::{backward_last_row, forward_last_row};
use crate::PairAlignment;
use tsa_scoring::Scoring;
use tsa_seq::Seq;

/// Below this first-sequence length the recursion bottoms out into full
/// Needleman–Wunsch (the matrix is tiny, so recursing further only adds
/// overhead).
const BASE_CASE_LEN: usize = 8;

/// Optimal global alignment in linear space.
pub fn align(a: &Seq, b: &Seq, scoring: &Scoring) -> PairAlignment {
    let mut row_a = Vec::with_capacity(a.len() + b.len());
    let mut row_b = Vec::with_capacity(a.len() + b.len());
    solve(a, b, scoring, &mut row_a, &mut row_b);
    let score = tsa_scoring::sp::projected_pair_score(scoring, &row_a, &row_b);
    PairAlignment {
        row_a,
        row_b,
        score,
    }
}

fn solve(
    a: &Seq,
    b: &Seq,
    scoring: &Scoring,
    out_a: &mut Vec<Option<u8>>,
    out_b: &mut Vec<Option<u8>>,
) {
    if a.len() <= BASE_CASE_LEN || b.is_empty() {
        let base = nw::align(a, b, scoring);
        out_a.extend(base.row_a);
        out_b.extend(base.row_b);
        return;
    }
    let mid = a.len() / 2;
    let a_lo = a.slice(0, mid);
    let a_hi = a.slice(mid, a.len());
    let f = forward_last_row(&a_lo, b, scoring);
    let r = backward_last_row(&a_hi, b, scoring);
    let split = (0..=b.len())
        .max_by_key(|&j| f[j] + r[j])
        .expect("non-empty row");
    solve(&a_lo, &b.slice(0, split), scoring, out_a, out_b);
    solve(&a_hi, &b.slice(split, b.len()), scoring, out_a, out_b);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::random_pair;

    fn s() -> Scoring {
        Scoring::dna_default()
    }

    #[test]
    fn matches_full_nw_score_on_randoms() {
        for seed in 0..40 {
            let (a, b) = random_pair(seed, 60);
            let h = align(&a, &b, &s());
            let full = nw::align_score(&a, &b, &s());
            assert_eq!(h.score, full, "seed {seed}");
            h.validate(&a, &b, &s())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn empty_cases() {
        let e = Seq::dna("").unwrap();
        let b = Seq::dna("ACGT").unwrap();
        let al = align(&e, &b, &s());
        assert_eq!(al.score, -8);
        al.validate(&e, &b, &s()).unwrap();
        let al = align(&b, &e, &s());
        assert_eq!(al.score, -8);
        al.validate(&b, &e, &s()).unwrap();
        assert!(align(&e, &e, &s()).is_empty());
    }

    #[test]
    fn long_asymmetric_inputs() {
        let (a, b) = random_pair(77, 200);
        let h = align(&a, &b, &s());
        assert_eq!(h.score, nw::align_score(&a, &b, &s()));
        h.validate(&a, &b, &s()).unwrap();
    }

    #[test]
    fn protein_inputs_with_blosum() {
        let sc = Scoring::blosum62();
        let a = Seq::protein("MKWVTFISLLLLFSSAYSRGVFRRDTHKSEIAHRFKDLGEEHFKGLVLIAFSQYLQQCPFDEHVK")
            .unwrap();
        let b = Seq::protein("MKWVTFISLLFLFSSAYSRGVFRRDAHKSEVAHRFKDLGEENFKALVLIAFAQYLQQCPFEDHVK")
            .unwrap();
        let h = align(&a, &b, &sc);
        assert_eq!(h.score, nw::align_score(&a, &b, &sc));
        h.validate(&a, &b, &sc).unwrap();
    }

    #[test]
    fn base_case_boundary_lengths() {
        // Exercise lengths right at the recursion base case.
        for la in 0..=(super::BASE_CASE_LEN + 2) {
            let (a, b) = {
                let (x, y) = random_pair(la as u64 + 500, 20);
                (x.slice(0, la.min(x.len())), y)
            };
            let h = align(&a, &b, &s());
            assert_eq!(h.score, nw::align_score(&a, &b, &s()), "la={la}");
            h.validate(&a, &b, &s()).unwrap();
        }
    }
}
