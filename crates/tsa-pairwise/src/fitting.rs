//! Fitting ("glocal") alignment: all of `a` against the best-matching
//! window of `b`.
//!
//! Leading and trailing gaps of `b` are free — `a` must be consumed
//! entirely, but it may land anywhere inside `b`. The classic use is
//! placing a short fragment into a longer reference. Implementation:
//! zero-cost first row, optimum at the best cell of the last row.

use crate::PairAlignment;
use tsa_scoring::Scoring;
use tsa_seq::Seq;

/// A fitting alignment: the aligned rows (covering all of `a`) plus the
/// half-open window of `b` they span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FittingAlignment {
    /// Rows over the matched region only (no free end gaps included).
    pub alignment: PairAlignment,
    /// `b[window.0 .. window.1]` is the region `a` was fitted into.
    pub window: (usize, usize),
}

/// Fit all of `a` into the best window of `b`.
pub fn align(a: &Seq, b: &Seq, scoring: &Scoring) -> FittingAlignment {
    let g = scoring.gap_linear();
    let (ra, rb) = (a.residues(), b.residues());
    let (n, m) = (ra.len(), rb.len());
    let w = m + 1;
    let mut d = vec![0i32; (n + 1) * w];
    // First column: consuming a against nothing costs gaps; first row is
    // free (leading gap in b's frame... i.e. skipping b prefix).
    for i in 1..=n {
        d[i * w] = i as i32 * g;
    }
    for i in 1..=n {
        for j in 1..=m {
            let diag = d[(i - 1) * w + j - 1] + scoring.sub(ra[i - 1], rb[j - 1]);
            let up = d[(i - 1) * w + j] + g;
            let left = d[i * w + j - 1] + g;
            d[i * w + j] = diag.max(up).max(left);
        }
    }
    // Best end anywhere on the last row (free trailing skip of b).
    let (mut bj, mut best) = (0usize, d[n * w]);
    for j in 1..=m {
        if d[n * w + j] > best {
            best = d[n * w + j];
            bj = j;
        }
    }
    // Traceback from (n, bj) to row 0 (any column).
    let (mut i, mut j) = (n, bj);
    let mut row_a: Vec<Option<u8>> = Vec::new();
    let mut row_b: Vec<Option<u8>> = Vec::new();
    while i > 0 {
        let v = d[i * w + j];
        if j > 0 && v == d[(i - 1) * w + j - 1] + scoring.sub(ra[i - 1], rb[j - 1]) {
            row_a.push(Some(ra[i - 1]));
            row_b.push(Some(rb[j - 1]));
            i -= 1;
            j -= 1;
        } else if v == d[(i - 1) * w + j] + g {
            row_a.push(Some(ra[i - 1]));
            row_b.push(None);
            i -= 1;
        } else {
            debug_assert!(
                j > 0 && v == d[i * w + j - 1] + g,
                "broken fitting traceback"
            );
            row_a.push(None);
            row_b.push(Some(rb[j - 1]));
            j -= 1;
        }
    }
    row_a.reverse();
    row_b.reverse();
    FittingAlignment {
        alignment: PairAlignment {
            row_a,
            row_b,
            score: best,
        },
        window: (j, bj),
    }
}

/// Fitting alignment score only.
pub fn align_score(a: &Seq, b: &Seq, scoring: &Scoring) -> i32 {
    align(a, b, scoring).alignment.score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nw;
    use crate::test_util::random_pair;

    fn s() -> Scoring {
        Scoring::dna_default()
    }

    #[test]
    fn fragment_is_placed_at_its_origin() {
        let b = Seq::dna("TTTTTTGATTACATTTTTT").unwrap();
        let a = Seq::dna("GATTACA").unwrap();
        let fit = align(&a, &b, &s());
        assert_eq!(fit.alignment.score, 14);
        assert_eq!(fit.window, (6, 13));
        assert_eq!(
            fit.alignment
                .row_b
                .iter()
                .flatten()
                .copied()
                .collect::<Vec<u8>>(),
            b"GATTACA"
        );
    }

    #[test]
    fn fitting_equals_best_window_global() {
        // Oracle: max over all windows b[x..y] of NW(a, window).
        for seed in 0..10 {
            let (a, b) = {
                let (x, y) = random_pair(seed + 70, 10);
                (x.slice(0, x.len().min(5)), y)
            };
            let mut want = i32::MIN;
            for x in 0..=b.len() {
                for y in x..=b.len() {
                    want = want.max(nw::align_score(&a, &b.slice(x, y), &s()));
                }
            }
            assert_eq!(align_score(&a, &b, &s()), want, "seed {seed}");
        }
    }

    #[test]
    fn fitting_at_least_global_and_at_most_local_plus_ends() {
        for seed in 0..12 {
            let (a, b) = random_pair(seed + 500, 25);
            let fit = align_score(&a, &b, &s());
            // Global pays for b's ends, fitting doesn't.
            assert!(fit >= nw::align_score(&a, &b, &s()), "seed {seed}");
            // Local is free on BOTH sequences' ends, so it dominates.
            assert!(
                crate::local::align_score(&a, &b, &s()) >= fit,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn rows_cover_all_of_a_and_the_window_of_b() {
        for seed in 0..10 {
            let (a, b) = random_pair(seed + 650, 20);
            let fit = align(&a, &b, &s());
            let degap_a: Vec<u8> = fit.alignment.row_a.iter().flatten().copied().collect();
            assert_eq!(degap_a, a.residues(), "seed {seed}");
            let degap_b: Vec<u8> = fit.alignment.row_b.iter().flatten().copied().collect();
            let (x, y) = fit.window;
            assert_eq!(degap_b, b.residues()[x..y], "seed {seed}");
            assert_eq!(
                fit.alignment.rescore(&s()),
                fit.alignment.score,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn empty_fragment_fits_anywhere_for_free() {
        let e = Seq::dna("").unwrap();
        let b = Seq::dna("ACGT").unwrap();
        let fit = align(&e, &b, &s());
        assert_eq!(fit.alignment.score, 0);
        assert!(fit.alignment.is_empty());
    }

    #[test]
    fn empty_reference_forces_all_gaps() {
        let a = Seq::dna("ACG").unwrap();
        let e = Seq::dna("").unwrap();
        let fit = align(&a, &e, &s());
        assert_eq!(fit.alignment.score, -6);
        assert_eq!(fit.window, (0, 0));
    }
}
