//! Pairwise (two-sequence) global alignment.
//!
//! The two-sequence case is both a *substrate* of the three-sequence
//! aligner (the center-star heuristic baseline and the projection bounds
//! are built from pairwise optima) and the natural place to validate every
//! technique in its simplest form:
//!
//! * [`nw`] — full-matrix Needleman–Wunsch with traceback;
//! * [`score_only`] — two-row linear-space score computation, forward and
//!   backward;
//! * [`hirschberg`] — divide-and-conquer full alignment in linear space;
//! * [`gotoh`] — affine-gap alignment (three-matrix Gotoh);
//! * [`banded`] — banded NW for similar sequences;
//! * [`local`] — Smith–Waterman local alignment;
//! * [`fitting`] — glocal alignment (fit a fragment into a reference);
//! * [`wavefront_par`] — anti-diagonal parallel NW (the 2D warm-up of the
//!   paper's 3D algorithm).
//!
//! All algorithms maximize `Σ s(aᵢ, bⱼ)` plus gap contributions from the
//! shared [`tsa_scoring::Scoring`].

pub mod banded;
pub mod fitting;
pub mod gotoh;
pub mod hirschberg;
pub mod local;
pub mod nw;
pub mod pair_alignment;
pub mod score_only;
pub mod wavefront_par;

pub use pair_alignment::PairAlignment;

#[cfg(test)]
pub(crate) mod test_util {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tsa_seq::gen::random_seq;
    use tsa_seq::{Alphabet, Seq};

    /// Deterministic random DNA pair for cross-algorithm tests.
    pub fn random_pair(seed: u64, max_len: usize) -> (Seq, Seq) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let la = rng.gen_range(0..=max_len);
        let lb = rng.gen_range(0..=max_len);
        (
            random_seq(Alphabet::Dna, la, &mut rng),
            random_seq(Alphabet::Dna, lb, &mut rng),
        )
    }
}
