//! Property tests pinning the pairwise aligners to brute-force oracles
//! and to each other.

use proptest::prelude::*;
use tsa_pairwise::{banded, gotoh, hirschberg, nw, score_only, wavefront_par, PairAlignment};
use tsa_scoring::{sp, GapModel, Scoring};
use tsa_seq::Seq;

fn dna(max_len: usize) -> impl Strategy<Value = Seq> {
    prop::collection::vec(
        prop::sample::select(vec![b'A', b'C', b'G', b'T']),
        0..=max_len,
    )
    .prop_map(|v| Seq::dna(v).unwrap())
}

/// Brute force: enumerate every pairwise alignment (move sequences) and
/// score the rows under the scoring's own gap model. Exponential — keep
/// inputs tiny.
#[allow(clippy::too_many_arguments)]
fn brute_force_best(a: &Seq, b: &Seq, scoring: &Scoring) -> i32 {
    fn go(
        ra: &[u8],
        rb: &[u8],
        i: usize,
        j: usize,
        x: &mut Vec<Option<u8>>,
        y: &mut Vec<Option<u8>>,
        scoring: &Scoring,
        best: &mut i32,
    ) {
        if i == ra.len() && j == rb.len() {
            *best = (*best).max(sp::projected_pair_score(scoring, x, y));
            return;
        }
        if i < ra.len() && j < rb.len() {
            x.push(Some(ra[i]));
            y.push(Some(rb[j]));
            go(ra, rb, i + 1, j + 1, x, y, scoring, best);
            x.pop();
            y.pop();
        }
        if i < ra.len() {
            x.push(Some(ra[i]));
            y.push(None);
            go(ra, rb, i + 1, j, x, y, scoring, best);
            x.pop();
            y.pop();
        }
        if j < rb.len() {
            x.push(None);
            y.push(Some(rb[j]));
            go(ra, rb, i, j + 1, x, y, scoring, best);
            x.pop();
            y.pop();
        }
    }
    if a.is_empty() && b.is_empty() {
        return 0;
    }
    let mut best = i32::MIN;
    go(
        a.residues(),
        b.residues(),
        0,
        0,
        &mut Vec::new(),
        &mut Vec::new(),
        scoring,
        &mut best,
    );
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn nw_matches_brute_force(a in dna(5), b in dna(5)) {
        let s = Scoring::dna_default();
        prop_assert_eq!(nw::align_score(&a, &b, &s), brute_force_best(&a, &b, &s));
    }

    #[test]
    fn gotoh_matches_brute_force_affine(a in dna(4), b in dna(4)) {
        let s = Scoring::dna_default().with_gap(GapModel::affine(-5, -1));
        prop_assert_eq!(gotoh::align_score(&a, &b, &s), brute_force_best(&a, &b, &s));
    }

    #[test]
    fn all_linear_aligners_agree(a in dna(35), b in dna(35)) {
        let s = Scoring::dna_default();
        let reference = nw::align_score(&a, &b, &s);
        prop_assert_eq!(score_only::score(&a, &b, &s), reference);
        prop_assert_eq!(hirschberg::align(&a, &b, &s).score, reference);
        prop_assert_eq!(wavefront_par::align_score(&a, &b, &s), reference);
        prop_assert_eq!(banded::align_adaptive(&a, &b, &s).score, reference);
    }

    #[test]
    fn tracebacks_validate(a in dna(25), b in dna(25)) {
        let lin = Scoring::dna_default();
        let aff = Scoring::dna_default().with_gap(GapModel::affine(-6, -1));
        for aln in [
            nw::align(&a, &b, &lin),
            hirschberg::align(&a, &b, &lin),
            wavefront_par::align(&a, &b, &lin),
            banded::align_adaptive(&a, &b, &lin),
        ] {
            prop_assert!(aln.validate(&a, &b, &lin).is_ok());
        }
        let g = gotoh::align(&a, &b, &aff);
        prop_assert!(g.validate(&a, &b, &aff).is_ok());
    }

    #[test]
    fn score_is_a_maximum(a in dna(12), b in dna(12), cols in prop::collection::vec(0u8..3, 0..30)) {
        // Any feasible alignment scores at most the DP optimum. Build a
        // feasible alignment from an arbitrary move script (clipped to
        // remaining residues, then completed).
        let s = Scoring::dna_default();
        let (ra, rb) = (a.residues(), b.residues());
        let mut aln = PairAlignment { row_a: vec![], row_b: vec![], score: 0 };
        let (mut i, mut j) = (0usize, 0usize);
        for mv in cols {
            match mv {
                0 if i < ra.len() && j < rb.len() => {
                    aln.row_a.push(Some(ra[i]));
                    aln.row_b.push(Some(rb[j]));
                    i += 1;
                    j += 1;
                }
                1 if i < ra.len() => {
                    aln.row_a.push(Some(ra[i]));
                    aln.row_b.push(None);
                    i += 1;
                }
                2 if j < rb.len() => {
                    aln.row_a.push(None);
                    aln.row_b.push(Some(rb[j]));
                    j += 1;
                }
                _ => {}
            }
        }
        while i < ra.len() {
            aln.row_a.push(Some(ra[i]));
            aln.row_b.push(None);
            i += 1;
        }
        while j < rb.len() {
            aln.row_a.push(None);
            aln.row_b.push(Some(rb[j]));
            j += 1;
        }
        let feasible = sp::projected_pair_score(&s, &aln.row_a, &aln.row_b);
        prop_assert!(feasible <= nw::align_score(&a, &b, &s));
    }

    #[test]
    fn banded_with_any_sufficient_band_is_feasible(a in dna(20), b in dna(20), extra in 0usize..10) {
        let s = Scoring::dna_default();
        let w = a.len().abs_diff(b.len()) + extra;
        if let Some(aln) = banded::align(&a, &b, &s, w) {
            prop_assert!(aln.validate(&a, &b, &s).is_ok());
            prop_assert!(aln.score <= nw::align_score(&a, &b, &s));
        }
    }

    #[test]
    fn forward_backward_rows_are_consistent(a in dna(15), b in dna(15)) {
        // fwd[j] + bwd[j] maximized over j equals the optimum (full-row
        // Hirschberg identity at the a-boundary).
        let s = Scoring::dna_default();
        let f = score_only::forward_last_row(&a, &b, &s);
        let empty = Seq::dna("").unwrap();
        let r = score_only::backward_last_row(&empty, &b, &s);
        let combined = (0..=b.len()).map(|j| f[j] + r[j]).max().unwrap();
        prop_assert_eq!(combined, nw::align_score(&a, &b, &s));
    }
}
