//! Property tests for scoring: symmetry, decomposition, and gap algebra.

use proptest::prelude::*;
use tsa_scoring::{sp, GapModel, Scoring, SubstMatrix};

fn residue() -> impl Strategy<Value = u8> {
    prop::sample::select(b"ARNDCQEGHILKMFPSTWYV".to_vec())
}

fn entry() -> impl Strategy<Value = Option<u8>> {
    prop_oneof![3 => residue().prop_map(Some), 1 => Just(None)]
}

fn scorings() -> Vec<Scoring> {
    vec![
        Scoring::unit(),
        Scoring::dna_default(),
        Scoring::blosum62(),
        Scoring::pam250(),
    ]
}

proptest! {
    #[test]
    fn substitution_is_symmetric(a in residue(), b in residue()) {
        for s in scorings() {
            prop_assert_eq!(s.sub(a, b), s.sub(b, a), "{}", s.matrix.name());
        }
    }

    #[test]
    fn sp_column_is_permutation_invariant(col in [entry(), entry(), entry()]) {
        let s = Scoring::blosum62();
        let base = sp::sp_column(&s, col);
        for perm in [
            [col[0], col[2], col[1]],
            [col[1], col[0], col[2]],
            [col[1], col[2], col[0]],
            [col[2], col[0], col[1]],
            [col[2], col[1], col[0]],
        ] {
            prop_assert_eq!(sp::sp_column(&s, perm), base);
        }
    }

    #[test]
    fn sp_column_decomposes_into_pairs(col in [entry(), entry(), entry()]) {
        let s = Scoring::pam250();
        let want = sp::pair_score(&s, col[0], col[1])
            + sp::pair_score(&s, col[0], col[2])
            + sp::pair_score(&s, col[1], col[2]);
        prop_assert_eq!(sp::sp_column(&s, col), want);
    }

    #[test]
    fn linear_sp_is_column_sum(rows in prop::collection::vec([entry(), entry(), entry()], 0..30)) {
        let s = Scoring::dna_default();
        let (mut r0, mut r1, mut r2) = (Vec::new(), Vec::new(), Vec::new());
        for col in &rows {
            r0.push(col[0]);
            r1.push(col[1]);
            r2.push(col[2]);
        }
        let by_cols: i32 = rows.iter().map(|&c| sp::sp_column(&s, c)).sum();
        prop_assert_eq!(sp::sp_score_linear(&s, [&r0, &r1, &r2]), by_cols);
        prop_assert_eq!(sp::sp_score(&s, [&r0, &r1, &r2]), by_cols);
    }

    #[test]
    fn affine_never_beats_open_free(rows in prop::collection::vec([entry(), entry()], 0..30)) {
        // For the same extension cost, adding an opening penalty can only
        // lower a projected pairwise score.
        let base = Scoring::dna_default().with_gap(GapModel::affine(0, -2));
        let open = Scoring::dna_default().with_gap(GapModel::affine(-7, -2));
        let (mut x, mut y) = (Vec::new(), Vec::new());
        for col in &rows {
            x.push(col[0]);
            y.push(col[1]);
        }
        prop_assert!(
            sp::projected_pair_score(&open, &x, &y) <= sp::projected_pair_score(&base, &x, &y)
        );
    }

    #[test]
    fn run_cost_is_affine_in_length(len in 0usize..50, open in -20i32..=0, ext in -10i32..=0) {
        let g = GapModel::affine(open, ext);
        let want = if len == 0 { 0 } else { open + len as i32 * ext };
        prop_assert_eq!(g.run_cost(len), want);
    }

    #[test]
    fn from_fn_matrices_sample_exactly(a in any::<u8>(), b in any::<u8>()) {
        let m = SubstMatrix::from_fn("xor", |x, y| (x ^ y) as i32);
        prop_assert_eq!(m.sub(a, b), (a ^ b) as i32);
    }

    #[test]
    fn wildcards_are_neutral(a in residue()) {
        // N is neutral in the match/mismatch matrices; X is neutral in the
        // protein matrices (it is outside the 20-residue table).
        prop_assert_eq!(Scoring::unit().sub(a, b'N'), 0);
        prop_assert_eq!(Scoring::dna_default().sub(a, b'N'), 0);
        prop_assert_eq!(Scoring::blosum62().sub(a, b'X'), 0);
        prop_assert_eq!(Scoring::pam250().sub(b'X', a), 0);
    }
}
