//! Sum-of-pairs (SP) scoring of alignment rows.
//!
//! An alignment of `k` sequences is a matrix of rows over `Option<u8>`
//! (`None` = gap). Its SP score is the sum over all `k·(k−1)/2` row pairs of
//! the pairwise alignment score of those two rows — equivalently, the sum
//! over columns of the pairwise scores inside each column.
//!
//! Two gap conventions are supported, matching [`crate::GapModel`]:
//!
//! * **linear** — every residue–gap pair in a column contributes the gap
//!   penalty; gap–gap contributes 0. Column-decomposable, so
//!   [`sp_column`] exists and `sp_score_linear` is its sum.
//! * **affine** — gap runs are charged `open + k·extend` *per row pair*,
//!   after deleting columns where both rows gap (the *projected* pairwise
//!   alignment). This is the standard "natural" SP gap cost.

use crate::Scoring;

/// Pairwise score of one column entry pair under linear gaps.
#[inline]
pub fn pair_score(scoring: &Scoring, x: Option<u8>, y: Option<u8>) -> i32 {
    match (x, y) {
        (Some(a), Some(b)) => scoring.sub(a, b),
        (Some(_), None) | (None, Some(_)) => scoring.gap_linear(),
        (None, None) => 0,
    }
}

/// Sum-of-pairs score of a single 3-row column under linear gaps.
#[inline]
pub fn sp_column(scoring: &Scoring, col: [Option<u8>; 3]) -> i32 {
    pair_score(scoring, col[0], col[1])
        + pair_score(scoring, col[0], col[2])
        + pair_score(scoring, col[1], col[2])
}

/// Linear-gap SP score of three equal-length rows.
///
/// # Panics
/// Panics if the rows differ in length or the gap model is affine.
pub fn sp_score_linear(scoring: &Scoring, rows: [&[Option<u8>]; 3]) -> i32 {
    assert_eq!(rows[0].len(), rows[1].len(), "rows must be equal length");
    assert_eq!(rows[0].len(), rows[2].len(), "rows must be equal length");
    (0..rows[0].len())
        .map(|c| sp_column(scoring, [rows[0][c], rows[1][c], rows[2][c]]))
        .sum()
}

/// Affine (or linear) score of the *projection* of two rows: columns where
/// both rows are gaps are removed, matches/mismatches use the matrix, and
/// each maximal gap run is charged [`crate::GapModel::run_cost`].
///
/// With a linear gap model this equals the column-wise linear pairwise
/// score, so it is the single entry point alignment re-scorers use.
pub fn projected_pair_score(scoring: &Scoring, x: &[Option<u8>], y: &[Option<u8>]) -> i32 {
    assert_eq!(x.len(), y.len(), "rows must be equal length");
    let mut score = 0i32;
    // Gap-run state: which row is currently inside a gap run (after
    // projection). 0 = none, 1 = x gapped, 2 = y gapped.
    let mut run: u8 = 0;
    for c in 0..x.len() {
        match (x[c], y[c]) {
            (Some(a), Some(b)) => {
                score += scoring.sub(a, b);
                run = 0;
            }
            (None, Some(_)) => {
                if run != 1 {
                    score += scoring.gap.open_penalty();
                    run = 1;
                }
                score += scoring.gap.extend_penalty();
            }
            (Some(_), None) => {
                if run != 2 {
                    score += scoring.gap.open_penalty();
                    run = 2;
                }
                score += scoring.gap.extend_penalty();
            }
            // Both gapped: projected out entirely. The run state is kept so
            // a gap in x, a shared gap column, then more gap in x counts as
            // ONE projected run (the projection really is contiguous).
            (None, None) => {}
        }
    }
    score
}

/// SP score of three rows under the scoring's own gap model: linear models
/// reduce to [`sp_score_linear`]; affine models sum the three
/// [`projected_pair_score`]s.
pub fn sp_score(scoring: &Scoring, rows: [&[Option<u8>]; 3]) -> i32 {
    projected_pair_score(scoring, rows[0], rows[1])
        + projected_pair_score(scoring, rows[0], rows[2])
        + projected_pair_score(scoring, rows[1], rows[2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GapModel;

    fn g(c: char) -> Option<u8> {
        if c == '-' {
            None
        } else {
            Some(c as u8)
        }
    }

    fn row(s: &str) -> Vec<Option<u8>> {
        s.chars().map(g).collect()
    }

    #[test]
    fn pair_score_cases() {
        let s = Scoring::dna_default();
        assert_eq!(pair_score(&s, g('A'), g('A')), 2);
        assert_eq!(pair_score(&s, g('A'), g('C')), -1);
        assert_eq!(pair_score(&s, g('A'), g('-')), -2);
        assert_eq!(pair_score(&s, g('-'), g('A')), -2);
        assert_eq!(pair_score(&s, g('-'), g('-')), 0);
    }

    #[test]
    fn sp_column_enumerates_all_three_pairs() {
        let s = Scoring::dna_default();
        // (A, A, A): three matches.
        assert_eq!(sp_column(&s, [g('A'); 3]), 6);
        // (A, C, G): three mismatches.
        assert_eq!(sp_column(&s, [g('A'), g('C'), g('G')]), -3);
        // (A, A, -): one match + two gaps.
        assert_eq!(sp_column(&s, [g('A'), g('A'), g('-')]), 2 - 2 - 2);
        // (A, -, -): two gaps + one gap-gap.
        assert_eq!(sp_column(&s, [g('A'), g('-'), g('-')]), -4);
        // (-, -, -): nothing.
        assert_eq!(sp_column(&s, [g('-'); 3]), 0);
    }

    #[test]
    fn linear_sum_matches_columns() {
        let s = Scoring::dna_default();
        let (a, b, c) = (row("AC-T"), row("A-GT"), row("ACGT"));
        let total = sp_score_linear(&s, [&a, &b, &c]);
        let by_col: i32 = (0..4).map(|i| sp_column(&s, [a[i], b[i], c[i]])).sum();
        assert_eq!(total, by_col);
        // And sp_score agrees for linear models.
        assert_eq!(total, sp_score(&s, [&a, &b, &c]));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn unequal_rows_panic() {
        let s = Scoring::dna_default();
        let (a, b, c) = (row("AC"), row("ACT"), row("AC"));
        let _ = sp_score_linear(&s, [&a, &b, &c]);
    }

    #[test]
    fn projected_pair_linear_equals_columnwise() {
        let s = Scoring::dna_default();
        let x = row("AC--GT-");
        let y = row("A-CG-TT");
        let columnwise: i32 = (0..x.len()).map(|i| pair_score(&s, x[i], y[i])).sum();
        assert_eq!(projected_pair_score(&s, &x, &y), columnwise);
    }

    #[test]
    fn affine_charges_open_once_per_run() {
        let s = Scoring::dna_default().with_gap(GapModel::affine(-10, -1));
        // x: AAAA, y: A--A → one run of 2 in y.
        let (x, y) = (row("AAAA"), row("A--A"));
        assert_eq!(projected_pair_score(&s, &x, &y), 2 + 2 + (-10 - 2));
        // Two separate runs pay open twice.
        let (x, y) = (row("AAAAA"), row("A-A-A"));
        assert_eq!(projected_pair_score(&s, &x, &y), 6 + 2 * (-10 - 1));
    }

    #[test]
    fn affine_projection_merges_runs_across_gap_gap_columns() {
        let s = Scoring::dna_default().with_gap(GapModel::affine(-10, -1));
        // Column 2 is gap-gap; after projection x has ONE run of length 2.
        let x = row("A---A");
        let y = row("AG-GA");
        // Projection deletes column 2: x = A--A vs y = AGGA, one run of 2.
        assert_eq!(projected_pair_score(&s, &x, &y), 2 + 2 + (-10 - 2));
    }

    #[test]
    fn affine_run_interrupted_by_other_rows_gap_reopens() {
        let s = Scoring::dna_default().with_gap(GapModel::affine(-10, -1));
        // x gap, then y gap, then x gap: three separate projected runs.
        let x = row("A-G-A");
        let y = row("AG-GA");
        assert_eq!(projected_pair_score(&s, &x, &y), 2 + 2 + 3 * (-10 - 1));
    }

    #[test]
    fn sp_score_affine_sums_three_projections() {
        let s = Scoring::dna_default().with_gap(GapModel::affine(-4, -1));
        let (a, b, c) = (row("ACGT"), row("A-GT"), row("AC-T"));
        let expect = projected_pair_score(&s, &a, &b)
            + projected_pair_score(&s, &a, &c)
            + projected_pair_score(&s, &b, &c);
        assert_eq!(sp_score(&s, [&a, &b, &c]), expect);
    }

    #[test]
    fn all_gap_rows_score_zero() {
        let s = Scoring::dna_default();
        let r = row("---");
        assert_eq!(sp_score_linear(&s, [&r, &r, &r]), 0);
        assert_eq!(sp_score(&s, [&r, &r, &r]), 0);
    }

    #[test]
    fn empty_rows_score_zero() {
        let s = Scoring::dna_default();
        let r = row("");
        assert_eq!(sp_score_linear(&s, [&r, &r, &r]), 0);
    }
}
