//! Gap cost models.
//!
//! Penalties are stored as *score contributions* — i.e. they are expected to
//! be negative for the usual maximization setting. A linear model charges
//! `gap` for every residue aligned against a gap; an affine model charges
//! `open + k * extend` for a maximal run of `k` gaps in one row relative to
//! another.

/// Linear or affine gap costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapModel {
    /// Every residue–gap pair contributes `gap`.
    Linear {
        /// Per-residue gap contribution (usually negative).
        gap: i32,
    },
    /// A maximal gap run of length `k` contributes `open + k * extend`.
    Affine {
        /// One-time contribution for opening a gap run (usually negative).
        open: i32,
        /// Per-residue contribution inside a run (usually negative).
        extend: i32,
    },
}

impl GapModel {
    /// A linear model with per-residue contribution `gap`.
    pub fn linear(gap: i32) -> Self {
        GapModel::Linear { gap }
    }

    /// An affine model `open + k * extend`.
    pub fn affine(open: i32, extend: i32) -> Self {
        GapModel::Affine { open, extend }
    }

    /// The per-residue penalty if the model is linear.
    pub fn linear_penalty(&self) -> Option<i32> {
        match *self {
            GapModel::Linear { gap } => Some(gap),
            GapModel::Affine { .. } => None,
        }
    }

    /// The opening contribution: 0 for linear models.
    pub fn open_penalty(&self) -> i32 {
        match *self {
            GapModel::Linear { .. } => 0,
            GapModel::Affine { open, .. } => open,
        }
    }

    /// The per-residue extension contribution (equals the linear penalty for
    /// linear models).
    pub fn extend_penalty(&self) -> i32 {
        match *self {
            GapModel::Linear { gap } => gap,
            GapModel::Affine { extend, .. } => extend,
        }
    }

    /// Total contribution of a maximal gap run of length `len`.
    pub fn run_cost(&self, len: usize) -> i32 {
        if len == 0 {
            return 0;
        }
        self.open_penalty() + (len as i32) * self.extend_penalty()
    }

    /// True if this is an affine model with `open != 0` (i.e. genuinely
    /// different from a linear model).
    pub fn is_truly_affine(&self) -> bool {
        matches!(self, GapModel::Affine { open, .. } if *open != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_accessors() {
        let g = GapModel::linear(-3);
        assert_eq!(g.linear_penalty(), Some(-3));
        assert_eq!(g.open_penalty(), 0);
        assert_eq!(g.extend_penalty(), -3);
        assert!(!g.is_truly_affine());
    }

    #[test]
    fn affine_accessors() {
        let g = GapModel::affine(-10, -1);
        assert_eq!(g.linear_penalty(), None);
        assert_eq!(g.open_penalty(), -10);
        assert_eq!(g.extend_penalty(), -1);
        assert!(g.is_truly_affine());
    }

    #[test]
    fn affine_with_zero_open_is_effectively_linear() {
        let g = GapModel::affine(0, -2);
        assert!(!g.is_truly_affine());
        assert_eq!(g.run_cost(5), GapModel::linear(-2).run_cost(5));
    }

    #[test]
    fn run_cost_values() {
        assert_eq!(GapModel::linear(-2).run_cost(0), 0);
        assert_eq!(GapModel::linear(-2).run_cost(4), -8);
        assert_eq!(GapModel::affine(-10, -1).run_cost(0), 0);
        assert_eq!(GapModel::affine(-10, -1).run_cost(1), -11);
        assert_eq!(GapModel::affine(-10, -1).run_cost(5), -15);
    }
}
