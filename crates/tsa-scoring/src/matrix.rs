//! Substitution matrices.
//!
//! A [`SubstMatrix`] maps a pair of residue bytes to a score through a dense
//! 256×256 table, so the hot-loop lookup is a single indexed load with no
//! branching or case folding (tables are built for both upper- and
//! lower-case bytes). The table is behind an `Arc`, so cloning a matrix (or
//! a `Scoring`) is cheap and sharing one across rayon workers is free.
//!
//! Besides parametric match/mismatch matrices, the standard protein matrices
//! BLOSUM62, BLOSUM50 and PAM250 are bundled, in the conventional
//! `ARNDCQEGHILKMFPSTWYV` residue order.

use std::sync::Arc;

/// Residue order of the bundled protein matrix tables.
pub const PROTEIN_ORDER: &[u8; 20] = b"ARNDCQEGHILKMFPSTWYV";

/// A dense residue-pair substitution matrix.
#[derive(Clone)]
pub struct SubstMatrix {
    name: &'static str,
    table: Arc<[i32]>, // 256 * 256
}

impl std::fmt::Debug for SubstMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubstMatrix")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl SubstMatrix {
    /// Build a matrix from an arbitrary scoring function over byte pairs.
    ///
    /// The function is sampled for every `(a, b)` byte pair once; lookups
    /// afterwards are pure table loads. Case-insensitivity (or not) is up to
    /// the provided function; the preset constructors all fold case.
    pub fn from_fn(name: &'static str, f: impl Fn(u8, u8) -> i32) -> Self {
        let mut table = vec![0i32; 256 * 256];
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                table[(a as usize) << 8 | b as usize] = f(a, b);
            }
        }
        SubstMatrix {
            name,
            table: table.into(),
        }
    }

    /// A match/mismatch matrix: `match_score` when the (case-folded) bytes
    /// are equal, `mismatch_score` otherwise. Wildcards (`N`, `X`) score 0
    /// against everything.
    pub fn match_mismatch(name: &'static str, match_score: i32, mismatch_score: i32) -> Self {
        SubstMatrix::from_fn(name, |a, b| {
            let (a, b) = (a.to_ascii_uppercase(), b.to_ascii_uppercase());
            if a == b'N' || b == b'N' || a == b'X' || b == b'X' {
                0
            } else if a == b {
                match_score
            } else {
                mismatch_score
            }
        })
    }

    /// Build from a 20×20 protein table in [`PROTEIN_ORDER`]. Pairs with a
    /// non-standard residue (including the `X` wildcard) score `default`.
    pub fn from_protein_table(name: &'static str, rows: &[[i32; 20]; 20], default: i32) -> Self {
        let index = |byte: u8| -> Option<usize> {
            PROTEIN_ORDER
                .iter()
                .position(|&r| r == byte.to_ascii_uppercase())
        };
        SubstMatrix::from_fn(name, |a, b| match (index(a), index(b)) {
            (Some(i), Some(j)) => rows[i][j],
            _ => default,
        })
    }

    /// The matrix's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Substitution score of two residue bytes.
    #[inline(always)]
    pub fn sub(&self, a: u8, b: u8) -> i32 {
        // Safety of plain indexing: (a << 8 | b) < 65536 == table.len().
        self.table[(a as usize) << 8 | b as usize]
    }

    /// Is `m(a, b) == m(b, a)` for every byte pair?
    pub fn is_symmetric(&self) -> bool {
        (0..=255u8).all(|a| (a..=255u8).all(|b| self.sub(a, b) == self.sub(b, a)))
    }

    /// The BLOSUM62 matrix (half-bit units).
    pub fn blosum62() -> Self {
        SubstMatrix::from_protein_table("BLOSUM62", &BLOSUM62, 0)
    }

    /// The BLOSUM50 matrix (third-bit units).
    pub fn blosum50() -> Self {
        SubstMatrix::from_protein_table("BLOSUM50", &BLOSUM50, 0)
    }

    /// The PAM250 matrix.
    pub fn pam250() -> Self {
        SubstMatrix::from_protein_table("PAM250", &PAM250, 0)
    }
}

/// BLOSUM62, rows/cols in [`PROTEIN_ORDER`].
#[rustfmt::skip]
pub const BLOSUM62: [[i32; 20]; 20] = [
    //  A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
    [   4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0], // A
    [  -1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3], // R
    [  -2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3], // N
    [  -2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3], // D
    [   0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1], // C
    [  -1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2], // Q
    [  -1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2], // E
    [   0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3], // G
    [  -2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3], // H
    [  -1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3], // I
    [  -1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1], // L
    [  -1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2], // K
    [  -1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1], // M
    [  -2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1], // F
    [  -1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2], // P
    [   1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2], // S
    [   0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0], // T
    [  -3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3], // W
    [  -2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1], // Y
    [   0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4], // V
];

/// BLOSUM50, rows/cols in [`PROTEIN_ORDER`].
#[rustfmt::skip]
pub const BLOSUM50: [[i32; 20]; 20] = [
    //  A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
    [   5, -2, -1, -2, -1, -1, -1,  0, -2, -1, -2, -1, -1, -3, -1,  1,  0, -3, -2,  0], // A
    [  -2,  7, -1, -2, -4,  1,  0, -3,  0, -4, -3,  3, -2, -3, -3, -1, -1, -3, -1, -3], // R
    [  -1, -1,  7,  2, -2,  0,  0,  0,  1, -3, -4,  0, -2, -4, -2,  1,  0, -4, -2, -3], // N
    [  -2, -2,  2,  8, -4,  0,  2, -1, -1, -4, -4, -1, -4, -5, -1,  0, -1, -5, -3, -4], // D
    [  -1, -4, -2, -4, 13, -3, -3, -3, -3, -2, -2, -3, -2, -2, -4, -1, -1, -5, -3, -1], // C
    [  -1,  1,  0,  0, -3,  7,  2, -2,  1, -3, -2,  2,  0, -4, -1,  0, -1, -1, -1, -3], // Q
    [  -1,  0,  0,  2, -3,  2,  6, -3,  0, -4, -3,  1, -2, -3, -1, -1, -1, -3, -2, -3], // E
    [   0, -3,  0, -1, -3, -2, -3,  8, -2, -4, -4, -2, -3, -4, -2,  0, -2, -3, -3, -4], // G
    [  -2,  0,  1, -1, -3,  1,  0, -2, 10, -4, -3,  0, -1, -1, -2, -1, -2, -3,  2, -4], // H
    [  -1, -4, -3, -4, -2, -3, -4, -4, -4,  5,  2, -3,  2,  0, -3, -3, -1, -3, -1,  4], // I
    [  -2, -3, -4, -4, -2, -2, -3, -4, -3,  2,  5, -3,  3,  1, -4, -3, -1, -2, -1,  1], // L
    [  -1,  3,  0, -1, -3,  2,  1, -2,  0, -3, -3,  6, -2, -4, -1,  0, -1, -3, -2, -3], // K
    [  -1, -2, -2, -4, -2,  0, -2, -3, -1,  2,  3, -2,  7,  0, -3, -2, -1, -1,  0,  1], // M
    [  -3, -3, -4, -5, -2, -4, -3, -4, -1,  0,  1, -4,  0,  8, -4, -3, -2,  1,  4, -1], // F
    [  -1, -3, -2, -1, -4, -1, -1, -2, -2, -3, -4, -1, -3, -4, 10, -1, -1, -4, -3, -3], // P
    [   1, -1,  1,  0, -1,  0, -1,  0, -1, -3, -3,  0, -2, -3, -1,  5,  2, -4, -2, -2], // S
    [   0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  2,  5, -3, -2,  0], // T
    [  -3, -3, -4, -5, -5, -1, -3, -3, -3, -3, -2, -3, -1,  1, -4, -4, -3, 15,  2, -3], // W
    [  -2, -1, -2, -3, -3, -1, -2, -3,  2, -1, -1, -2,  0,  4, -3, -2, -2,  2,  8, -1], // Y
    [   0, -3, -3, -4, -1, -3, -3, -4, -4,  4,  1, -3,  1, -1, -3, -2,  0, -3, -1,  5], // V
];

/// PAM250, rows/cols in [`PROTEIN_ORDER`].
#[rustfmt::skip]
pub const PAM250: [[i32; 20]; 20] = [
    //  A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
    [   2, -2,  0,  0, -2,  0,  0,  1, -1, -1, -2, -1, -1, -3,  1,  1,  1, -6, -3,  0], // A
    [  -2,  6,  0, -1, -4,  1, -1, -3,  2, -2, -3,  3,  0, -4,  0,  0, -1,  2, -4, -2], // R
    [   0,  0,  2,  2, -4,  1,  1,  0,  2, -2, -3,  1, -2, -3,  0,  1,  0, -4, -2, -2], // N
    [   0, -1,  2,  4, -5,  2,  3,  1,  1, -2, -4,  0, -3, -6, -1,  0,  0, -7, -4, -2], // D
    [  -2, -4, -4, -5, 12, -5, -5, -3, -3, -2, -6, -5, -5, -4, -3,  0, -2, -8,  0, -2], // C
    [   0,  1,  1,  2, -5,  4,  2, -1,  3, -2, -2,  1, -1, -5,  0, -1, -1, -5, -4, -2], // Q
    [   0, -1,  1,  3, -5,  2,  4,  0,  1, -2, -3,  0, -2, -5, -1,  0,  0, -7, -4, -2], // E
    [   1, -3,  0,  1, -3, -1,  0,  5, -2, -3, -4, -2, -3, -5,  0,  1,  0, -7, -5, -1], // G
    [  -1,  2,  2,  1, -3,  3,  1, -2,  6, -2, -2,  0, -2, -2,  0, -1, -1, -3,  0, -2], // H
    [  -1, -2, -2, -2, -2, -2, -2, -3, -2,  5,  2, -2,  2,  1, -2, -1,  0, -5, -1,  4], // I
    [  -2, -3, -3, -4, -6, -2, -3, -4, -2,  2,  6, -3,  4,  2, -3, -3, -2, -2, -1,  2], // L
    [  -1,  3,  1,  0, -5,  1,  0, -2,  0, -2, -3,  5,  0, -5, -1,  0,  0, -3, -4, -2], // K
    [  -1,  0, -2, -3, -5, -1, -2, -3, -2,  2,  4,  0,  6,  0, -2, -2, -1, -4, -2,  2], // M
    [  -3, -4, -3, -6, -4, -5, -5, -5, -2,  1,  2, -5,  0,  9, -5, -3, -3,  0,  7, -1], // F
    [   1,  0,  0, -1, -3,  0, -1,  0,  0, -2, -3, -1, -2, -5,  6,  1,  0, -6, -5, -1], // P
    [   1,  0,  1,  0,  0, -1,  0,  1, -1, -1, -3,  0, -2, -3,  1,  2,  1, -2, -3, -1], // S
    [   1, -1,  0,  0, -2, -1,  0,  0, -1,  0, -2,  0, -1, -3,  0,  1,  3, -5, -3,  0], // T
    [  -6,  2, -4, -7, -8, -5, -7, -7, -3, -5, -2, -3, -4,  0, -6, -2, -5, 17,  0, -6], // W
    [  -3, -4, -2, -4,  0, -4, -4, -5,  0, -1, -1, -4, -2,  7, -5, -3, -3,  0, 10, -2], // Y
    [   0, -2, -2, -2, -2, -2, -2, -1, -2,  4,  2, -2,  2, -1, -1, -1,  0, -6, -2,  4], // V
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_mismatch_basic() {
        let m = SubstMatrix::match_mismatch("t", 3, -2);
        assert_eq!(m.sub(b'A', b'A'), 3);
        assert_eq!(m.sub(b'A', b'a'), 3);
        assert_eq!(m.sub(b'A', b'C'), -2);
        assert_eq!(m.name(), "t");
    }

    #[test]
    fn wildcards_score_zero() {
        let m = SubstMatrix::match_mismatch("t", 3, -2);
        assert_eq!(m.sub(b'N', b'A'), 0);
        assert_eq!(m.sub(b'A', b'N'), 0);
        assert_eq!(m.sub(b'X', b'X'), 0);
    }

    #[test]
    fn all_presets_are_symmetric() {
        for m in [
            SubstMatrix::blosum62(),
            SubstMatrix::blosum50(),
            SubstMatrix::pam250(),
            SubstMatrix::match_mismatch("mm", 5, -4),
        ] {
            assert!(m.is_symmetric(), "{} is not symmetric", m.name());
        }
    }

    #[test]
    fn table_constants_are_symmetric() {
        for (name, t) in [
            ("BLOSUM62", &BLOSUM62),
            ("BLOSUM50", &BLOSUM50),
            ("PAM250", &PAM250),
        ] {
            for i in 0..20 {
                for j in 0..20 {
                    assert_eq!(
                        t[i][j], t[j][i],
                        "{name}[{}][{}] asymmetric",
                        PROTEIN_ORDER[i] as char, PROTEIN_ORDER[j] as char
                    );
                }
            }
        }
    }

    #[test]
    fn blosum62_spot_checks() {
        let m = SubstMatrix::blosum62();
        assert_eq!(m.sub(b'W', b'W'), 11);
        assert_eq!(m.sub(b'A', b'A'), 4);
        assert_eq!(m.sub(b'E', b'D'), 2);
        assert_eq!(m.sub(b'I', b'V'), 3);
        assert_eq!(m.sub(b'C', b'C'), 9);
        assert_eq!(m.sub(b'P', b'P'), 7);
    }

    #[test]
    fn pam250_spot_checks() {
        let m = SubstMatrix::pam250();
        assert_eq!(m.sub(b'W', b'W'), 17);
        assert_eq!(m.sub(b'C', b'C'), 12);
        assert_eq!(m.sub(b'F', b'Y'), 7);
        assert_eq!(m.sub(b'D', b'W'), -7);
    }

    #[test]
    fn blosum50_spot_checks() {
        let m = SubstMatrix::blosum50();
        assert_eq!(m.sub(b'W', b'W'), 15);
        assert_eq!(m.sub(b'H', b'H'), 10);
        assert_eq!(m.sub(b'P', b'P'), 10);
    }

    #[test]
    fn protein_diagonals_are_positive() {
        for m in [
            SubstMatrix::blosum62(),
            SubstMatrix::blosum50(),
            SubstMatrix::pam250(),
        ] {
            for &r in PROTEIN_ORDER {
                assert!(m.sub(r, r) > 0, "{}({0}, {0}) <= 0", m.name());
            }
        }
    }

    #[test]
    fn protein_lookup_is_case_insensitive() {
        let m = SubstMatrix::blosum62();
        assert_eq!(m.sub(b'w', b'W'), 11);
        assert_eq!(m.sub(b'w', b'w'), 11);
    }

    #[test]
    fn unknown_protein_residue_scores_default() {
        let m = SubstMatrix::blosum62();
        assert_eq!(m.sub(b'X', b'W'), 0);
        assert_eq!(m.sub(b'Z', b'Z'), 0);
        assert_eq!(m.sub(b'*', b'A'), 0);
    }

    #[test]
    fn from_fn_is_sampled_exactly() {
        let m = SubstMatrix::from_fn("sum", |a, b| a as i32 + b as i32);
        assert_eq!(m.sub(0, 0), 0);
        assert_eq!(m.sub(255, 255), 510);
        assert_eq!(m.sub(b'A', b'B'), 65 + 66);
    }

    #[test]
    fn clone_shares_table() {
        let m = SubstMatrix::blosum62();
        let c = m.clone();
        assert_eq!(m.sub(b'A', b'R'), c.sub(b'A', b'R'));
    }
}
