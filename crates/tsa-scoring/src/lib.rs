//! Scoring substrate: substitution matrices, gap models, and sum-of-pairs
//! (SP) scoring for two- and three-row alignments.
//!
//! Every aligner in the workspace maximizes a score built from two parts:
//!
//! * a **substitution matrix** ([`SubstMatrix`]) giving `s(a, b)` for two
//!   residues — unit match/mismatch, the DNA default, or a real protein
//!   matrix (BLOSUM62, BLOSUM50, PAM250);
//! * a **gap model** ([`GapModel`]) — linear (`g` per residue against a gap)
//!   or affine (`open + k·extend` for a run of `k` gaps).
//!
//! The pair is bundled as [`Scoring`]. For three sequences the per-column
//! score is the *sum of pairs*: the three pairwise scores of the column's
//! residue/gap entries, where a gap–gap pair contributes 0.
//!
//! ```
//! use tsa_scoring::{Scoring, GapModel};
//!
//! let s = Scoring::dna_default();
//! assert_eq!(s.sub(b'A', b'A'), 2);
//! assert_eq!(s.sub(b'A', b'C'), -1);
//! assert_eq!(s.gap.linear_penalty(), Some(-2));
//!
//! // SP score of the column (A, A, -):
//! let col = [Some(b'A'), Some(b'A'), None];
//! assert_eq!(s.sp_column(col), 2 + (-2) + (-2));
//! ```

pub mod gap;
pub mod matrix;
pub mod sp;

pub use gap::GapModel;
pub use matrix::SubstMatrix;

/// "Minus infinity" for DP cells that are unreachable. Chosen far below any
/// attainable score yet far above `i32::MIN`, so adding per-cell transition
/// scores to it can never wrap around.
pub const NEG_INF: i32 = i32::MIN / 4;

/// A complete scoring scheme: substitution matrix + gap model.
#[derive(Debug, Clone)]
pub struct Scoring {
    /// Residue-pair substitution scores.
    pub matrix: SubstMatrix,
    /// Gap cost model.
    pub gap: GapModel,
}

impl Scoring {
    /// Bundle an explicit matrix and gap model.
    pub fn new(matrix: SubstMatrix, gap: GapModel) -> Self {
        Scoring { matrix, gap }
    }

    /// The workspace's DNA default: match `+2`, mismatch `-1`, linear gap
    /// `-2` — the classic parameterization for nucleotide global alignment.
    pub fn dna_default() -> Self {
        Scoring::new(
            SubstMatrix::match_mismatch("dna", 2, -1),
            GapModel::linear(-2),
        )
    }

    /// Unit scores: match `+1`, mismatch `-1`, linear gap `-1`. Handy for
    /// hand-checkable tests.
    pub fn unit() -> Self {
        Scoring::new(
            SubstMatrix::match_mismatch("unit", 1, -1),
            GapModel::linear(-1),
        )
    }

    /// Edit-distance-like scores: match `0`, mismatch `-1`, gap `-1`.
    /// With these, `-score` of an optimal pairwise alignment equals the
    /// Levenshtein distance.
    pub fn edit_distance() -> Self {
        Scoring::new(
            SubstMatrix::match_mismatch("edit", 0, -1),
            GapModel::linear(-1),
        )
    }

    /// BLOSUM62 with a linear gap of `-8` (override with [`Scoring::with_gap`]).
    pub fn blosum62() -> Self {
        Scoring::new(SubstMatrix::blosum62(), GapModel::linear(-8))
    }

    /// BLOSUM50 with a linear gap of `-8`.
    pub fn blosum50() -> Self {
        Scoring::new(SubstMatrix::blosum50(), GapModel::linear(-8))
    }

    /// PAM250 with a linear gap of `-8`.
    pub fn pam250() -> Self {
        Scoring::new(SubstMatrix::pam250(), GapModel::linear(-8))
    }

    /// Look up a preset by its canonical name, as used by the CLI flags
    /// and the batch-service protocol: `dna`, `unit`, `edit`, `blosum62`,
    /// `blosum50` or `pam250`. Returns `None` for unknown names so callers
    /// can report the bad input themselves.
    pub fn by_name(name: &str) -> Option<Scoring> {
        Some(match name {
            "dna" => Scoring::dna_default(),
            "unit" => Scoring::unit(),
            "edit" => Scoring::edit_distance(),
            "blosum62" => Scoring::blosum62(),
            "blosum50" => Scoring::blosum50(),
            "pam250" => Scoring::pam250(),
            _ => return None,
        })
    }

    /// Replace the gap model, keeping the matrix.
    pub fn with_gap(mut self, gap: GapModel) -> Self {
        self.gap = gap;
        self
    }

    /// Substitution score of two residues.
    #[inline(always)]
    pub fn sub(&self, a: u8, b: u8) -> i32 {
        self.matrix.sub(a, b)
    }

    /// Per-residue gap contribution for linear scoring. Panics for affine
    /// models — linear-gap algorithms must check [`GapModel::linear_penalty`]
    /// up front.
    #[inline(always)]
    pub fn gap_linear(&self) -> i32 {
        self.gap
            .linear_penalty()
            .expect("linear gap model required (affine configured)")
    }

    /// Sum-of-pairs score of a single 3-row column under linear gaps.
    #[inline]
    pub fn sp_column(&self, col: [Option<u8>; 3]) -> i32 {
        sp::sp_column(self, col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dna_default_values() {
        let s = Scoring::dna_default();
        assert_eq!(s.sub(b'G', b'G'), 2);
        assert_eq!(s.sub(b'G', b'T'), -1);
        assert_eq!(s.gap_linear(), -2);
    }

    #[test]
    fn unit_and_edit_distance_presets() {
        let u = Scoring::unit();
        assert_eq!(u.sub(b'A', b'A'), 1);
        assert_eq!(u.sub(b'A', b'T'), -1);
        let e = Scoring::edit_distance();
        assert_eq!(e.sub(b'A', b'A'), 0);
        assert_eq!(e.gap_linear(), -1);
    }

    #[test]
    fn with_gap_replaces_model() {
        let s = Scoring::blosum62().with_gap(GapModel::affine(-10, -1));
        assert!(s.gap.linear_penalty().is_none());
        assert_eq!(s.gap.open_penalty(), -10);
        assert_eq!(s.gap.extend_penalty(), -1);
    }

    #[test]
    #[should_panic(expected = "linear gap model required")]
    fn gap_linear_panics_on_affine() {
        let s = Scoring::unit().with_gap(GapModel::affine(-5, -1));
        let _ = s.gap_linear();
    }

    #[test]
    fn protein_presets_load() {
        for s in [Scoring::blosum62(), Scoring::blosum50(), Scoring::pam250()] {
            assert!(s.sub(b'W', b'W') > 0);
            assert!(s.sub(b'W', b'A') < 0);
        }
    }

    #[test]
    fn by_name_resolves_every_preset() {
        for name in ["dna", "unit", "edit", "blosum62", "blosum50", "pam250"] {
            let s = Scoring::by_name(name).unwrap();
            assert!(s.matrix.name().eq_ignore_ascii_case(name), "{name}");
        }
        assert!(Scoring::by_name("nope").is_none());
        assert!(Scoring::by_name("DNA").is_none());
    }
}
