//! The harness RNG: SplitMix64, chosen because the entire chaos run —
//! workload content, repeat picks, shadow-verification sampling — must
//! replay bit-identically from one printed `u64` seed. No global state,
//! no entropy, no platform dependence.

/// A seeded SplitMix64 stream. Every draw the harness makes comes from
/// exactly one of these, in a fixed program order, so a seed fully
/// determines the run.
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// A stream reproducing the exact sequence for `seed`.
    pub fn new(seed: u64) -> ChaosRng {
        ChaosRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `0..n` (`0` when `n == 0`). The modulo bias
    /// is irrelevant at workload-generation scale and keeps the draw a
    /// single call — one draw per decision is what makes the replay
    /// contract auditable.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next_u64() % n
    }

    /// True once in `one_in` draws on average; `one_in == 0` is never.
    pub fn one_in(&mut self, one_in: u64) -> bool {
        one_in > 0 && self.below(one_in) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaosRng::new(42);
        let mut b = ChaosRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaosRng::new(1);
        let mut b = ChaosRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_stays_in_range_and_zero_is_safe() {
        let mut r = ChaosRng::new(7);
        for n in 1..50u64 {
            assert!(r.below(n) < n);
        }
        assert_eq!(r.below(0), 0);
        assert!(!ChaosRng::new(9).one_in(0));
    }
}
