//! # tsa-chaos — deterministic chaos harness + result-integrity verifier
//!
//! This crate turns the cluster's fault-injection hooks into a seeded,
//! fully reproducible chaos engine. One run:
//!
//! 1. parses a **schedule spec** ([`ChaosSpec`]) — worker count, job
//!    count, and a list of injections (`kill`, `pause`, `sever`,
//!    `corrupt-journal`, `corrupt-checkpoints`) pinned to submission
//!    indices, plus optional ambient slow-disk latency via the
//!    existing `#fault-disk-slow` tag directive;
//! 2. generates a **deterministic workload** from the spec's seed
//!    (repeats included, so cache and journal-recovery paths are
//!    exercised);
//! 3. drives a real [`tsa_cluster::Coordinator`] — spawned worker
//!    processes, real sockets, real journals — firing each injection
//!    at its boundary while the surrounding jobs are in flight;
//! 4. checks **global invariants** at quiesce: the accounting identity,
//!    journal-replay idempotence, per-record content checksums, trace
//!    completeness, repeat-consistency, quarantine accounting
//!    (`integrity_quarantined` must equal the number of injected flips
//!    whose journals were replayed), and a shadow recompute of a
//!    sampled job fraction against the scalar reference kernel.
//!
//! The harness writes a logical event log with *no* timing-dependent
//! content: two runs of the same seed and spec produce byte-identical
//! logs, and any failing run replays from the `# tsa-chaos seed=N`
//! line it printed.

pub mod harness;
pub mod inject;
pub mod invariants;
pub mod rng;
pub mod spec;
pub mod workload;

pub use harness::{run_spec, ChaosOptions, ChaosReport};
pub use rng::ChaosRng;
pub use spec::{ChaosAction, ChaosEvent, ChaosSpec, SlowDisk};
pub use workload::{generate, ChaosJob};
