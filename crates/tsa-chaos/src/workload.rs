//! Deterministic workload generation: the job list is a pure function
//! of the spec (seed, counts, rates). Repeats re-submit earlier content
//! so the run exercises cache hits and journal-recovered hits — the
//! paths the integrity checksums guard.

use tsa_seq::Seq;
use tsa_service::{content_uid, AlignRequest};

use crate::rng::ChaosRng;
use crate::spec::ChaosSpec;

/// One generated job, fully determined by the spec.
#[derive(Debug, Clone)]
pub struct ChaosJob {
    /// Submission index (also the segment-ordering key in the log).
    pub index: usize,
    /// The request tag: `chaos-<index>`, plus a `#fault-disk-slow`
    /// directive on slow-disk-tagged jobs.
    pub tag: String,
    /// The three DNA sequences.
    pub seqs: [String; 3],
    /// `Some(i)` when this job re-submits job `i`'s content.
    pub repeat_of: Option<usize>,
    /// Whether the verifier shadow-recomputes this job's score with the
    /// scalar reference kernel.
    pub shadow_verify: bool,
    /// The content fingerprint the cluster routes (and caches) by.
    pub uid: String,
}

impl ChaosJob {
    /// The wire request for this job.
    pub fn request(&self) -> AlignRequest {
        AlignRequest::new(
            self.tag.clone(),
            Seq::dna(&self.seqs[0]).expect("generated DNA is valid"),
            Seq::dna(&self.seqs[1]).expect("generated DNA is valid"),
            Seq::dna(&self.seqs[2]).expect("generated DNA is valid"),
        )
    }
}

fn random_dna(rng: &mut ChaosRng, max_len: usize) -> String {
    const BASES: [char; 4] = ['A', 'C', 'G', 'T'];
    let len = 1 + rng.below(max_len as u64) as usize;
    (0..len).map(|_| BASES[rng.below(4) as usize]).collect()
}

/// Generate the full job list for a spec. The draw order is fixed —
/// repeat pick, then content, then the shadow-verify coin — so the
/// same seed always yields the same workload.
pub fn generate(spec: &ChaosSpec) -> Vec<ChaosJob> {
    let mut rng = ChaosRng::new(spec.seed);
    let mut jobs: Vec<ChaosJob> = Vec::with_capacity(spec.jobs);
    for index in 0..spec.jobs {
        let repeat_of = (spec.repeat_every > 0 && index > 0 && index % spec.repeat_every == 0)
            .then(|| rng.below(index as u64) as usize);
        let seqs = match repeat_of {
            Some(original) => jobs[original].seqs.clone(),
            None => [
                random_dna(&mut rng, spec.max_len),
                random_dna(&mut rng, spec.max_len),
                random_dna(&mut rng, spec.max_len),
            ],
        };
        let shadow_verify = rng.one_in(spec.verify_one_in);
        let mut tag = format!("chaos-{index}");
        if let Some(sd) = spec.slow_disk {
            if sd.every > 0 && index % sd.every == 0 {
                tag.push_str(&format!("#fault-disk-slow={}", sd.ms));
            }
        }
        let mut job = ChaosJob {
            index,
            tag,
            seqs,
            repeat_of,
            shadow_verify,
            uid: String::new(),
        };
        job.uid = content_uid(&job.request());
        jobs.push(job);
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SlowDisk;

    fn spec() -> ChaosSpec {
        ChaosSpec {
            seed: 11,
            jobs: 20,
            repeat_every: 4,
            verify_one_in: 3,
            ..ChaosSpec::default()
        }
    }

    #[test]
    fn same_seed_generates_the_identical_workload() {
        let a = generate(&spec());
        let b = generate(&spec());
        assert_eq!(a.len(), 20);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seqs, y.seqs);
            assert_eq!(x.tag, y.tag);
            assert_eq!(x.uid, y.uid);
            assert_eq!(x.repeat_of, y.repeat_of);
            assert_eq!(x.shadow_verify, y.shadow_verify);
        }
    }

    #[test]
    fn repeats_share_content_and_route_identically() {
        let jobs = generate(&spec());
        let repeats: Vec<&ChaosJob> = jobs.iter().filter(|j| j.repeat_of.is_some()).collect();
        assert!(!repeats.is_empty());
        for r in repeats {
            let original = &jobs[r.repeat_of.unwrap()];
            assert_eq!(r.seqs, original.seqs);
            // Tags differ but the routing/caching fingerprint must not:
            // a repeat is only a cache hit if it lands on the same shard.
            assert_ne!(r.tag, original.tag);
            assert_eq!(r.uid, original.uid);
        }
    }

    #[test]
    fn slow_disk_tags_every_nth_job_with_the_directive() {
        let mut s = spec();
        s.slow_disk = Some(SlowDisk { every: 5, ms: 7 });
        let jobs = generate(&s);
        for job in &jobs {
            let tagged = job.tag.contains("#fault-disk-slow=7");
            assert_eq!(tagged, job.index % 5 == 0, "job {}", job.index);
        }
        // The directive lives in the tag, not the content: tagged jobs
        // still fingerprint by sequence alone.
        let plain = generate(&spec());
        assert_eq!(jobs[0].uid, plain[0].uid);
    }

    #[test]
    fn sequences_respect_the_length_bound_and_alphabet() {
        let mut s = spec();
        s.max_len = 6;
        for job in generate(&s) {
            for seq in &job.seqs {
                assert!(!seq.is_empty() && seq.len() <= 6);
                assert!(seq.bytes().all(|b| b"ACGT".contains(&b)));
            }
        }
    }
}
