//! On-disk corruption injectors. These never make a file unparseable:
//! a journal flip turns one digit of a `done` record's score into
//! another digit, so the line still reads as valid JSON and only the
//! record's content checksum (`ck`) can expose it — which is exactly
//! the failure mode silent disk corruption presents in production.

use std::fs;
use std::io;
use std::path::Path;

/// Flip one low bit in the score digit of each of the last `flips`
/// `done` records of a journal. Returns how many records were actually
/// flipped (fewer than asked when the journal holds fewer done
/// records).
pub fn corrupt_journal_scores(journal: &Path, flips: u32) -> io::Result<u32> {
    let text = fs::read_to_string(journal)?;
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    let done_lines: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.contains("\"ev\":\"done\""))
        .map(|(i, _)| i)
        .collect();
    let mut performed = 0;
    for &i in done_lines.iter().rev().take(flips as usize) {
        if let Some(flipped) = flip_score_digit(&lines[i]) {
            lines[i] = flipped;
            performed += 1;
        }
    }
    if performed > 0 {
        let mut out = lines.join("\n");
        out.push('\n');
        fs::write(journal, out)?;
    }
    Ok(performed)
}

/// XOR the lowest bit of the score's *last* digit: every ASCII digit
/// maps to its even/odd neighbor (`'3'` ↔ `'2'`), so the value changes
/// but the JSON stays well-formed (the last digit can never become a
/// leading zero).
fn flip_score_digit(line: &str) -> Option<String> {
    let key = "\"score\":";
    let mut i = line.find(key)? + key.len();
    let bytes = line.as_bytes();
    if bytes.get(i) == Some(&b'-') {
        i += 1;
    }
    if !bytes.get(i)?.is_ascii_digit() {
        return None;
    }
    while i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
        i += 1;
    }
    let mut out = bytes.to_vec();
    out[i] ^= 1;
    String::from_utf8(out).ok()
}

/// Flip one byte in the middle of every `*.ckpt` snapshot under `dir`.
/// Returns how many snapshots were corrupted. The recovery scrub
/// (`tsa_core::scrub_snapshot_dir`) must detect and delete every one.
pub fn corrupt_checkpoints(dir: &Path) -> io::Result<u32> {
    let mut performed = 0;
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ckpt"))
        .collect();
    paths.sort();
    for path in paths {
        let mut bytes = fs::read(&path)?;
        if bytes.is_empty() {
            continue;
        }
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, bytes)?;
        performed += 1;
    }
    Ok(performed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_flip_changes_the_digit_but_not_the_shape() {
        let line = r#"{"ev":"done","uid":"ab","score":-3,"algorithm":"wavefront","ck":"00"}"#;
        let flipped = flip_score_digit(line).unwrap();
        assert_ne!(flipped, line);
        assert!(flipped.contains("\"score\":-2"));
        // Still a valid JSON object with every other field untouched.
        let v = tsa_service::json::Value::parse(&flipped).unwrap();
        assert_eq!(v.get("score").and_then(|s| s.as_i64()), Some(-2));
        assert_eq!(v.get("ev").and_then(|s| s.as_str()), Some("done"));
    }

    #[test]
    fn journal_corruption_targets_the_last_done_records_only() {
        let dir = std::env::temp_dir().join(format!("tsa-chaos-inject-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("journal.ndjson");
        fs::write(
            &journal,
            concat!(
                "{\"ev\":\"start\",\"uid\":\"u1\"}\n",
                "{\"ev\":\"done\",\"uid\":\"u1\",\"score\":-4,\"ck\":\"aa\"}\n",
                "{\"ev\":\"done\",\"uid\":\"u2\",\"score\":10,\"ck\":\"bb\"}\n",
                "{\"ev\":\"done\",\"uid\":\"u3\",\"score\":0,\"ck\":\"cc\"}\n",
            ),
        )
        .unwrap();
        // Ask for more flips than done records exist: performs 3.
        assert_eq!(corrupt_journal_scores(&journal, 5).unwrap(), 3);
        let text = fs::read_to_string(&journal).unwrap();
        // -4 → -5, 10 → 11, 0 → 1: last digit, low bit.
        assert!(text.contains("\"score\":-5"), "{text}");
        assert!(text.contains("\"score\":11"), "{text}");
        assert!(
            text.contains("\"score\":1,") || text.ends_with("\"score\":1\n"),
            "{text}"
        );
        assert!(text.contains("\"ev\":\"start\""), "start records untouched");
        // Every line still parses.
        for line in text.lines() {
            tsa_service::json::Value::parse(line).unwrap();
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_corruption_flips_every_snapshot() {
        let dir = std::env::temp_dir().join(format!("tsa-chaos-ckpt-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("a.ckpt"), b"snapshot-bytes-a").unwrap();
        fs::write(dir.join("b.ckpt"), b"snapshot-bytes-b").unwrap();
        fs::write(dir.join("ignore.txt"), b"not a snapshot").unwrap();
        assert_eq!(corrupt_checkpoints(&dir).unwrap(), 2);
        assert_ne!(fs::read(dir.join("a.ckpt")).unwrap(), b"snapshot-bytes-a");
        assert_eq!(fs::read(dir.join("ignore.txt")).unwrap(), b"not a snapshot");
        // A missing directory is a no-op, not an error.
        assert_eq!(corrupt_checkpoints(&dir.join("absent")).unwrap(), 0);
        fs::remove_dir_all(&dir).ok();
    }
}
