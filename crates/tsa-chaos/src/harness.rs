//! The chaos harness proper: boot a real cluster (spawned `tsa serve`
//! worker processes, real sockets, real journals), drive the seeded
//! workload through it in segments, fire the schedule's injections at
//! the segment boundaries, and check every global invariant once the
//! cluster quiesces.
//!
//! ## The determinism contract
//!
//! The harness writes a *logical* event log: seed, schedule, workload
//! content, injections, per-job outcomes (sorted by submission index),
//! and invariant verdicts. Nothing timed — no timestamps, pids, ports,
//! latencies, or cache/recovered flags — ever reaches the log, so two
//! runs with the same seed and spec produce byte-identical logs even
//! though their physical interleavings (which worker died mid-which
//! write) differ. A failing run is reproduced by re-running the spec
//! with the seed on its first log line.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::PathBuf;
use std::sync::mpsc::sync_channel;
use std::time::{Duration, Instant};

use tsa_cluster::{ClusterConfig, Coordinator, ReplyTo, ShardId};
use tsa_core::{Algorithm, Aligner, SimdKernel};
use tsa_scoring::Scoring;
use tsa_seq::Seq;
use tsa_service::json::Value;

use crate::invariants::{self, Check, ResponseRow};
use crate::spec::{ChaosAction, ChaosSpec};
use crate::workload::{self, ChaosJob};

/// How long to wait for any single job's response. Generous: a job can
/// sit through several kill/respawn/replay cycles.
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(120);

/// How long to wait for every shard to answer stats after the last
/// injection (a trailing kill needs a respawn + journal replay before
/// its counters are visible again).
const QUIESCE_TIMEOUT: Duration = Duration::from_secs(30);

/// Harness options that do not affect the logical run (and therefore
/// may vary between replays of the same seed).
#[derive(Debug, Clone, Default)]
pub struct ChaosOptions {
    /// Worker binary; `None` re-executes the current binary (which must
    /// understand `serve --listen`).
    pub binary: Option<PathBuf>,
    /// Cluster state root; `None` uses a fresh directory under the OS
    /// temp dir. The directory is wiped before the run.
    pub state_dir: Option<PathBuf>,
    /// Keep the state directory after a passing run (always kept after
    /// a failing one, for post-mortems).
    pub keep_state: bool,
}

/// The outcome of one chaos run.
#[derive(Debug)]
pub struct ChaosReport {
    /// The seed that reproduces this run.
    pub seed: u64,
    /// Whether every invariant held.
    pub passed: bool,
    /// The full deterministic event log, newline-terminated.
    pub log: String,
    /// Where the cluster state lived (kept on failure).
    pub state_dir: PathBuf,
}

/// Run one chaos schedule against a real cluster.
pub fn run_spec(spec: &ChaosSpec, opts: &ChaosOptions) -> io::Result<ChaosReport> {
    let state_dir = opts.state_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!(
            "tsa-chaos-{}-{:016x}",
            std::process::id(),
            spec.seed
        ))
    });
    if state_dir.exists() {
        fs::remove_dir_all(&state_dir)?;
    }
    fs::create_dir_all(&state_dir)?;

    let mut log: Vec<String> = Vec::new();
    log.push(format!("# tsa-chaos seed={}", spec.seed));
    log.push(spec.summary_line());

    let jobs = workload::generate(spec);
    for job in &jobs {
        log.push(submit_line(job));
    }

    let coordinator = Coordinator::start(ClusterConfig {
        binary: opts.binary.clone(),
        workers: spec.workers,
        state_dir: Some(state_dir.clone()),
        worker_threads: Some(2),
        heartbeat: Duration::from_millis(100),
        flight_recorder: 256,
        ..ClusterConfig::default()
    })?;

    let mut rows: Vec<ResponseRow> = Vec::new();
    // Bit flips sitting in a journal that no respawn has replayed yet,
    // per shard; a kill or sever moves them into `replayed_flips`.
    let mut outstanding_flips: HashMap<ShardId, u32> = HashMap::new();
    let mut replayed_flips: u64 = 0;

    let mut next_event = 0;
    let mut at = 0;
    while at < jobs.len() || next_event < spec.events.len() {
        // Fire every injection scheduled at this boundary, in order.
        let mut paused: Vec<(ShardId, u64)> = Vec::new();
        while next_event < spec.events.len() && spec.events[next_event].at <= at {
            let action = &spec.events[next_event].action;
            apply_action(
                &coordinator,
                action,
                &state_dir,
                &mut outstanding_flips,
                &mut replayed_flips,
                &mut paused,
                &mut log,
            );
            next_event += 1;
        }
        // Submit the segment up to the next boundary, while the fault
        // (dead worker, severed link, frozen process) is still live.
        let seg_end = spec
            .events
            .get(next_event)
            .map_or(jobs.len(), |e| e.at.min(jobs.len()))
            .max(at);
        let mut waits = Vec::new();
        for job in &jobs[at..seg_end] {
            let (tx, rx) = sync_channel(1);
            coordinator.submit(job.request(), ReplyTo::Blocking(tx));
            waits.push((job.index, rx));
        }
        // Frozen shards thaw only after their configured stall, with
        // the segment's jobs already racing them.
        for (shard, for_ms) in paused {
            std::thread::sleep(Duration::from_millis(for_ms));
            coordinator.resume_shard(shard);
            log.push(format!("inject resume shard={shard}"));
        }
        // Collect the whole segment (submission order == index order).
        for (index, rx) in waits {
            let row = match rx.recv_timeout(RESPONSE_TIMEOUT) {
                Ok(line) => response_row(index, &line),
                Err(_) => ResponseRow {
                    index,
                    status: "timeout".into(),
                    score: None,
                    algorithm: None,
                    traced: false,
                },
            };
            log.push(done_line(&row));
            rows.push(row);
        }
        at = seg_end;
    }

    // Quiesce: every shard answering stats again (a trailing kill needs
    // its respawn + replay to finish before counters are credible).
    let stats = wait_for_quiesce(&coordinator, spec.workers);

    let mut checks: Vec<Check> = Vec::new();
    checks.push(invariants::responses_complete(&rows, jobs.len()));
    let repeats: Vec<(usize, usize)> = jobs
        .iter()
        .filter_map(|j| j.repeat_of.map(|o| (j.index, o)))
        .collect();
    checks.push(invariants::repeat_consistency(&rows, &repeats));
    checks.push(invariants::trace_completeness(&rows));
    checks.push(shadow_verify(&jobs, &rows));
    match &stats {
        Some(stats) => {
            checks.push(invariants::accounting(stats));
            checks.push(invariants::quarantine_accounting(stats, replayed_flips));
        }
        None => checks.push(Check {
            name: "cluster-quiesce",
            passed: false,
            detail: "not every shard answered stats before the quiesce timeout".into(),
        }),
    }
    checks.push(journal_check(&state_dir, spec.workers, &outstanding_flips));

    for check in &checks {
        log.push(check.log_line());
    }
    let passed = checks.iter().all(|c| c.passed);
    log.push(format!("verdict {}", if passed { "pass" } else { "FAIL" }));

    let line = coordinator.shutdown("shutdown");
    let _ = line;
    if passed && !opts.keep_state {
        fs::remove_dir_all(&state_dir).ok();
    }
    Ok(ChaosReport {
        seed: spec.seed,
        passed,
        log: log.join("\n") + "\n",
        state_dir,
    })
}

fn submit_line(job: &ChaosJob) -> String {
    let mut line = format!(
        "submit {} uid={} len={},{},{}",
        job.index,
        job.uid,
        job.seqs[0].len(),
        job.seqs[1].len(),
        job.seqs[2].len()
    );
    if let Some(original) = job.repeat_of {
        line.push_str(&format!(" repeat_of={original}"));
    }
    if job.shadow_verify {
        line.push_str(" shadow");
    }
    if let Some(directive) = job.tag.find('#') {
        line.push_str(&format!(" tag_fault={}", &job.tag[directive..]));
    }
    line
}

fn done_line(row: &ResponseRow) -> String {
    let mut line = format!("done {} status={}", row.index, row.status);
    if let Some(score) = row.score {
        line.push_str(&format!(" score={score}"));
    }
    if let Some(algorithm) = &row.algorithm {
        line.push_str(&format!(" algorithm={algorithm}"));
    }
    line
}

fn response_row(index: usize, line: &str) -> ResponseRow {
    let Ok(v) = Value::parse(line) else {
        return ResponseRow {
            index,
            status: "unparseable".into(),
            score: None,
            algorithm: None,
            traced: false,
        };
    };
    ResponseRow {
        index,
        status: v
            .get("status")
            .and_then(Value::as_str)
            .unwrap_or("error")
            .to_string(),
        score: v.get("score").and_then(Value::as_i64),
        algorithm: v
            .get("algorithm")
            .and_then(Value::as_str)
            .map(str::to_owned),
        traced: v
            .get("trace_id")
            .and_then(Value::as_str)
            .is_some_and(|t| t.chars().any(|c| c != '0')),
    }
}

#[allow(clippy::too_many_arguments)]
fn apply_action(
    coordinator: &Coordinator,
    action: &ChaosAction,
    state_dir: &std::path::Path,
    outstanding_flips: &mut HashMap<ShardId, u32>,
    replayed_flips: &mut u64,
    paused: &mut Vec<(ShardId, u64)>,
    log: &mut Vec<String>,
) {
    match *action {
        ChaosAction::Kill { shard } => {
            coordinator.kill_shard(shard);
            // The respawn replays the shard's journal: every corrupt
            // record in it must now surface as a quarantine.
            *replayed_flips += u64::from(outstanding_flips.remove(&shard).unwrap_or(0));
            log.push(format!("inject kill shard={shard}"));
        }
        ChaosAction::Sever { shard } => {
            coordinator.sever_shard_link(shard);
            // A severed spawned worker is respawned too (the supervisor
            // cannot tell a dead socket from a dead process), so its
            // journal also replays.
            *replayed_flips += u64::from(outstanding_flips.remove(&shard).unwrap_or(0));
            log.push(format!("inject sever shard={shard}"));
        }
        ChaosAction::Pause { shard, for_ms } => {
            coordinator.pause_shard(shard);
            paused.push((shard, for_ms));
            log.push(format!("inject pause shard={shard}"));
        }
        ChaosAction::CorruptJournal { shard, flips } => {
            let journal = state_dir
                .join(format!("shard-{shard}"))
                .join("journal.ndjson");
            match crate::inject::corrupt_journal_scores(&journal, flips) {
                Ok(performed) => {
                    *outstanding_flips.entry(shard).or_insert(0) += performed;
                    log.push(format!("inject corrupt-journal shard={shard}"));
                }
                Err(e) => log.push(format!("inject corrupt-journal shard={shard} FAIL: {e}")),
            }
        }
        ChaosAction::CorruptCheckpoints { shard } => {
            let dir = state_dir.join(format!("shard-{shard}")).join("checkpoints");
            match crate::inject::corrupt_checkpoints(&dir) {
                Ok(_) => log.push(format!("inject corrupt-checkpoints shard={shard}")),
                Err(e) => log.push(format!(
                    "inject corrupt-checkpoints shard={shard} FAIL: {e}"
                )),
            }
        }
    }
}

/// Poll cluster stats until every spawned shard reports a row with an
/// empty queue, or the quiesce timeout passes.
fn wait_for_quiesce(coordinator: &Coordinator, workers: u32) -> Option<Value> {
    let deadline = Instant::now() + QUIESCE_TIMEOUT;
    loop {
        let stats = Value::parse(&coordinator.stats_line()).ok();
        if let Some(stats) = &stats {
            if let Some(Value::Arr(shards)) = stats.get("shards") {
                let settled = shards.len() as u32 == workers
                    && shards
                        .iter()
                        .all(|row| row.get("queue_depth").and_then(Value::as_u64) == Some(0));
                if settled {
                    return stats.clone().into();
                }
            }
        }
        if Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// **Shadow verification.** Re-run every sampled job's alignment with
/// the sequential full-lattice DP on the scalar kernel — the reference
/// implementation everything else in the workspace is differential-
/// tested against — and require score agreement with whatever the
/// cluster served (fresh, cached, or recovered).
fn shadow_verify(jobs: &[ChaosJob], rows: &[ResponseRow]) -> Check {
    let aligner = Aligner::new()
        .scoring(Scoring::dna_default())
        .algorithm(Algorithm::FullDp)
        .kernel(SimdKernel::Scalar);
    let mut bad = Vec::new();
    for job in jobs.iter().filter(|j| j.shadow_verify) {
        let Some(row) = rows.iter().find(|r| r.index == job.index) else {
            continue; // responses_complete already flags the gap
        };
        if row.status != "done" {
            continue;
        }
        let reference = aligner
            .align3(
                &Seq::dna(&job.seqs[0]).unwrap(),
                &Seq::dna(&job.seqs[1]).unwrap(),
                &Seq::dna(&job.seqs[2]).unwrap(),
            )
            .map(|a| a.score as i64);
        match reference {
            Ok(expected) if row.score == Some(expected) => {}
            Ok(expected) => bad.push(format!(
                "job {}: served {:?}, reference {expected}",
                job.index, row.score
            )),
            Err(e) => bad.push(format!("job {}: reference kernel failed: {e}", job.index)),
        }
    }
    if bad.is_empty() {
        Check {
            name: "shadow-recompute",
            passed: true,
            detail: String::new(),
        }
    } else {
        Check {
            name: "shadow-recompute",
            passed: false,
            detail: bad.join("; "),
        }
    }
}

/// Read every shard's journal twice and hand the texts to the
/// idempotence/checksum invariant.
fn journal_check(
    state_dir: &std::path::Path,
    workers: u32,
    outstanding_flips: &HashMap<ShardId, u32>,
) -> Check {
    let mut journals = Vec::new();
    for shard in 0..workers {
        let path = state_dir
            .join(format!("shard-{shard}"))
            .join("journal.ndjson");
        let first = fs::read_to_string(&path).unwrap_or_default();
        let second = fs::read_to_string(&path).unwrap_or_default();
        let expected_bad = outstanding_flips.get(&shard).copied().unwrap_or(0);
        journals.push((shard, first, second, expected_bad));
    }
    invariants::journal_integrity(&journals)
}
