//! The chaos schedule spec: one JSON document that fully determines a
//! run (together with its seed). Parsed with the workspace's hand-rolled
//! JSON reader — same zero-dependency rule as the wire protocol.
//!
//! ```json
//! {
//!   "seed": 42,
//!   "jobs": 24,
//!   "workers": 2,
//!   "max_len": 10,
//!   "repeat_every": 4,
//!   "verify_one_in": 3,
//!   "slow_disk": { "every": 5, "ms": 10 },
//!   "events": [
//!     { "at": 8,  "action": "kill",            "shard": 0 },
//!     { "at": 12, "action": "corrupt-journal", "shard": 0, "flips": 2 },
//!     { "at": 12, "action": "kill",            "shard": 0 },
//!     { "at": 16, "action": "sever",           "shard": 1 },
//!     { "at": 20, "action": "pause",           "shard": 1, "for_ms": 150 }
//!   ]
//! }
//! ```
//!
//! `at` is a *job index*: the injection fires at the boundary before job
//! `at` is submitted, after every earlier job's response has been
//! collected. Several events may share a boundary; they apply in listed
//! order (so `corrupt-journal` then `kill` of the same shard forces a
//! replay of the corrupted journal). Durations (`for_ms`) shape real
//! time only — nothing timed is ever written to the event log, which is
//! what keeps same-seed logs byte-identical.

use tsa_cluster::ShardId;
use tsa_service::json::Value;

/// One injection, fired at a job-index boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosAction {
    /// SIGKILL the shard's worker process (supervisor respawns it and
    /// the journal replay recovers completed work).
    Kill { shard: ShardId },
    /// SIGSTOP the worker for `for_ms`, then SIGCONT: a frozen — not
    /// dead — shard, the pathology breakers and hedges exist for.
    Pause { shard: ShardId, for_ms: u64 },
    /// Shut down the coordinator↔worker TCP connection: a network drop
    /// without process failure.
    Sever { shard: ShardId },
    /// Flip one low bit in the score of each of the last `flips` done
    /// records of the shard's journal. Keeps the JSON well-formed, so
    /// only the record checksum can catch it.
    CorruptJournal { shard: ShardId, flips: u32 },
    /// Flip one byte in every checkpoint snapshot under the shard's
    /// state dir (caught by the decode scrub on recovery).
    CorruptCheckpoints { shard: ShardId },
}

impl ChaosAction {
    /// Stable name used in specs and event-log lines.
    pub fn name(&self) -> &'static str {
        match self {
            ChaosAction::Kill { .. } => "kill",
            ChaosAction::Pause { .. } => "pause",
            ChaosAction::Sever { .. } => "sever",
            ChaosAction::CorruptJournal { .. } => "corrupt-journal",
            ChaosAction::CorruptCheckpoints { .. } => "corrupt-checkpoints",
        }
    }

    /// The shard this action targets.
    pub fn shard(&self) -> ShardId {
        match *self {
            ChaosAction::Kill { shard }
            | ChaosAction::Pause { shard, .. }
            | ChaosAction::Sever { shard }
            | ChaosAction::CorruptJournal { shard, .. }
            | ChaosAction::CorruptCheckpoints { shard } => shard,
        }
    }
}

/// One scheduled event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosEvent {
    /// Job-index boundary the action fires at (`0..=jobs`).
    pub at: usize,
    /// What to inject.
    pub action: ChaosAction,
}

/// Periodic `#fault-disk-slow` tagging: every `every`-th job carries a
/// journal-write stall of `ms` milliseconds. Only bites when the worker
/// binary is built with the `faults` feature; inert otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowDisk {
    /// Tag every n-th job (0 disables).
    pub every: usize,
    /// Stall duration in milliseconds.
    pub ms: u64,
}

/// A parsed, validated chaos schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Seed for every random decision the harness makes.
    pub seed: u64,
    /// Total jobs in the workload.
    pub jobs: usize,
    /// Spawned worker processes.
    pub workers: u32,
    /// Maximum sequence length (each of the three, independently).
    pub max_len: usize,
    /// Every n-th job re-submits earlier content (cache/recovery hits);
    /// 0 disables repeats.
    pub repeat_every: usize,
    /// Shadow-recompute one in n results with the scalar reference
    /// kernel; 0 disables sampling.
    pub verify_one_in: u64,
    /// Optional periodic slow-disk fault tagging.
    pub slow_disk: Option<SlowDisk>,
    /// The injection schedule, sorted by `at` (stable, so listed order
    /// breaks ties).
    pub events: Vec<ChaosEvent>,
}

impl Default for ChaosSpec {
    fn default() -> ChaosSpec {
        ChaosSpec {
            seed: 42,
            jobs: 24,
            workers: 2,
            max_len: 10,
            repeat_every: 4,
            verify_one_in: 3,
            slow_disk: None,
            events: Vec::new(),
        }
    }
}

fn field_u64(obj: &Value, key: &str, default: u64) -> Result<u64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("'{key}' must be a non-negative integer")),
    }
}

impl ChaosSpec {
    /// Parse and validate a spec document.
    pub fn parse(text: &str) -> Result<ChaosSpec, String> {
        let obj = Value::parse(text).map_err(|e| format!("spec is not valid JSON: {e}"))?;
        let defaults = ChaosSpec::default();
        let workers = field_u64(&obj, "workers", defaults.workers as u64)? as u32;
        let jobs = field_u64(&obj, "jobs", defaults.jobs as u64)? as usize;
        let mut spec = ChaosSpec {
            seed: field_u64(&obj, "seed", defaults.seed)?,
            jobs,
            workers,
            max_len: field_u64(&obj, "max_len", defaults.max_len as u64)? as usize,
            repeat_every: field_u64(&obj, "repeat_every", defaults.repeat_every as u64)? as usize,
            verify_one_in: field_u64(&obj, "verify_one_in", defaults.verify_one_in)?,
            slow_disk: None,
            events: Vec::new(),
        };
        if spec.jobs == 0 {
            return Err("'jobs' must be at least 1".into());
        }
        if spec.workers == 0 {
            return Err("'workers' must be at least 1".into());
        }
        if spec.max_len == 0 {
            return Err("'max_len' must be at least 1".into());
        }
        if let Some(sd) = obj.get("slow_disk") {
            let every = field_u64(sd, "every", 0)? as usize;
            let ms = field_u64(sd, "ms", 0)?;
            if every > 0 && ms > 0 {
                spec.slow_disk = Some(SlowDisk { every, ms });
            }
        }
        if let Some(events) = obj.get("events") {
            let Value::Arr(items) = events else {
                return Err("'events' must be an array".into());
            };
            for (i, item) in items.iter().enumerate() {
                spec.events.push(
                    parse_event(item, spec.jobs, spec.workers)
                        .map_err(|e| format!("events[{i}]: {e}"))?,
                );
            }
        }
        // Stable sort: same-boundary events keep their listed order, so
        // "corrupt then kill" recipes mean what they say.
        spec.events.sort_by_key(|e| e.at);
        Ok(spec)
    }

    /// One deterministic line summarizing the schedule, for the event
    /// log header (everything that shapes the run, nothing that times
    /// it).
    pub fn summary_line(&self) -> String {
        let mut line = format!(
            "spec jobs={} workers={} max_len={} repeat_every={} verify_one_in={}",
            self.jobs, self.workers, self.max_len, self.repeat_every, self.verify_one_in
        );
        if let Some(sd) = self.slow_disk {
            line.push_str(&format!(" slow_disk={}every/{}ms", sd.every, sd.ms));
        }
        let events: Vec<String> = self
            .events
            .iter()
            .map(|e| format!("{}@{}:{}", e.action.name(), e.at, e.action.shard()))
            .collect();
        line.push_str(&format!(" events=[{}]", events.join(",")));
        line
    }
}

fn parse_event(item: &Value, jobs: usize, workers: u32) -> Result<ChaosEvent, String> {
    let at = field_u64(item, "at", u64::MAX)?;
    if at == u64::MAX {
        return Err("missing 'at' (job-index boundary)".into());
    }
    if at as usize > jobs {
        return Err(format!("'at' {at} is past the last job boundary {jobs}"));
    }
    let shard = field_u64(item, "shard", u64::MAX)?;
    if shard == u64::MAX {
        return Err("missing 'shard'".into());
    }
    if shard >= workers as u64 {
        return Err(format!(
            "'shard' {shard} is not a spawned shard (workers={workers})"
        ));
    }
    let shard = shard as ShardId;
    let action = match item.get("action").and_then(Value::as_str) {
        Some("kill") => ChaosAction::Kill { shard },
        Some("pause") => ChaosAction::Pause {
            shard,
            for_ms: field_u64(item, "for_ms", 100)?,
        },
        Some("sever") => ChaosAction::Sever { shard },
        Some("corrupt-journal") => ChaosAction::CorruptJournal {
            shard,
            flips: field_u64(item, "flips", 1)?.max(1) as u32,
        },
        Some("corrupt-checkpoints") => ChaosAction::CorruptCheckpoints { shard },
        Some(other) => return Err(format!("unknown action '{other}'")),
        None => return Err("missing string field 'action'".into()),
    };
    Ok(ChaosEvent {
        at: at as usize,
        action,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_spec_takes_defaults() {
        let spec = ChaosSpec::parse("{}").unwrap();
        assert_eq!(spec, ChaosSpec::default());
        assert!(spec.summary_line().starts_with("spec jobs=24 workers=2"));
    }

    #[test]
    fn full_spec_round_trips_every_action() {
        let spec = ChaosSpec::parse(
            r#"{
                "seed": 7, "jobs": 30, "workers": 3, "max_len": 8,
                "repeat_every": 3, "verify_one_in": 2,
                "slow_disk": {"every": 5, "ms": 10},
                "events": [
                    {"at": 20, "action": "pause", "shard": 2, "for_ms": 50},
                    {"at": 10, "action": "corrupt-journal", "shard": 1, "flips": 2},
                    {"at": 10, "action": "kill", "shard": 1},
                    {"at": 15, "action": "sever", "shard": 0},
                    {"at": 25, "action": "corrupt-checkpoints", "shard": 0}
                ]
            }"#,
        )
        .unwrap();
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.slow_disk, Some(SlowDisk { every: 5, ms: 10 }));
        // Sorted by boundary, ties in listed order: corrupt before kill.
        let order: Vec<(usize, &str)> = spec
            .events
            .iter()
            .map(|e| (e.at, e.action.name()))
            .collect();
        assert_eq!(
            order,
            vec![
                (10, "corrupt-journal"),
                (10, "kill"),
                (15, "sever"),
                (20, "pause"),
                (25, "corrupt-checkpoints"),
            ]
        );
    }

    #[test]
    fn invalid_specs_are_rejected_with_reasons() {
        assert!(ChaosSpec::parse("not json").unwrap_err().contains("JSON"));
        assert!(ChaosSpec::parse(r#"{"jobs": 0}"#)
            .unwrap_err()
            .contains("jobs"));
        assert!(ChaosSpec::parse(r#"{"workers": 0}"#)
            .unwrap_err()
            .contains("workers"));
        let err =
            ChaosSpec::parse(r#"{"events":[{"at":1,"action":"kill","shard":9}]}"#).unwrap_err();
        assert!(err.contains("not a spawned shard"), "{err}");
        let err = ChaosSpec::parse(r#"{"jobs":4,"events":[{"at":99,"action":"kill","shard":0}]}"#)
            .unwrap_err();
        assert!(err.contains("past the last job boundary"), "{err}");
        let err =
            ChaosSpec::parse(r#"{"events":[{"at":1,"shard":0,"action":"melt"}]}"#).unwrap_err();
        assert!(err.contains("unknown action"), "{err}");
    }

    #[test]
    fn summary_line_is_deterministic_and_complete() {
        let text = r#"{"seed":1,"jobs":6,"workers":2,"events":[
            {"at":2,"action":"kill","shard":0},
            {"at":4,"action":"corrupt-journal","shard":1,"flips":3}
        ]}"#;
        let a = ChaosSpec::parse(text).unwrap().summary_line();
        let b = ChaosSpec::parse(text).unwrap().summary_line();
        assert_eq!(a, b);
        assert!(a.contains("events=[kill@2:0,corrupt-journal@4:1]"), "{a}");
    }
}
