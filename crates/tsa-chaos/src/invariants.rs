//! Global invariants the harness checks once the cluster quiesces.
//! Every function here is pure over collected artifacts (response rows,
//! aggregated stats JSON, journal texts), so each check is unit-testable
//! without booting a cluster — and the harness's pass/fail lines stay
//! deterministic: a passing check logs only its name, never a number
//! that could drift between same-seed runs.

use tsa_core::Algorithm;
use tsa_service::json::Value;
use tsa_service::result_checksum;

/// One invariant verdict. `detail` is empty on pass and names the
/// offending shards/jobs on failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Check {
    /// Stable invariant name.
    pub name: &'static str,
    /// Whether the invariant held.
    pub passed: bool,
    /// Failure explanation (empty on pass).
    pub detail: String,
}

impl Check {
    fn pass(name: &'static str) -> Check {
        Check {
            name,
            passed: true,
            detail: String::new(),
        }
    }

    fn fail(name: &'static str, detail: String) -> Check {
        Check {
            name,
            passed: false,
            detail,
        }
    }

    /// The event-log line for this verdict.
    pub fn log_line(&self) -> String {
        if self.passed {
            format!("invariant {} pass", self.name)
        } else {
            format!("invariant {} FAIL: {}", self.name, self.detail)
        }
    }
}

/// One collected submission response, reduced to its deterministic
/// fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseRow {
    /// Submission index.
    pub index: usize,
    /// Response `status` (`"done"` on the happy path) or a harness
    /// marker (`"timeout"`, `"unparseable"`).
    pub status: String,
    /// Response score, when present.
    pub score: Option<i64>,
    /// Resolved algorithm name, when present.
    pub algorithm: Option<String>,
    /// Nonzero distributed-trace id, when the response carried one.
    pub traced: bool,
}

/// **Accounting identity.** On every live shard, at quiesce:
/// `submitted == completed + rejected + cancelled + failed` and
/// `queue_depth == 0`. Counters reset with a respawned process, so the
/// identity holds per worker lifetime — exactly what each shard row of
/// the aggregated stats reports.
pub fn accounting(stats: &Value) -> Check {
    const NAME: &str = "accounting-identity";
    let Some(Value::Arr(shards)) = stats.get("shards") else {
        return Check::fail(NAME, "cluster stats carry no shard rows".into());
    };
    let mut bad = Vec::new();
    for row in shards {
        let field = |key| row.get(key).and_then(Value::as_u64).unwrap_or(0);
        let shard = field("shard");
        let submitted = field("submitted");
        let resolved =
            field("completed") + field("rejected") + field("cancelled") + field("failed");
        if submitted != resolved || field("queue_depth") != 0 {
            bad.push(format!(
                "shard {shard}: submitted={submitted} resolved={resolved} queue_depth={}",
                field("queue_depth")
            ));
        }
    }
    if bad.is_empty() {
        Check::pass(NAME)
    } else {
        Check::fail(NAME, bad.join("; "))
    }
}

/// **Every submission answered, and answered `done`.** The workload
/// sets no deadlines and the harness disables breakers, so under kills,
/// stops, severed links, and corrupted disks, every job must still
/// resolve to a successful response exactly once.
pub fn responses_complete(rows: &[ResponseRow], total: usize) -> Check {
    const NAME: &str = "every-job-answered";
    if rows.len() != total {
        return Check::fail(NAME, format!("{} responses for {total} jobs", rows.len()));
    }
    let bad: Vec<String> = rows
        .iter()
        .filter(|r| r.status != "done")
        .map(|r| format!("job {} status={}", r.index, r.status))
        .collect();
    if bad.is_empty() {
        Check::pass(NAME)
    } else {
        Check::fail(NAME, bad.join("; "))
    }
}

/// **Repeat consistency.** A job that re-submits earlier content must
/// report the same score — whether it was answered fresh, from cache,
/// or from a journal-recovered entry on a respawned worker.
pub fn repeat_consistency(rows: &[ResponseRow], repeats: &[(usize, usize)]) -> Check {
    const NAME: &str = "repeat-consistency";
    let score_of = |index: usize| rows.iter().find(|r| r.index == index).and_then(|r| r.score);
    let mut bad = Vec::new();
    for &(repeat, original) in repeats {
        let (a, b) = (score_of(repeat), score_of(original));
        if a != b || a.is_none() {
            bad.push(format!(
                "job {repeat} scored {a:?}, original {original} scored {b:?}"
            ));
        }
    }
    if bad.is_empty() {
        Check::pass(NAME)
    } else {
        Check::fail(NAME, bad.join("; "))
    }
}

/// **Trace-tree completeness (light).** With the flight recorder on,
/// every completed response must carry a nonzero trace id — no job may
/// fall out of the distributed trace, however many times it was
/// resubmitted across respawns.
pub fn trace_completeness(rows: &[ResponseRow]) -> Check {
    const NAME: &str = "trace-completeness";
    let bad: Vec<String> = rows
        .iter()
        .filter(|r| r.status == "done" && !r.traced)
        .map(|r| format!("job {}", r.index))
        .collect();
    if bad.is_empty() {
        Check::pass(NAME)
    } else {
        Check::fail(NAME, format!("untraced responses: {}", bad.join(", ")))
    }
}

/// One `done` record parsed back out of a journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalDone {
    /// Content fingerprint.
    pub uid: String,
    /// Journaled score.
    pub score: i64,
    /// Whether the record's `ck` checksum verifies against its payload.
    pub ck_verified: bool,
}

/// Parse every well-formed `done` record of a journal, in order,
/// re-deriving each record's content checksum the same way replay does.
pub fn parse_journal_dones(text: &str) -> Vec<JournalDone> {
    let mut dones = Vec::new();
    for line in text.lines() {
        let Ok(v) = Value::parse(line) else { continue };
        if v.get("ev").and_then(Value::as_str) != Some("done") {
            continue;
        }
        let Some(uid) = v.get("uid").and_then(Value::as_str) else {
            continue;
        };
        let Some(score) = v.get("score").and_then(Value::as_i64) else {
            continue;
        };
        dones.push(JournalDone {
            uid: uid.to_string(),
            score,
            ck_verified: done_ck_verified(&v, score),
        });
    }
    dones
}

fn done_ck_verified(v: &Value, score: i64) -> bool {
    let Some(algorithm) = v
        .get("algorithm")
        .and_then(Value::as_str)
        .and_then(|name| Algorithm::by_name(name, 16, 0))
    else {
        return false;
    };
    let rows = match v.get("rows") {
        None => None,
        Some(Value::Arr(items)) => {
            let strs: Vec<String> = items
                .iter()
                .filter_map(|r| r.as_str().map(str::to_owned))
                .collect();
            match <[String; 3]>::try_from(strs) {
                Ok(rows) => Some(rows),
                Err(_) => return false,
            }
        }
        Some(_) => return false,
    };
    let Some(ck) = v
        .get("ck")
        .and_then(Value::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
    else {
        return false;
    };
    ck == result_checksum(score as i32, rows.as_ref(), algorithm)
}

/// **Journal-replay idempotence + checksum closure.** Reading a shard's
/// journal twice must yield the identical record sequence, and the
/// number of checksum-failing records must equal exactly the injected
/// flips that no respawn has replayed (and therefore quarantined and
/// compacted away) yet.
pub fn journal_integrity(journals: &[(u32, String, String, u32)]) -> Check {
    const NAME: &str = "journal-replay-idempotence";
    let mut bad = Vec::new();
    for (shard, first, second, expected_bad) in journals {
        let a = parse_journal_dones(first);
        let b = parse_journal_dones(second);
        if a != b {
            bad.push(format!("shard {shard}: two replays disagree"));
            continue;
        }
        let failing = a.iter().filter(|d| !d.ck_verified).count() as u32;
        if failing != *expected_bad {
            bad.push(format!(
                "shard {shard}: {failing} checksum-failing done records, expected {expected_bad}"
            ));
        }
    }
    if bad.is_empty() {
        Check::pass(NAME)
    } else {
        Check::fail(NAME, bad.join("; "))
    }
}

/// **Quarantine accounting.** Every bit flip a respawn replayed must
/// have been quarantined (never served): the cluster-aggregated
/// `integrity_quarantined` counter equals the replayed flips. (`>=`
/// would also tolerate cache-entry rot the harness did not inject; the
/// harness injects deterministically, so equality is the honest check.)
pub fn quarantine_accounting(stats: &Value, replayed_flips: u64) -> Check {
    const NAME: &str = "bit-flips-quarantined";
    let quarantined = stats
        .get("integrity_quarantined")
        .and_then(Value::as_u64)
        .unwrap_or(0);
    if quarantined == replayed_flips {
        Check::pass(NAME)
    } else {
        Check::fail(
            NAME,
            format!("{quarantined} quarantined, {replayed_flips} corrupt records replayed"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsa_service::json::JsonObject;

    fn stats_with_shards(rows: Vec<JsonObject>) -> Value {
        Value::parse(
            &JsonObject::new()
                .u64("integrity_quarantined", 0)
                .objects("shards", rows)
                .finish(),
        )
        .unwrap()
    }

    fn shard_row(shard: u64, submitted: u64, completed: u64, failed: u64) -> JsonObject {
        JsonObject::new()
            .u64("shard", shard)
            .u64("submitted", submitted)
            .u64("completed", completed)
            .u64("rejected", 0)
            .u64("cancelled", 0)
            .u64("failed", failed)
            .u64("queue_depth", 0)
    }

    #[test]
    fn accounting_identity_passes_and_fails_per_shard() {
        let ok = stats_with_shards(vec![shard_row(0, 10, 9, 1), shard_row(1, 4, 4, 0)]);
        assert!(accounting(&ok).passed);
        let bad = stats_with_shards(vec![shard_row(0, 10, 8, 1)]);
        let check = accounting(&bad);
        assert!(!check.passed);
        assert!(check.detail.contains("shard 0"), "{}", check.detail);
    }

    #[test]
    fn response_checks_catch_missing_and_unsuccessful_jobs() {
        let rows = vec![
            ResponseRow {
                index: 0,
                status: "done".into(),
                score: Some(-3),
                algorithm: None,
                traced: true,
            },
            ResponseRow {
                index: 1,
                status: "timeout".into(),
                score: None,
                algorithm: None,
                traced: false,
            },
        ];
        assert!(!responses_complete(&rows, 3).passed, "2 of 3 answered");
        let check = responses_complete(&rows, 2);
        assert!(!check.passed, "a timeout is not an answer");
        assert!(check.detail.contains("job 1"), "{}", check.detail);
        assert!(
            !trace_completeness(&[ResponseRow {
                index: 0,
                status: "done".into(),
                score: Some(1),
                algorithm: None,
                traced: false,
            }])
            .passed
        );
    }

    #[test]
    fn repeat_consistency_compares_scores_across_instances() {
        let row = |index: usize, score: i64| ResponseRow {
            index,
            status: "done".into(),
            score: Some(score),
            algorithm: None,
            traced: true,
        };
        let rows = vec![row(0, -3), row(4, -3), row(5, 7)];
        assert!(repeat_consistency(&rows, &[(4, 0)]).passed);
        let check = repeat_consistency(&rows, &[(5, 0)]);
        assert!(!check.passed);
        assert!(check.detail.contains("job 5"), "{}", check.detail);
    }

    #[test]
    fn journal_checks_verify_real_checksums_and_count_flips() {
        // A genuine done line, built with the real checksum helper.
        let algorithm = Algorithm::by_name("wavefront", 16, 0).unwrap();
        let ck = result_checksum(-3, None, algorithm);
        let good = format!(
            "{{\"ev\":\"done\",\"uid\":\"u1\",\"score\":-3,\"algorithm\":\"wavefront\",\"ck\":\"{ck:016x}\"}}"
        );
        let corrupt = good.replace("\"score\":-3", "\"score\":-2");
        let text = format!("{good}\n{corrupt}\n{{\"ev\":\"start\",\"uid\":\"u2\"}}\nnot json\n");
        let dones = parse_journal_dones(&text);
        assert_eq!(dones.len(), 2);
        assert!(dones[0].ck_verified);
        assert!(!dones[1].ck_verified);

        let journals = vec![(0u32, text.clone(), text.clone(), 1u32)];
        assert!(journal_integrity(&journals).passed);
        let wrong = vec![(0u32, text.clone(), text, 0u32)];
        let check = journal_integrity(&wrong);
        assert!(!check.passed);
        assert!(check.detail.contains("expected 0"), "{}", check.detail);
    }

    #[test]
    fn quarantine_accounting_requires_exact_equality() {
        let stats =
            Value::parse(&JsonObject::new().u64("integrity_quarantined", 2).finish()).unwrap();
        assert!(quarantine_accounting(&stats, 2).passed);
        assert!(!quarantine_accounting(&stats, 3).passed);
        assert!(!quarantine_accounting(&stats, 0).passed);
    }
}
