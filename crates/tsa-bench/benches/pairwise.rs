//! Criterion micro-benchmarks for the pairwise substrate: the 2D warm-up
//! comparison (full NW vs linear-space vs Hirschberg vs banded vs the
//! 2D wavefront).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsa_pairwise::{banded, hirschberg, nw, score_only, wavefront_par};
use tsa_scoring::Scoring;
use tsa_seq::family::FamilyConfig;

fn pair(n: usize) -> (tsa_seq::Seq, tsa_seq::Seq) {
    let fam = FamilyConfig::new(n, 0.15, 0.05).generate(7 ^ n as u64);
    let [a, b, _] = fam.members;
    (a, b)
}

fn bench_pairwise(c: &mut Criterion) {
    let scoring = Scoring::dna_default();
    let mut group = c.benchmark_group("pairwise");
    for n in [128usize, 512] {
        let (a, b) = pair(n);
        group.bench_with_input(BenchmarkId::new("nw_full", n), &n, |bch, _| {
            bch.iter(|| nw::align(&a, &b, &scoring).score)
        });
        group.bench_with_input(BenchmarkId::new("score_linear_space", n), &n, |bch, _| {
            bch.iter(|| score_only::score(&a, &b, &scoring))
        });
        group.bench_with_input(BenchmarkId::new("hirschberg", n), &n, |bch, _| {
            bch.iter(|| hirschberg::align(&a, &b, &scoring).score)
        });
        group.bench_with_input(BenchmarkId::new("banded_adaptive", n), &n, |bch, _| {
            bch.iter(|| banded::align_adaptive(&a, &b, &scoring).score)
        });
        group.bench_with_input(BenchmarkId::new("wavefront_2d", n), &n, |bch, _| {
            bch.iter(|| wavefront_par::align_score(&a, &b, &scoring))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pairwise
}
criterion_main!(benches);
