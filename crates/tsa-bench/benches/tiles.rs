//! Criterion micro-benchmark for tile-size sensitivity (the regression
//! mirror of experiment F3) and the barrier-vs-dataflow scheduler ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsa_core::blocked;
use tsa_scoring::Scoring;
use tsa_seq::family::FamilyConfig;

fn bench_tiles(c: &mut Criterion) {
    let scoring = Scoring::dna_default();
    let fam = FamilyConfig::new(64, 0.15, 0.05).generate(99);
    let [a, b, cc] = fam.members;
    let mut group = c.benchmark_group("tiles");
    for tile in [4usize, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::new("barrier", tile), &tile, |bch, &t| {
            bch.iter(|| blocked::align_score(&a, &b, &cc, &scoring, t))
        });
        group.bench_with_input(BenchmarkId::new("dataflow_w2", tile), &tile, |bch, &t| {
            bch.iter(|| blocked::fill_dataflow(&a, &b, &cc, &scoring, t, 2).final_score())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tiles
}
criterion_main!(benches);
