//! Criterion micro-benchmarks for the progressive MSA extension.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsa_msa::{refine, MsaBuilder};
use tsa_seq::family::FamilyConfig;
use tsa_seq::Seq;

fn family(k: usize, n: usize) -> Vec<Seq> {
    let mut out = Vec::new();
    let mut batch = 0u64;
    while out.len() < k {
        let fam = FamilyConfig::new(n, 0.15, 0.05).generate(31 + batch);
        for m in fam.members {
            if out.len() < k {
                out.push(m);
            }
        }
        batch += 1;
    }
    out
}

fn bench_msa(c: &mut Criterion) {
    let scoring = tsa_scoring::Scoring::dna_default();
    let mut group = c.benchmark_group("msa");
    for k in [4usize, 8] {
        let seqs = family(k, 80);
        group.bench_with_input(BenchmarkId::new("progressive", k), &k, |bch, _| {
            bch.iter(|| MsaBuilder::new().align(&seqs).unwrap().sp_score)
        });
        let msa = MsaBuilder::new().align(&seqs).unwrap();
        group.bench_with_input(BenchmarkId::new("refine_2_sweeps", k), &k, |bch, _| {
            bch.iter(|| refine::refine(&msa, &scoring, 2).msa.sp_score)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_msa
}
criterion_main!(benches);
