//! Service-engine throughput: a 64-request batch through the worker pool
//! versus the same work run sequentially, plus the warm-cache repeat.
//!
//! On a multi-core host `batch_64_parallel` scales with the worker count;
//! on a single-core host it demonstrates that engine overhead (queue,
//! cache probes, per-job channels) is within noise of the bare loop. The
//! warm-cache arm is the repeat-run story: identical requests bypass the
//! kernels entirely.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;
use tsa_core::{Algorithm, Aligner};
use tsa_scoring::Scoring;
use tsa_seq::family::FamilyConfig;
use tsa_seq::Seq;
use tsa_service::{run_all, AlignRequest, Engine, ServiceConfig};

const BATCH: usize = 64;

fn problems() -> Vec<[Seq; 3]> {
    // 16 distinct mixed-size problems, cycled to fill the batch.
    (0..16)
        .map(|i| {
            let fam = FamilyConfig::new(24 + 6 * i, 0.15, 0.05).generate(900 + i as u64);
            fam.members
        })
        .collect()
}

fn requests(problems: &[[Seq; 3]]) -> Vec<AlignRequest> {
    (0..BATCH)
        .map(|i| {
            let [a, b, c] = problems[i % problems.len()].clone();
            // Pin the sequential kernel in every arm: this isolates
            // job-level parallelism (the engine's contribution) from
            // plane-level rayon parallelism inside the wavefront kernel.
            AlignRequest::new(format!("r{i}"), a, b, c)
                .algorithm(Algorithm::FullDp)
                .score_only(true)
        })
        .collect()
}

fn bench_service(c: &mut Criterion) {
    let problems = problems();
    let mut group = c.benchmark_group("service");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.sample_size(10);

    group.bench_function("batch_64_sequential", |bch| {
        let aligner = Aligner::auto(Scoring::dna_default()).algorithm(Algorithm::FullDp);
        bch.iter(|| {
            let mut total = 0i64;
            for req in requests(&problems) {
                let [a, b, c] = req.seqs;
                total += aligner.score3(&a, &b, &c).unwrap() as i64;
            }
            total
        })
    });

    group.bench_function("batch_64_parallel", |bch| {
        bch.iter(|| {
            // Cache off: measure raw pool throughput on cold work.
            let engine = Arc::new(Engine::start(ServiceConfig {
                workers: 0,
                queue_capacity: BATCH,
                cache_capacity: 0,
                default_deadline: None,
                ..ServiceConfig::default()
            }));
            let outcomes = run_all(&engine, requests(&problems));
            assert_eq!(outcomes.len(), BATCH);
            engine.shutdown().completed
        })
    });

    group.bench_function("batch_64_warm_cache", |bch| {
        let engine = Arc::new(Engine::start(ServiceConfig {
            workers: 0,
            queue_capacity: BATCH,
            cache_capacity: 256,
            default_deadline: None,
            ..ServiceConfig::default()
        }));
        // Warm every distinct problem once.
        run_all(&engine, requests(&problems));
        assert!(engine.stats().cache_hits > 0 || engine.stats().completed as usize == BATCH);
        bch.iter(|| {
            let outcomes = run_all(&engine, requests(&problems));
            assert_eq!(outcomes.len(), BATCH);
            outcomes.len()
        });
        let stats = engine.shutdown();
        assert!(stats.cache_hits > 0, "repeat runs must hit the cache");
    });

    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
