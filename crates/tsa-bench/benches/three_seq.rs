//! Criterion micro-benchmarks for the three-sequence aligners — the
//! regression-tracking mirror of experiments T1/T2/F2 at a fixed size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tsa_core::anchored::{self, AnchorConfig};
use tsa_core::{
    affine, banded3, blocked, carrillo_lipman, full, hirschberg3, local, score_only, wavefront,
};
use tsa_scoring::GapModel;
use tsa_scoring::Scoring;
use tsa_seq::family::FamilyConfig;

fn triple(n: usize) -> (tsa_seq::Seq, tsa_seq::Seq, tsa_seq::Seq) {
    let fam = FamilyConfig::new(n, 0.15, 0.05).generate(11 ^ n as u64);
    let [a, b, c] = fam.members;
    (a, b, c)
}

fn bench_three_seq(c: &mut Criterion) {
    let scoring = Scoring::dna_default();
    let mut group = c.benchmark_group("three_seq");
    for n in [32usize, 64] {
        let (a, b, cc) = triple(n);
        let cells = ((a.len() + 1) * (b.len() + 1) * (cc.len() + 1)) as u64;
        group.throughput(Throughput::Elements(cells));
        group.bench_with_input(BenchmarkId::new("full_seq", n), &n, |bch, _| {
            bch.iter(|| full::align_score(&a, &b, &cc, &scoring))
        });
        group.bench_with_input(BenchmarkId::new("wavefront", n), &n, |bch, _| {
            bch.iter(|| wavefront::align_score(&a, &b, &cc, &scoring))
        });
        group.bench_with_input(BenchmarkId::new("blocked_t16", n), &n, |bch, _| {
            bch.iter(|| blocked::align_score(&a, &b, &cc, &scoring, 16))
        });
        group.bench_with_input(BenchmarkId::new("score_slabs", n), &n, |bch, _| {
            bch.iter(|| score_only::score_slabs(&a, &b, &cc, &scoring))
        });
        group.bench_with_input(BenchmarkId::new("hirschberg_dc", n), &n, |bch, _| {
            bch.iter(|| hirschberg3::align(&a, &b, &cc, &scoring).score)
        });
        group.bench_with_input(BenchmarkId::new("carrillo_lipman", n), &n, |bch, _| {
            bch.iter(|| carrillo_lipman::align_score_with_stats(&a, &b, &cc, &scoring).0)
        });
        group.bench_with_input(BenchmarkId::new("banded_adaptive", n), &n, |bch, _| {
            bch.iter(|| banded3::align_adaptive(&a, &b, &cc, &scoring).score)
        });
        group.bench_with_input(BenchmarkId::new("local_sw3", n), &n, |bch, _| {
            bch.iter(|| local::align_score(&a, &b, &cc, &scoring))
        });
        group.bench_with_input(BenchmarkId::new("anchored_k10", n), &n, |bch, _| {
            let cfg = AnchorConfig {
                kmer: 10,
                ..AnchorConfig::default()
            };
            bch.iter(|| anchored::align(&a, &b, &cc, &scoring, &cfg).score)
        });
    }
    // Affine is ~8× per cell; bench at the smaller size only.
    let aff = Scoring::dna_default().with_gap(GapModel::affine(-4, -2));
    let (a, b, cc) = triple(32);
    group.bench_function("affine_quasi_natural/32", |bch| {
        bch.iter(|| affine::align_score(&a, &b, &cc, &aff))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_three_seq
}
criterion_main!(benches);
