//! Standard benchmark workloads.
//!
//! Every experiment draws its inputs from here so that numbers are
//! comparable across experiments and reproducible across runs. The
//! canonical workload is a DNA family with 15% substitutions and 5%
//! indels — divergent enough that gaps matter, similar enough to be a
//! realistic homologous triple.

use tsa_seq::family::{Family, FamilyConfig};
use tsa_seq::Seq;

/// Substitution rate of the canonical workload.
pub const CANONICAL_SUB: f64 = 0.15;
/// Indel rate of the canonical workload.
pub const CANONICAL_INDEL: f64 = 0.05;
/// Seed base: workloads at different lengths get different but fixed seeds.
pub const SEED_BASE: u64 = 0x75A_2007;

/// The canonical DNA family at ancestor length `n`.
pub fn family(n: usize) -> Family {
    FamilyConfig::new(n, CANONICAL_SUB, CANONICAL_INDEL).generate(SEED_BASE ^ n as u64)
}

/// The canonical triple at ancestor length `n`, as owned sequences.
pub fn triple(n: usize) -> (Seq, Seq, Seq) {
    let [a, b, c] = family(n).members;
    (a, b, c)
}

/// A rate-sweep family (used by the quality experiment): substitution rate
/// `sub`, indels fixed at the canonical rate.
pub fn family_at_rate(n: usize, sub: f64, seed: u64) -> Family {
    FamilyConfig::new(n, sub, CANONICAL_INDEL).generate(SEED_BASE ^ seed)
}

/// Interior cell count of the canonical triple at length `n` (the MCUPS
/// denominator).
pub fn cell_updates(a: &Seq, b: &Seq, c: &Seq) -> usize {
    (a.len() + 1) * (b.len() + 1) * (c.len() + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_reproducible() {
        let (a1, ..) = triple(64);
        let (a2, ..) = triple(64);
        assert_eq!(a1.residues(), a2.residues());
    }

    #[test]
    fn different_lengths_differ() {
        let (a, ..) = triple(32);
        let (b, ..) = triple(64);
        assert_ne!(a.residues(), b.residues());
    }

    #[test]
    fn lengths_are_near_nominal() {
        let (a, b, c) = triple(100);
        for s in [&a, &b, &c] {
            assert!(s.len().abs_diff(100) < 40, "len {}", s.len());
        }
    }

    #[test]
    fn rate_sweep_rates_shift_identity() {
        let lo = family_at_rate(200, 0.05, 1);
        let hi = family_at_rate(200, 0.40, 1);
        assert!(lo.mean_pairwise_identity() > hi.mean_pairwise_identity());
    }

    #[test]
    fn cell_updates_counts_lattice() {
        let (a, b, c) = triple(20);
        assert_eq!(
            cell_updates(&a, &b, &c),
            (a.len() + 1) * (b.len() + 1) * (c.len() + 1)
        );
    }
}
