//! Machine-readable kernel benchmark baselines.
//!
//! The `bench` binary runs a pinned workload matrix (alphabet × size ×
//! algorithm × SIMD kernel) and serialises the measurements to
//! `BENCH_kernel.json` at the repo root. CI re-runs the same matrix and
//! diffs the fresh file against the committed baseline with
//! [`compare`]: a drop of more than the tolerance in median cells/s on
//! any workload the two files share is a perf regression and fails the
//! gate. The JSON layer reuses the dependency-free reader/writer from
//! `tsa-service`.

use std::time::{Duration, Instant};
use tsa_service::json::{escape, Value};

/// Format version stamped into every baseline file.
///
/// v2 added the i16 kernel variants and a `threads` column. Records
/// measured at `threads = 1` keep their v1 ids (`dna-64-full-scalar`);
/// multi-thread records append a `-t{N}` suffix. [`Baseline::decode`]
/// still reads [`SCHEMA_V1`] files (every record defaulting to
/// `threads = 1`), so diffing a fresh v2 run against a committed v1
/// baseline gates all the ids the two matrices share — the regression
/// gate stays non-vacuous across the migration.
pub const SCHEMA: &str = "tsa-bench/kernel-baseline/v2";

/// The previous format version, still accepted by [`Baseline::decode`].
pub const SCHEMA_V1: &str = "tsa-bench/kernel-baseline/v1";

/// Default regression tolerance: fail on >20% median cells/s drop.
pub const DEFAULT_TOLERANCE: f64 = 0.20;

/// Where the measurement ran — recorded so a baseline from a different
/// machine is flagged in the comparison report instead of silently
/// producing noise verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct Fingerprint {
    /// Target architecture (`x86_64`, `aarch64`, ...).
    pub arch: String,
    /// Logical CPU count.
    pub cores: u64,
    /// Whether the AVX2 kernel resolves natively on this host.
    pub avx2: bool,
    /// CPU model string from `/proc/cpuinfo` (empty if unavailable).
    pub cpu: String,
}

impl Fingerprint {
    /// Probe the current host.
    pub fn host() -> Fingerprint {
        let cpu = std::fs::read_to_string("/proc/cpuinfo")
            .ok()
            .and_then(|text| {
                text.lines()
                    .find(|l| l.starts_with("model name"))
                    .and_then(|l| l.split(':').nth(1))
                    .map(|m| m.trim().to_string())
            })
            .unwrap_or_default();
        Fingerprint {
            arch: std::env::consts::ARCH.to_string(),
            cores: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
            avx2: tsa_core::SimdKernel::Avx2.resolve().name() == "avx2",
            cpu,
        }
    }
}

/// One measured workload cell of the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Stable workload key, e.g. `dna-256-wavefront-auto`. Comparison
    /// matches records across files by this id.
    pub id: String,
    /// `dna` or `protein`.
    pub alphabet: String,
    /// Nominal ancestor length of the workload family.
    pub n: u64,
    /// Algorithm name (`full`, `wavefront`).
    pub algorithm: String,
    /// Requested kernel knob (`scalar`, `sse2`, `avx2`, `sse2-i16`,
    /// `avx2-i16`, `auto`).
    pub kernel: String,
    /// What the knob resolved to on the measuring host.
    pub resolved: String,
    /// Rayon worker threads the measurement ran under (1 = sequential
    /// column; v1 records decode to 1).
    pub threads: u64,
    /// Lattice cells per run (the cells/s numerator).
    pub cells: u64,
    /// Number of timed repetitions behind the statistics.
    pub samples: u64,
    /// Median wall time, milliseconds.
    pub median_ms: f64,
    /// 10th-percentile (fastest-decile) wall time, milliseconds.
    pub p10_ms: f64,
    /// Cells per second at the median wall time — the gated figure.
    pub cells_per_sec: f64,
}

impl Record {
    /// Build a record from raw wall-time samples (sorted internally).
    #[allow(clippy::too_many_arguments)] // one label per JSON field
    pub fn from_samples(
        id: String,
        alphabet: &str,
        n: usize,
        algorithm: &str,
        kernel: &str,
        resolved: &str,
        threads: usize,
        cells: usize,
        samples: &[Duration],
    ) -> Record {
        assert!(!samples.is_empty(), "need at least one sample");
        let mut secs: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
        secs.sort_by(f64::total_cmp);
        let median = percentile(&secs, 0.5);
        let p10 = percentile(&secs, 0.1);
        Record {
            id,
            alphabet: alphabet.to_string(),
            n: n as u64,
            algorithm: algorithm.to_string(),
            kernel: kernel.to_string(),
            resolved: resolved.to_string(),
            threads: threads as u64,
            cells: cells as u64,
            samples: samples.len() as u64,
            median_ms: median * 1e3,
            p10_ms: p10 * 1e3,
            cells_per_sec: if median > 0.0 {
                cells as f64 / median
            } else {
                0.0
            },
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// A complete baseline file: fingerprint plus the measured matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Whether this was a `--quick` (CI-sized) run.
    pub quick: bool,
    /// Host the numbers came from.
    pub fingerprint: Fingerprint,
    /// One record per workload cell.
    pub results: Vec<Record>,
}

impl Baseline {
    /// Serialise to the `BENCH_kernel.json` wire format (one pretty-ish
    /// document, trailing newline included).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", escape(SCHEMA)));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str(&format!(
            "  \"fingerprint\": {{\"arch\": \"{}\", \"cores\": {}, \"avx2\": {}, \"cpu\": \"{}\"}},\n",
            escape(&self.fingerprint.arch),
            self.fingerprint.cores,
            self.fingerprint.avx2,
            escape(&self.fingerprint.cpu)
        ));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"alphabet\": \"{}\", \"n\": {}, \
                 \"algorithm\": \"{}\", \"kernel\": \"{}\", \"resolved\": \"{}\", \
                 \"threads\": {}, \"cells\": {}, \"samples\": {}, \"median_ms\": {}, \
                 \"p10_ms\": {}, \"cells_per_sec\": {}}}{}\n",
                escape(&r.id),
                escape(&r.alphabet),
                r.n,
                escape(&r.algorithm),
                escape(&r.kernel),
                escape(&r.resolved),
                r.threads,
                r.cells,
                r.samples,
                json_f64(r.median_ms),
                json_f64(r.p10_ms),
                json_f64(r.cells_per_sec),
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a baseline document, validating the schema stamp.
    pub fn decode(text: &str) -> Result<Baseline, String> {
        let doc = Value::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("missing `schema`")?;
        if schema != SCHEMA && schema != SCHEMA_V1 {
            return Err(format!(
                "schema `{schema}`, want `{SCHEMA}` (or `{SCHEMA_V1}`)"
            ));
        }
        let fp = doc.get("fingerprint").ok_or("missing `fingerprint`")?;
        let fingerprint = Fingerprint {
            arch: str_field(fp, "arch")?,
            cores: num_field(fp, "cores")? as u64,
            avx2: fp
                .get("avx2")
                .and_then(Value::as_bool)
                .ok_or("missing `avx2`")?,
            cpu: str_field(fp, "cpu")?,
        };
        let results = match doc.get("results") {
            Some(Value::Arr(items)) => items
                .iter()
                .map(|item| {
                    Ok(Record {
                        id: str_field(item, "id")?,
                        alphabet: str_field(item, "alphabet")?,
                        n: num_field(item, "n")? as u64,
                        algorithm: str_field(item, "algorithm")?,
                        kernel: str_field(item, "kernel")?,
                        resolved: str_field(item, "resolved")?,
                        // v1 predates the threads column; those runs were
                        // all single-threaded.
                        threads: match item.get("threads") {
                            Some(Value::Num(n)) => *n as u64,
                            _ => 1,
                        },
                        cells: num_field(item, "cells")? as u64,
                        samples: num_field(item, "samples")? as u64,
                        median_ms: num_field(item, "median_ms")?,
                        p10_ms: num_field(item, "p10_ms")?,
                        cells_per_sec: num_field(item, "cells_per_sec")?,
                    })
                })
                .collect::<Result<Vec<Record>, String>>()?,
            _ => return Err("missing `results` array".into()),
        };
        Ok(Baseline {
            quick: doc.get("quick").and_then(Value::as_bool).unwrap_or(false),
            fingerprint,
            results,
        })
    }
}

/// Emit an f64 as a JSON number (JSON has no inf/nan; clamp those to 0).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string `{key}`"))
}

fn num_field(v: &Value, key: &str) -> Result<f64, String> {
    match v.get(key) {
        Some(Value::Num(n)) => Ok(*n),
        _ => Err(format!("missing number `{key}`")),
    }
}

/// Verdict for one workload id present in both files.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Workload id.
    pub id: String,
    /// Baseline median cells/s.
    pub base: f64,
    /// Current median cells/s.
    pub current: f64,
    /// `current / base` (0 when the baseline is degenerate).
    pub ratio: f64,
    /// Whether this delta breaches the tolerance.
    pub regressed: bool,
}

/// Outcome of diffing a current run against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Per-shared-workload verdicts, baseline file order.
    pub deltas: Vec<Delta>,
    /// Ids only in the baseline (workload removed — reported, not fatal).
    pub only_base: Vec<String>,
    /// Ids only in the current run (new workload — reported, not fatal).
    pub only_current: Vec<String>,
    /// True when the two files were measured on different hosts.
    pub fingerprint_mismatch: bool,
}

impl Comparison {
    /// True when any shared workload regressed beyond tolerance.
    pub fn regressed(&self) -> bool {
        self.deltas.iter().any(|d| d.regressed)
    }
}

/// Diff `current` against `base`: a shared workload regresses when its
/// median cells/s falls below `(1 - tolerance) ×` the baseline figure.
pub fn compare(base: &Baseline, current: &Baseline, tolerance: f64) -> Comparison {
    let floor = 1.0 - tolerance;
    let mut deltas = Vec::new();
    let mut only_base = Vec::new();
    for b in &base.results {
        match current.results.iter().find(|c| c.id == b.id) {
            Some(c) => {
                let ratio = if b.cells_per_sec > 0.0 {
                    c.cells_per_sec / b.cells_per_sec
                } else {
                    0.0
                };
                deltas.push(Delta {
                    id: b.id.clone(),
                    base: b.cells_per_sec,
                    current: c.cells_per_sec,
                    ratio,
                    regressed: b.cells_per_sec > 0.0 && ratio < floor,
                });
            }
            None => only_base.push(b.id.clone()),
        }
    }
    let only_current = current
        .results
        .iter()
        .filter(|c| !base.results.iter().any(|b| b.id == c.id))
        .map(|c| c.id.clone())
        .collect();
    Comparison {
        deltas,
        only_base,
        only_current,
        fingerprint_mismatch: base.fingerprint != current.fingerprint,
    }
}

/// Time `f` `reps` times and return every wall-time sample.
pub fn sample<T>(reps: usize, mut f: impl FnMut() -> T) -> Vec<Duration> {
    assert!(reps >= 1, "need at least one repetition");
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            let _ = f();
            start.elapsed()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: &str, cps: f64) -> Record {
        Record {
            id: id.into(),
            alphabet: "dna".into(),
            n: 64,
            algorithm: "wavefront".into(),
            kernel: "auto".into(),
            resolved: "avx2".into(),
            threads: 1,
            cells: 1000,
            samples: 5,
            median_ms: 1.5,
            p10_ms: 1.4,
            cells_per_sec: cps,
        }
    }

    fn base_with(results: Vec<Record>) -> Baseline {
        Baseline {
            quick: true,
            fingerprint: Fingerprint::host(),
            results,
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let b = base_with(vec![rec("dna-64-wavefront-auto", 1.25e8)]);
        let text = b.encode();
        let back = Baseline::decode(&text).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn decode_rejects_wrong_schema() {
        let err = Baseline::decode("{\"schema\": \"bogus/v9\"}").unwrap_err();
        assert!(err.contains("bogus/v9"), "{err}");
    }

    #[test]
    fn decode_accepts_v1_with_threads_defaulting_to_one() {
        // A v1 document: old schema stamp, records without `threads`.
        let text = format!(
            "{{\"schema\": \"{SCHEMA_V1}\", \"quick\": false, \
             \"fingerprint\": {{\"arch\": \"x86_64\", \"cores\": 1, \"avx2\": true, \"cpu\": \"\"}}, \
             \"results\": [{{\"id\": \"dna-64-full-scalar\", \"alphabet\": \"dna\", \"n\": 64, \
             \"algorithm\": \"full\", \"kernel\": \"scalar\", \"resolved\": \"scalar\", \
             \"cells\": 1000, \"samples\": 5, \"median_ms\": 1.0, \"p10_ms\": 0.9, \
             \"cells_per_sec\": 1000000.0}}]}}"
        );
        let v1 = Baseline::decode(&text).unwrap();
        assert_eq!(v1.results[0].threads, 1);

        // Migration non-vacuity: the single-thread ids of a v2 run are
        // unchanged, so a v1 baseline still gates them.
        let mut new_style = rec("dna-64-full-scalar", 5e5);
        new_style.cells_per_sec = 5e5; // 50% drop vs the v1 figure
        let mut multi = rec("dna-64-wavefront-auto-t8", 1e9);
        multi.threads = 8;
        let current = base_with(vec![new_style, multi]);
        let cmp = compare(&v1, &current, DEFAULT_TOLERANCE);
        assert_eq!(cmp.deltas.len(), 1, "shared v1 id is still gated");
        assert!(cmp.deltas[0].regressed);
        assert_eq!(
            cmp.only_current,
            vec!["dna-64-wavefront-auto-t8".to_string()]
        );
    }

    #[test]
    fn from_samples_computes_median_and_p10() {
        let samples: Vec<Duration> = [30, 10, 20, 50, 40]
            .iter()
            .map(|ms| Duration::from_millis(*ms))
            .collect();
        let r = Record::from_samples(
            "id".into(),
            "dna",
            64,
            "full",
            "scalar",
            "scalar",
            1,
            3_000_000,
            &samples,
        );
        assert!((r.median_ms - 30.0).abs() < 1e-9);
        assert!((r.p10_ms - 10.0).abs() < 1e-9);
        assert!((r.cells_per_sec - 1e8).abs() < 1.0);
        assert_eq!(r.samples, 5);
    }

    #[test]
    fn compare_flags_regressions_beyond_tolerance() {
        let base = base_with(vec![rec("a", 100.0), rec("b", 100.0), rec("gone", 50.0)]);
        let current = base_with(vec![rec("a", 85.0), rec("b", 75.0), rec("new", 10.0)]);
        let cmp = compare(&base, &current, DEFAULT_TOLERANCE);
        assert_eq!(cmp.deltas.len(), 2);
        assert!(!cmp.deltas[0].regressed, "15% drop is within 20%");
        assert!(cmp.deltas[1].regressed, "25% drop breaches 20%");
        assert!(cmp.regressed());
        assert_eq!(cmp.only_base, vec!["gone".to_string()]);
        assert_eq!(cmp.only_current, vec!["new".to_string()]);
        assert!(!cmp.fingerprint_mismatch);
    }

    #[test]
    fn compare_improvements_never_fail() {
        let base = base_with(vec![rec("a", 100.0)]);
        let current = base_with(vec![rec("a", 500.0)]);
        assert!(!compare(&base, &current, DEFAULT_TOLERANCE).regressed());
    }

    #[test]
    fn sample_returns_every_rep() {
        assert_eq!(sample(4, || ()).len(), 4);
    }
}
