//! Wall-clock measurement helpers.

use std::time::{Duration, Instant};

/// Run `f` once, returning its result and the elapsed wall time.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Run `f` `reps` times (≥ 1), returning the last result and the **best**
/// (minimum) wall time — the standard noise-rejection estimator for
/// compute-bound kernels.
pub fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(reps >= 1, "need at least one repetition");
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..reps {
        let (v, t) = time_once(&mut f);
        best = best.min(t);
        out = Some(v);
    }
    (out.expect("reps >= 1"), best)
}

/// Million cell updates per second.
pub fn mcups(cells: usize, t: Duration) -> f64 {
    if t.is_zero() {
        return f64::INFINITY;
    }
    cells as f64 / t.as_secs_f64() / 1e6
}

/// Format a duration as fixed-point milliseconds.
pub fn fmt_ms(t: Duration) -> String {
    format!("{:.2}", t.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_returns_result() {
        let (v, t) = time_once(|| 2 + 2);
        assert_eq!(v, 4);
        assert!(t < Duration::from_secs(1));
    }

    #[test]
    fn best_of_takes_minimum() {
        let mut calls = 0;
        let (v, t) = best_of(5, || {
            calls += 1;
            if calls == 3 {
                std::thread::sleep(Duration::from_millis(5));
            }
            calls
        });
        assert_eq!(v, 5);
        assert_eq!(calls, 5);
        assert!(t < Duration::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "repetition")]
    fn zero_reps_panics() {
        let _ = best_of(0, || ());
    }

    #[test]
    fn mcups_math() {
        let m = mcups(2_000_000, Duration::from_secs(1));
        assert!((m - 2.0).abs() < 1e-9);
        assert!(mcups(1, Duration::ZERO).is_infinite());
    }

    #[test]
    fn fmt_ms_renders() {
        assert_eq!(fmt_ms(Duration::from_millis(1500)), "1500.00");
        assert_eq!(fmt_ms(Duration::from_micros(1234)), "1.23");
    }
}
