//! Fixed-width table / CSV emission for experiment reports, plus a
//! capture hook so the experiment driver can also persist every printed
//! table as machine-readable JSON next to the text report.

use std::sync::Mutex;
use tsa_service::json::escape;

/// When capture is armed (see [`capture_begin`]), every [`Table::print`]
/// also appends its JSON rendering here.
static CAPTURE: Mutex<Option<Vec<String>>> = Mutex::new(None);

/// Start capturing JSON renderings of every printed table.
pub fn capture_begin() {
    *CAPTURE.lock().expect("capture lock") = Some(Vec::new());
}

/// Stop capturing and return the JSON documents collected since
/// [`capture_begin`] (empty if capture was never armed).
pub fn capture_end() -> Vec<String> {
    CAPTURE
        .lock()
        .expect("capture lock")
        .take()
        .unwrap_or_default()
}

/// A simple column-aligned table writer. Collects all rows, then renders
/// with per-column widths (or as CSV).
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    csv: bool,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(headers: &[&str], csv: bool) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            csv,
        }
    }

    /// Append one row; must match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Render to a string (trailing newline included).
    pub fn render(&self) -> String {
        if self.csv {
            let mut out = String::new();
            out.push_str(&self.headers.join(","));
            out.push('\n');
            for r in &self.rows {
                out.push_str(&r.join(","));
                out.push('\n');
            }
            return out;
        }
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (w, cell) in widths.iter_mut().zip(r) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }

    /// Render as a JSON object: `{"headers": [...], "rows": [[...]]}`.
    /// Cells stay strings — they carry already-formatted measurements.
    pub fn render_json(&self) -> String {
        let quote_row = |cells: &[String]| -> String {
            let quoted: Vec<String> = cells.iter().map(|c| format!("\"{}\"", escape(c))).collect();
            format!("[{}]", quoted.join(", "))
        };
        let rows: Vec<String> = self.rows.iter().map(|r| quote_row(r)).collect();
        format!(
            "{{\"headers\": {}, \"rows\": [{}]}}",
            quote_row(&self.headers),
            rows.join(", ")
        )
    }

    /// Render and print to stdout; also feeds the JSON capture buffer
    /// when the driver armed it.
    pub fn print(&self) {
        print!("{}", self.render());
        let mut capture = CAPTURE.lock().expect("capture lock");
        if let Some(buf) = capture.as_mut() {
            buf.push(self.render_json());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_rendering() {
        let mut t = Table::new(&["n", "time"], false);
        t.row(vec!["8".into(), "1.25".into()]);
        t.row(vec!["128".into(), "900.00".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // Right-aligned: every line same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[3].contains("128"));
    }

    #[test]
    fn csv_rendering() {
        let mut t = Table::new(&["a", "b"], true);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.render(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a", "b"], false);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn json_rendering_escapes_cells() {
        let mut t = Table::new(&["n", "note"], false);
        t.row(vec!["8".into(), "a \"quoted\" cell".into()]);
        assert_eq!(
            t.render_json(),
            "{\"headers\": [\"n\", \"note\"], \
             \"rows\": [[\"8\", \"a \\\"quoted\\\" cell\"]]}"
        );
    }

    #[test]
    fn capture_collects_printed_tables() {
        capture_begin();
        let mut t = Table::new(&["a"], false);
        t.row(vec!["1".into()]);
        t.print();
        let captured = capture_end();
        assert_eq!(captured, vec![t.render_json()]);
        // Disarmed now: nothing accumulates, end is empty.
        t.print();
        assert!(capture_end().is_empty());
    }
}
