//! Per-thread-count rayon pools.
//!
//! Speedup experiments must not share the global pool (its size is fixed
//! at first use); each measurement builds a dedicated pool and `install`s
//! the workload into it.

use rayon::ThreadPool;

/// Build a rayon pool with exactly `threads` workers.
pub fn pool(threads: usize) -> ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("building a rayon pool cannot fail with valid thread counts")
}

/// Run `f` inside a dedicated pool of `threads` workers.
pub fn with_pool<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    pool(threads).install(f)
}

/// The host's available parallelism (what measured speedups are limited
/// by — reported in experiment headers).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn pool_has_requested_size() {
        let p = pool(3);
        assert_eq!(p.current_num_threads(), 3);
    }

    #[test]
    fn with_pool_runs_inside() {
        let n = with_pool(2, rayon::current_num_threads);
        assert_eq!(n, 2);
    }

    #[test]
    fn parallel_work_completes_in_small_pool() {
        let sum: u64 = with_pool(2, || (0..1000u64).into_par_iter().sum());
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn host_cores_is_positive() {
        assert!(host_cores() >= 1);
    }
}
