//! Shared infrastructure for the experiment harness.
//!
//! The `experiments` binary (one module per table/figure, see
//! `src/bin/experiments/`) regenerates every entry of the reconstructed
//! evaluation; this library holds what those modules share:
//!
//! * [`workload`] — the standard sequence-family workloads, keyed by
//!   length, with fixed seeds so every run is reproducible;
//! * [`timing`] — wall-clock measurement helpers (best-of-N, MCUPS);
//! * [`table`] — fixed-width table / CSV emission;
//! * [`pool`] — per-thread-count rayon pools.
//!
//! ## A note on measured parallel speedup
//!
//! The reproduction host may have a single CPU core (the container this
//! repository was built in does). Measured wall-clock "speedups" there are
//! flat at best — the threads time-share one core. The harness therefore
//! reports, side by side: the measured wall time, and the **calibrated
//! model prediction** (`tsa-perfmodel`, cell cost calibrated from the
//! measured sequential run) of what the same schedule does with `P` real
//! workers. The model's shape — not the single-core wall clock — is the
//! reproduction of the paper's cluster speedup curves; see EXPERIMENTS.md.

pub mod baseline;
pub mod pool;
pub mod table;
pub mod timing;
pub mod workload;

/// Configuration shared by every experiment.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Shrink problem sizes for smoke runs (CI, `--quick`).
    pub quick: bool,
    /// Emit comma-separated values instead of aligned columns.
    pub csv: bool,
}

impl RunConfig {
    /// The length sweep used by runtime experiments.
    pub fn length_sweep(&self) -> Vec<usize> {
        if self.quick {
            vec![16, 32, 48, 64]
        } else {
            vec![32, 64, 96, 128, 192, 256]
        }
    }

    /// The thread-count sweep used by speedup experiments.
    pub fn thread_sweep(&self) -> Vec<usize> {
        if self.quick {
            vec![1, 2, 4]
        } else {
            vec![1, 2, 4, 8]
        }
    }

    /// The single "reference" length for fixed-size experiments.
    pub fn reference_length(&self) -> usize {
        if self.quick {
            48
        } else {
            192
        }
    }

    /// Timing repetitions (best-of).
    pub fn reps(&self) -> usize {
        if self.quick {
            2
        } else {
            3
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sizes_are_smaller() {
        let quick = RunConfig {
            quick: true,
            csv: false,
        };
        let full = RunConfig {
            quick: false,
            csv: false,
        };
        assert!(quick.length_sweep().iter().max() < full.length_sweep().iter().max());
        assert!(quick.reference_length() < full.reference_length());
        assert!(!quick.length_sweep().is_empty());
        assert!(quick.thread_sweep().contains(&1));
        assert!(quick.reps() >= 1);
    }
}
