//! Kernel benchmark baselines and the CI perf-regression gate.
//!
//! ```text
//! cargo run -p tsa-bench --release --bin bench -- run [--quick] [--out BENCH_kernel.json]
//! cargo run -p tsa-bench --release --bin bench -- compare BENCH_kernel.json fresh.json [--tolerance 0.20]
//! ```
//!
//! `run` measures the pinned workload matrix (alphabet × size ×
//! algorithm × SIMD kernel) and writes a machine-readable baseline.
//! `compare` diffs two baseline files and exits nonzero when any shared
//! workload lost more than the tolerance (default 20%) of its median
//! cells/s — that exit code is what CI gates on.

use tsa_bench::baseline::{compare, sample, Baseline, Fingerprint, Record, DEFAULT_TOLERANCE};
use tsa_bench::workload;
use tsa_core::{Algorithm, Aligner, SimdKernel};
use tsa_scoring::Scoring;
use tsa_seq::family::FamilyConfig;
use tsa_seq::Seq;

const USAGE: &str = "\
usage: bench run [--quick] [--out <path>]
       bench compare <baseline.json> <current.json> [--tolerance <frac>]

run      measure the pinned workload matrix, write a baseline JSON
compare  diff two baselines; exit 1 on >tolerance median cells/s drop
";

const KERNELS: [SimdKernel; 4] = [
    SimdKernel::Scalar,
    SimdKernel::Sse2,
    SimdKernel::Avx2,
    SimdKernel::Auto,
];

const ALGORITHMS: [(Algorithm, &str); 2] = [
    (Algorithm::FullDp, "full"),
    (Algorithm::Wavefront, "wavefront"),
];

/// One workload triple plus everything needed to label its records.
struct Workload {
    alphabet: &'static str,
    n: usize,
    scoring: Scoring,
    seqs: (Seq, Seq, Seq),
}

fn workloads(quick: bool) -> Vec<Workload> {
    // The quick sizes must overlap the full ones: CI measures `--quick`
    // and diffs it against the committed full baseline, so only shared
    // workload ids are gated.
    let sizes: &[usize] = if quick { &[48, 64] } else { &[64, 128, 256] };
    let mut out = Vec::new();
    for &n in sizes {
        out.push(Workload {
            alphabet: "dna",
            n,
            scoring: Scoring::dna_default(),
            seqs: workload::triple(n),
        });
        let [a, b, c] =
            FamilyConfig::protein(n, workload::CANONICAL_SUB, workload::CANONICAL_INDEL)
                .generate(workload::SEED_BASE ^ (n as u64).rotate_left(17))
                .members;
        out.push(Workload {
            alphabet: "protein",
            n,
            scoring: Scoring::by_name("blosum62").expect("preset exists"),
            seqs: (a, b, c),
        });
    }
    out
}

fn run(quick: bool, out_path: &str) -> Result<(), String> {
    let reps = if quick { 3 } else { 5 };
    let fingerprint = Fingerprint::host();
    println!(
        "# bench run: {} matrix, {reps} reps, host {} ({} cores, avx2={})",
        if quick { "quick" } else { "full" },
        fingerprint.arch,
        fingerprint.cores,
        fingerprint.avx2
    );
    let mut results = Vec::new();
    for w in workloads(quick) {
        let (a, b, c) = &w.seqs;
        let cells = workload::cell_updates(a, b, c);
        for (algorithm, alg_name) in ALGORITHMS {
            for kernel in KERNELS {
                let aligner = Aligner::new()
                    .scoring(w.scoring.clone())
                    .algorithm(algorithm)
                    .kernel(kernel);
                // Warm-up run (pulls pages in, fills the profile cache),
                // then the timed samples.
                let score = aligner.score3(a, b, c).map_err(|e| e.to_string())?;
                let samples = sample(reps, || aligner.score3(a, b, c).expect("warm-up succeeded"));
                let record = Record::from_samples(
                    format!("{}-{}-{}-{}", w.alphabet, w.n, alg_name, kernel.name()),
                    w.alphabet,
                    w.n,
                    alg_name,
                    kernel.name(),
                    kernel.resolve().name(),
                    cells,
                    &samples,
                );
                println!(
                    "{:<28} score {score:>8}  median {:>9.3} ms  {:>8.1} Mcells/s ({})",
                    record.id,
                    record.median_ms,
                    record.cells_per_sec / 1e6,
                    record.resolved
                );
                results.push(record);
            }
        }
    }
    let baseline = Baseline {
        quick,
        fingerprint,
        results,
    };
    std::fs::write(out_path, baseline.encode()).map_err(|e| format!("write {out_path}: {e}"))?;
    println!("# wrote {out_path}");
    Ok(())
}

fn run_compare(base_path: &str, current_path: &str, tolerance: f64) -> Result<bool, String> {
    // A missing baseline is expected on branches that never committed
    // one; surface it as a GitHub annotation (picked up from stdout by
    // the runner) and pass the gate instead of erroring.
    if !std::path::Path::new(base_path).exists() {
        println!("::warning::missing bench baseline {base_path}; skipping perf gate");
        return Ok(false);
    }
    let load = |path: &str| -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        Baseline::decode(&text).map_err(|e| format!("{path}: {e}"))
    };
    let base = load(base_path)?;
    let current = load(current_path)?;
    let cmp = compare(&base, &current, tolerance);
    if cmp.fingerprint_mismatch {
        println!(
            "# note: fingerprints differ (baseline: {} {} cores; current: {} {} cores) — \
             cross-machine deltas are noisy",
            base.fingerprint.arch,
            base.fingerprint.cores,
            current.fingerprint.arch,
            current.fingerprint.cores
        );
    }
    println!(
        "{:<28} {:>12} {:>12} {:>7}  verdict",
        "workload", "base Mc/s", "curr Mc/s", "ratio"
    );
    for d in &cmp.deltas {
        println!(
            "{:<28} {:>12.1} {:>12.1} {:>7.3}  {}",
            d.id,
            d.base / 1e6,
            d.current / 1e6,
            d.ratio,
            if d.regressed { "REGRESSED" } else { "ok" }
        );
    }
    for id in &cmp.only_base {
        println!("{id:<28} removed from current run");
    }
    for id in &cmp.only_current {
        println!("{id:<28} new in current run (no baseline)");
    }
    if cmp.regressed() {
        println!(
            "# FAIL: median cells/s dropped more than {:.0}% on at least one workload",
            tolerance * 1e2
        );
    } else {
        println!("# OK: no workload regressed beyond {:.0}%", tolerance * 1e2);
    }
    Ok(cmp.regressed())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str);
    let fail = |msg: &str| -> ! {
        eprintln!("bench: {msg}\n{USAGE}");
        std::process::exit(2);
    };
    match mode {
        Some("run") => {
            let quick = args.iter().any(|a| a == "--quick");
            let out = match args.iter().position(|a| a == "--out") {
                Some(i) => args
                    .get(i + 1)
                    .unwrap_or_else(|| fail("--out needs a path"))
                    .clone(),
                None => "BENCH_kernel.json".to_string(),
            };
            if let Err(e) = run(quick, &out) {
                eprintln!("bench: {e}");
                std::process::exit(1);
            }
        }
        Some("compare") => {
            let tolerance_value = args.iter().position(|a| a == "--tolerance").map(|i| i + 1);
            let paths: Vec<&String> = args[1..]
                .iter()
                .enumerate()
                .filter(|(i, a)| !a.starts_with("--") && Some(i + 1) != tolerance_value)
                .map(|(_, a)| a)
                .collect();
            if paths.len() != 2 {
                fail("compare needs exactly two baseline paths");
            }
            let tolerance = match args.iter().position(|a| a == "--tolerance") {
                Some(i) => args
                    .get(i + 1)
                    .and_then(|t| t.parse::<f64>().ok())
                    .filter(|t| (0.0..1.0).contains(t))
                    .unwrap_or_else(|| fail("--tolerance needs a fraction in [0, 1)")),
                None => DEFAULT_TOLERANCE,
            };
            match run_compare(paths[0], paths[1], tolerance) {
                Ok(regressed) => std::process::exit(i32::from(regressed)),
                Err(e) => {
                    eprintln!("bench: {e}");
                    std::process::exit(2);
                }
            }
        }
        _ => fail("need a mode: run | compare"),
    }
}
