//! Kernel benchmark baselines and the CI perf-regression gates.
//!
//! ```text
//! cargo run -p tsa-bench --release --bin bench -- run [--quick] [--out BENCH_kernel.json]
//! cargo run -p tsa-bench --release --bin bench -- compare BENCH_kernel.json fresh.json [--tolerance 0.20]
//! cargo run -p tsa-bench --release --bin bench -- gate-compose [--quick] [--baseline BENCH_kernel.json] [--out BENCH_compose.json]
//! ```
//!
//! `run` measures the pinned workload matrix (alphabet × size ×
//! algorithm × SIMD kernel × threads) and writes a machine-readable
//! baseline. `compare` diffs two baseline files and exits nonzero when
//! any shared workload lost more than the tolerance (default 20%) of
//! its median cells/s — that exit code is what CI gates on.
//! `gate-compose` is the composition gate: it measures the
//! tile-wavefront (`auto` kernel) at 2 threads against the
//! single-thread scalar slab reference at `n ≥ 128` and exits nonzero
//! when tiling + SIMD + threads fail to beat the classic sequential
//! DP — the win the tile executor exists for (the old cell-plane
//! wavefront *lost* this comparison).

use tsa_bench::baseline::{compare, sample, Baseline, Fingerprint, Record, DEFAULT_TOLERANCE};
use tsa_bench::{pool, workload};
use tsa_core::{Algorithm, Aligner, SimdKernel};
use tsa_scoring::Scoring;
use tsa_seq::family::FamilyConfig;
use tsa_seq::Seq;

const USAGE: &str = "\
usage: bench run [--quick] [--out <path>]
       bench compare <baseline.json> <current.json> [--tolerance <frac>]
       bench gate-compose [--quick] [--baseline <path>] [--out <path>]

run           measure the pinned workload matrix, write a baseline JSON
compare       diff two baselines; exit 1 on >tolerance median cells/s drop
gate-compose  assert tile-wavefront@2 threads >= scalar slab@1 at n>=128
";

const KERNELS: [SimdKernel; 6] = [
    SimdKernel::Scalar,
    SimdKernel::Sse2,
    SimdKernel::Avx2,
    SimdKernel::Sse2I16,
    SimdKernel::Avx2I16,
    SimdKernel::Auto,
];

/// Tile edge for the tile-wavefront column: long enough for full AVX2
/// i16 rows inside a tile, small enough to expose tile parallelism at
/// the bench sizes.
const TILE: usize = 32;

/// `(algorithm, id label, parallel)` — parallel algorithms are measured
/// at both thread counts, sequential ones only at `threads = 1`.
const ALGORITHMS: [(Algorithm, &str, bool); 3] = [
    (Algorithm::FullDp, "full", false),
    (Algorithm::Wavefront, "wavefront", true),
    (
        Algorithm::TileWavefront { tile: TILE },
        "tile-wavefront",
        true,
    ),
];

/// The multi-thread column: host parallelism, floored at 2 so the
/// column exists (time-shared) even on single-core containers.
fn multi_threads() -> usize {
    pool::host_cores().max(2)
}

/// One workload triple plus everything needed to label its records.
struct Workload {
    alphabet: &'static str,
    n: usize,
    scoring: Scoring,
    seqs: (Seq, Seq, Seq),
}

fn workloads(quick: bool) -> Vec<Workload> {
    // The quick sizes must overlap the full ones: CI measures `--quick`
    // and diffs it against the committed full baseline, so only shared
    // workload ids are gated.
    let sizes: &[usize] = if quick { &[48, 64] } else { &[64, 128, 256] };
    let mut out = Vec::new();
    for &n in sizes {
        out.push(Workload {
            alphabet: "dna",
            n,
            scoring: Scoring::dna_default(),
            seqs: workload::triple(n),
        });
        let [a, b, c] =
            FamilyConfig::protein(n, workload::CANONICAL_SUB, workload::CANONICAL_INDEL)
                .generate(workload::SEED_BASE ^ (n as u64).rotate_left(17))
                .members;
        out.push(Workload {
            alphabet: "protein",
            n,
            scoring: Scoring::by_name("blosum62").expect("preset exists"),
            seqs: (a, b, c),
        });
    }
    out
}

/// Measure one cell of the matrix inside a dedicated `threads`-wide
/// rayon pool and label the record (`-t{N}` id suffix above one thread,
/// so single-thread ids stay stable across the v1 → v2 migration).
#[allow(clippy::too_many_arguments)] // one label per JSON field
fn measure(
    w: &Workload,
    a: &Seq,
    b: &Seq,
    c: &Seq,
    cells: usize,
    algorithm: Algorithm,
    alg_name: &str,
    kernel: SimdKernel,
    threads: usize,
    reps: usize,
) -> Result<Record, String> {
    let aligner = Aligner::new()
        .scoring(w.scoring.clone())
        .algorithm(algorithm)
        .kernel(kernel);
    // Warm-up run (pulls pages in, fills the profile cache), then the
    // timed samples — all inside the pool the record is labelled with.
    let (score, samples) = pool::with_pool(threads, || {
        let score = aligner.score3(a, b, c).map_err(|e| e.to_string())?;
        let samples = sample(reps, || aligner.score3(a, b, c).expect("warm-up succeeded"));
        Ok::<_, String>((score, samples))
    })?;
    let id = if threads == 1 {
        format!("{}-{}-{}-{}", w.alphabet, w.n, alg_name, kernel.name())
    } else {
        format!(
            "{}-{}-{}-{}-t{}",
            w.alphabet,
            w.n,
            alg_name,
            kernel.name(),
            threads
        )
    };
    let record = Record::from_samples(
        id,
        w.alphabet,
        w.n,
        alg_name,
        kernel.name(),
        kernel.resolve().name(),
        threads,
        cells,
        &samples,
    );
    println!(
        "{:<40} score {score:>8}  median {:>9.3} ms  {:>8.1} Mcells/s ({})",
        record.id,
        record.median_ms,
        record.cells_per_sec / 1e6,
        record.resolved
    );
    Ok(record)
}

fn run(quick: bool, out_path: &str) -> Result<(), String> {
    let reps = if quick { 3 } else { 5 };
    let fingerprint = Fingerprint::host();
    println!(
        "# bench run: {} matrix, {reps} reps, host {} ({} cores, avx2={})",
        if quick { "quick" } else { "full" },
        fingerprint.arch,
        fingerprint.cores,
        fingerprint.avx2
    );
    let mut results = Vec::new();
    for w in workloads(quick) {
        let (a, b, c) = &w.seqs;
        let cells = workload::cell_updates(a, b, c);
        for (algorithm, alg_name, parallel) in ALGORITHMS {
            let thread_counts: &[usize] = if parallel {
                &[1, multi_threads()]
            } else {
                &[1]
            };
            for &threads in thread_counts {
                for kernel in KERNELS {
                    let record = measure(
                        &w, a, b, c, cells, algorithm, alg_name, kernel, threads, reps,
                    )?;
                    results.push(record);
                }
            }
        }
    }
    let baseline = Baseline {
        quick,
        fingerprint,
        results,
    };
    std::fs::write(out_path, baseline.encode()).map_err(|e| format!("write {out_path}: {e}"))?;
    println!("# wrote {out_path}");
    Ok(())
}

/// The composition gate: tile-wavefront (`auto`) at 2 threads must match
/// or beat the single-thread scalar slab reference on DNA at `n ≥ 128`.
/// Exits via the returned flag; the measurements are also written as a
/// baseline-format artifact so CI can upload them.
fn gate_compose(quick: bool, baseline_path: &str, out_path: &str) -> Result<bool, String> {
    let sizes: &[usize] = if quick { &[128] } else { &[128, 256] };
    let reps = if quick { 3 } else { 5 };
    let fingerprint = Fingerprint::host();
    println!(
        "# gate-compose: dna n in {sizes:?}, tile {TILE}, host {} ({} cores, avx2={})",
        fingerprint.arch, fingerprint.cores, fingerprint.avx2
    );
    let mut results = Vec::new();
    let mut failed = false;
    for &n in sizes {
        let w = Workload {
            alphabet: "dna",
            n,
            scoring: Scoring::dna_default(),
            seqs: workload::triple(n),
        };
        let (a, b, c) = &w.seqs;
        let cells = workload::cell_updates(a, b, c);
        // Baseline: the single-thread *scalar* slab — the repo's reference
        // semantics and the classic sequential DP the parallel claim is
        // measured against. (The vectorized slab is not the bar here: its
        // rolling O(n²) working set is cache-resident while any
        // full-lattice sweep is DRAM-bound, so comparing against it would
        // measure memory systems, not scheduling.)
        let slab = measure(
            &w,
            a,
            b,
            c,
            cells,
            Algorithm::FullDp,
            "full",
            SimdKernel::Scalar,
            1,
            reps,
        )?;
        let tiled = measure(
            &w,
            a,
            b,
            c,
            cells,
            Algorithm::TileWavefront { tile: TILE },
            "tile-wavefront",
            SimdKernel::Auto,
            2,
            reps,
        )?;
        let ratio = if slab.cells_per_sec > 0.0 {
            tiled.cells_per_sec / slab.cells_per_sec
        } else {
            0.0
        };
        let ok = tiled.cells_per_sec >= slab.cells_per_sec;
        println!(
            "# compose n={n}: tile-wavefront(auto)@2 / slab(scalar)@1 = {ratio:.3} — {}",
            if ok { "ok" } else { "FAIL" }
        );
        failed |= !ok;
        results.push(slab);
        results.push(tiled);
    }
    let doc = Baseline {
        quick,
        fingerprint,
        results,
    };
    std::fs::write(out_path, doc.encode()).map_err(|e| format!("write {out_path}: {e}"))?;
    println!("# wrote {out_path}");
    // Annotate (never fail) when the committed baseline cannot
    // cross-check these measurements yet.
    match std::fs::read_to_string(baseline_path) {
        Ok(text) => match Baseline::decode(&text) {
            Ok(base) => {
                let shared = doc
                    .results
                    .iter()
                    .filter(|r| base.results.iter().any(|b| b.id == r.id))
                    .count();
                if shared == 0 {
                    println!(
                        "::warning::baseline {baseline_path} has no composition ids; \
                         cross-run drift is unmonitored until it is regenerated at v2"
                    );
                }
            }
            Err(e) => println!(
                "::warning::baseline {baseline_path} unreadable ({e}); \
                 compose gate ran self-contained"
            ),
        },
        Err(_) => println!(
            "::warning::missing bench baseline {baseline_path}; compose gate ran self-contained"
        ),
    }
    if failed {
        println!("# FAIL: tile-wavefront at 2 threads lost to the single-thread scalar slab");
    } else {
        println!("# OK: thread x SIMD composition holds at n >= 128");
    }
    Ok(failed)
}

fn run_compare(base_path: &str, current_path: &str, tolerance: f64) -> Result<bool, String> {
    // A missing baseline is expected on branches that never committed
    // one; surface it as a GitHub annotation (picked up from stdout by
    // the runner) and pass the gate instead of erroring.
    if !std::path::Path::new(base_path).exists() {
        println!("::warning::missing bench baseline {base_path}; skipping perf gate");
        return Ok(false);
    }
    let load = |path: &str| -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        Baseline::decode(&text).map_err(|e| format!("{path}: {e}"))
    };
    let base = load(base_path)?;
    let current = load(current_path)?;
    let cmp = compare(&base, &current, tolerance);
    if cmp.fingerprint_mismatch {
        println!(
            "# note: fingerprints differ (baseline: {} {} cores; current: {} {} cores) — \
             cross-machine deltas are noisy",
            base.fingerprint.arch,
            base.fingerprint.cores,
            current.fingerprint.arch,
            current.fingerprint.cores
        );
    }
    println!(
        "{:<28} {:>12} {:>12} {:>7}  verdict",
        "workload", "base Mc/s", "curr Mc/s", "ratio"
    );
    for d in &cmp.deltas {
        println!(
            "{:<28} {:>12.1} {:>12.1} {:>7.3}  {}",
            d.id,
            d.base / 1e6,
            d.current / 1e6,
            d.ratio,
            if d.regressed { "REGRESSED" } else { "ok" }
        );
    }
    for id in &cmp.only_base {
        println!("{id:<28} removed from current run");
    }
    for id in &cmp.only_current {
        println!("{id:<28} new in current run (no baseline)");
    }
    if cmp.regressed() {
        println!(
            "# FAIL: median cells/s dropped more than {:.0}% on at least one workload",
            tolerance * 1e2
        );
    } else {
        println!("# OK: no workload regressed beyond {:.0}%", tolerance * 1e2);
    }
    Ok(cmp.regressed())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str);
    let fail = |msg: &str| -> ! {
        eprintln!("bench: {msg}\n{USAGE}");
        std::process::exit(2);
    };
    match mode {
        Some("run") => {
            let quick = args.iter().any(|a| a == "--quick");
            let out = match args.iter().position(|a| a == "--out") {
                Some(i) => args
                    .get(i + 1)
                    .unwrap_or_else(|| fail("--out needs a path"))
                    .clone(),
                None => "BENCH_kernel.json".to_string(),
            };
            if let Err(e) = run(quick, &out) {
                eprintln!("bench: {e}");
                std::process::exit(1);
            }
        }
        Some("compare") => {
            let tolerance_value = args.iter().position(|a| a == "--tolerance").map(|i| i + 1);
            let paths: Vec<&String> = args[1..]
                .iter()
                .enumerate()
                .filter(|(i, a)| !a.starts_with("--") && Some(i + 1) != tolerance_value)
                .map(|(_, a)| a)
                .collect();
            if paths.len() != 2 {
                fail("compare needs exactly two baseline paths");
            }
            let tolerance = match args.iter().position(|a| a == "--tolerance") {
                Some(i) => args
                    .get(i + 1)
                    .and_then(|t| t.parse::<f64>().ok())
                    .filter(|t| (0.0..1.0).contains(t))
                    .unwrap_or_else(|| fail("--tolerance needs a fraction in [0, 1)")),
                None => DEFAULT_TOLERANCE,
            };
            match run_compare(paths[0], paths[1], tolerance) {
                Ok(regressed) => std::process::exit(i32::from(regressed)),
                Err(e) => {
                    eprintln!("bench: {e}");
                    std::process::exit(2);
                }
            }
        }
        Some("gate-compose") => {
            let quick = args.iter().any(|a| a == "--quick");
            let value_of = |flag: &str, default: &str| -> String {
                match args.iter().position(|a| a == flag) {
                    Some(i) => args
                        .get(i + 1)
                        .unwrap_or_else(|| fail(&format!("{flag} needs a path")))
                        .clone(),
                    None => default.to_string(),
                }
            };
            let baseline = value_of("--baseline", "BENCH_kernel.json");
            let out = value_of("--out", "BENCH_compose.json");
            match gate_compose(quick, &baseline, &out) {
                Ok(failed) => std::process::exit(i32::from(failed)),
                Err(e) => {
                    eprintln!("bench: {e}");
                    std::process::exit(2);
                }
            }
        }
        _ => fail("need a mode: run | compare | gate-compose"),
    }
}
