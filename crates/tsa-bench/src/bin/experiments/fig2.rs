//! F2 — runtime vs length for every aligner variant (log–log series).
//!
//! All variants are `O(n³)`; the figure shows the constant factors: the
//! sequential fill's cache-friendly sweep, the wavefront's scheduling
//! overhead, the blocked variant between them, and divide-and-conquer's
//! ≤ 2× work in quadratic memory.

use tsa_bench::{table::Table, timing, workload, RunConfig};
use tsa_core::{blocked, full, hirschberg3, wavefront};
use tsa_scoring::Scoring;

pub fn run(cfg: &RunConfig) {
    let scoring = Scoring::dna_default();
    let mut t = Table::new(
        &[
            "n",
            "full_ms",
            "wavefront_ms",
            "blocked_ms",
            "hirschberg_ms",
            "par_hirsch_ms",
        ],
        cfg.csv,
    );
    for n in cfg.length_sweep() {
        let (a, b, c) = workload::triple(n);
        let reps = cfg.reps();
        let (s0, t_full) = timing::best_of(reps, || full::align_score(&a, &b, &c, &scoring));
        let (s1, t_wf) = timing::best_of(reps, || wavefront::align_score(&a, &b, &c, &scoring));
        let (s2, t_blk) = timing::best_of(reps, || blocked::align_score(&a, &b, &c, &scoring, 16));
        let (al3, t_h) = timing::best_of(reps, || hirschberg3::align(&a, &b, &c, &scoring));
        let (al4, t_ph) =
            timing::best_of(reps, || hirschberg3::align_parallel(&a, &b, &c, &scoring));
        for (name, s) in [
            ("wavefront", s1),
            ("blocked", s2),
            ("hirschberg", al3.score),
            ("par-hirschberg", al4.score),
        ] {
            assert_eq!(s, s0, "{name} diverged at n={n}");
        }
        t.row(vec![
            n.to_string(),
            timing::fmt_ms(t_full),
            timing::fmt_ms(t_wf),
            timing::fmt_ms(t_blk),
            timing::fmt_ms(t_h),
            timing::fmt_ms(t_ph),
        ]);
    }
    t.print();
}
