//! T10 — anchored (seed–chain–extend) heuristic vs the exact DP.
//!
//! The long-sequence escape hatch: exact DP only between shared k-mer
//! anchors. For similar sequences the anchored runtime grows far slower
//! than the exact `O(n³)`, at a small, measured score deficit. The exact
//! column stops at the largest size the full lattice comfortably fits;
//! the anchored column keeps going.

use tsa_bench::{table::Table, timing, workload, RunConfig};
use tsa_core::anchored::{self, AnchorConfig};
use tsa_core::full;
use tsa_scoring::Scoring;

pub fn run(cfg: &RunConfig) {
    let scoring = Scoring::dna_default();
    let config = AnchorConfig {
        kmer: 10,
        ..AnchorConfig::default()
    };
    let lengths: Vec<usize> = if cfg.quick {
        vec![48, 96]
    } else {
        vec![96, 192, 384, 768]
    };
    // Full DP is run only up to this length (768³ would be 1.8 GiB).
    let exact_limit = if cfg.quick { 96 } else { 256 };
    let mut t = Table::new(
        &[
            "n",
            "exact_ms",
            "anchored_ms",
            "exact_SP",
            "anchored_SP",
            "deficit_pct",
        ],
        cfg.csv,
    );
    for n in lengths {
        // Lower divergence than the canonical workload: anchoring is the
        // long-similar-sequence regime (and indels shred exact 3-way
        // seeds far faster than substitutions do).
        let fam = tsa_seq::family::FamilyConfig::new(n, 0.06, 0.015)
            .generate(workload::SEED_BASE ^ n as u64);
        let (a, b, c) = fam.triple();
        let (anchored_aln, t_anchored) =
            timing::best_of(cfg.reps(), || anchored::align(a, b, c, &scoring, &config));
        anchored_aln
            .validate(a, b, c)
            .expect("anchored alignment invalid");
        if n <= exact_limit {
            let (exact, t_exact) =
                timing::best_of(cfg.reps(), || full::align_score(a, b, c, &scoring));
            assert!(
                anchored_aln.score <= exact,
                "heuristic beat optimum at n={n}"
            );
            let pct = if exact != 0 {
                100.0 * (exact - anchored_aln.score) as f64 / exact.abs() as f64
            } else {
                0.0
            };
            t.row(vec![
                n.to_string(),
                timing::fmt_ms(t_exact),
                timing::fmt_ms(t_anchored),
                exact.to_string(),
                anchored_aln.score.to_string(),
                format!("{pct:.1}"),
            ]);
        } else {
            t.row(vec![
                n.to_string(),
                "-".into(),
                timing::fmt_ms(t_anchored),
                "-".into(),
                anchored_aln.score.to_string(),
                "-".into(),
            ]);
        }
    }
    println!(
        "  (6% substitution / 1.5% indel families; anchors: {}-mers, ≤{} occurrences)",
        config.kmer, config.max_occurrences
    );
    t.print();
}
