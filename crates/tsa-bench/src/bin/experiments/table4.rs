//! T4 — divide-and-conquer overhead and optimality.
//!
//! Hirschberg recomputes forward/backward faces at every level; the theory
//! bounds total cell work at ~2× the plain DP. This table reports the
//! measured time ratio (expected ≈ 1.5–2.5× once traceback and allocation
//! effects are included) and asserts score equality with the full DP.

use tsa_bench::{table::Table, timing, workload, RunConfig};
use tsa_core::{full, hirschberg3};
use tsa_scoring::Scoring;

pub fn run(cfg: &RunConfig) {
    let scoring = Scoring::dna_default();
    let mut t = Table::new(
        &[
            "n",
            "full_ms",
            "dc_ms",
            "dc_over_full",
            "scores_equal",
            "dc_mem_quadratic",
        ],
        cfg.csv,
    );
    for n in cfg.length_sweep() {
        let (a, b, c) = workload::triple(n);
        let (full_aln, t_full) = timing::best_of(cfg.reps(), || full::align(&a, &b, &c, &scoring));
        let (dc_aln, t_dc) =
            timing::best_of(cfg.reps(), || hirschberg3::align(&a, &b, &c, &scoring));
        let equal = full_aln.score == dc_aln.score;
        assert!(equal, "DC lost optimality at n={n}");
        dc_aln
            .validate_scored(&a, &b, &c, &scoring)
            .expect("DC alignment invalid");
        let ratio = t_dc.as_secs_f64() / t_full.as_secs_f64();
        t.row(vec![
            n.to_string(),
            timing::fmt_ms(t_full),
            timing::fmt_ms(t_dc),
            format!("{ratio:.2}"),
            equal.to_string(),
            "yes (O(n^2))".into(),
        ]);
    }
    t.print();
}
