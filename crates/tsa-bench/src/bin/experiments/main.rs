//! The experiment driver: regenerates every table and figure of the
//! reconstructed evaluation (see `DESIGN.md` §5 and `EXPERIMENTS.md`).
//!
//! ```text
//! cargo run -p tsa-bench --release --bin experiments -- all [--quick] [--csv]
//! cargo run -p tsa-bench --release --bin experiments -- table2 fig3
//! ```

mod fig1;
mod fig2;
mod fig3;
mod fig4;
mod fig5;
mod fig6;
mod fig7;
mod table1;
mod table10;
mod table2;
mod table3;
mod table4;
mod table5;
mod table6;
mod table7;
mod table8;
mod table9;

use tsa_bench::{pool, table, RunConfig};
use tsa_service::json::escape;

const IDS: &[(&str, &str)] = &[
    ("table1", "sequential runtime & MCUPS vs length"),
    (
        "table2",
        "parallel speedup vs thread count (measured + model)",
    ),
    ("fig1", "speedup curves: wavefront vs blocked"),
    ("fig2", "runtime vs length, all algorithms"),
    ("fig3", "tile-size sensitivity (barrier vs dataflow)"),
    ("table3", "memory footprint vs length"),
    ("table4", "divide-and-conquer overhead & optimality"),
    ("table5", "exact vs center-star quality"),
    ("fig4", "model-predicted vs measured speedup"),
    ("table6", "affine-gap extension cost"),
    ("table7", "Carrillo-Lipman pruning effectiveness"),
    ("fig5", "simulated cluster scalability (alpha-beta model)"),
    ("table8", "progressive MSA vs exact optimum on triples"),
    (
        "table9",
        "search-space reduction: full vs banded vs Carrillo-Lipman",
    ),
    ("fig6", "wavefront load profile over execution"),
    ("fig7", "measured plane profile vs model prediction"),
    ("table10", "anchored seed-chain-extend vs exact DP"),
];

fn usage() -> String {
    let mut s = String::from(
        "usage: experiments <id>... [--quick] [--csv] [--json-dir <dir>]\n       experiments all [--quick] [--csv] [--json-dir <dir>]\n\nEvery printed table is also written to <dir>/<id>.json\n(default dir: results, when it exists).\n\nexperiments:\n",
    );
    for (id, desc) in IDS {
        s.push_str(&format!("  {id:<8} {desc}\n"));
    }
    s
}

fn run_one(id: &str, cfg: &RunConfig, json_dir: Option<&str>) -> bool {
    let desc = IDS
        .iter()
        .find(|(i, _)| *i == id)
        .map(|(_, d)| *d)
        .unwrap_or("");
    println!("\n=== {id}: {desc} ===");
    table::capture_begin();
    match id {
        "table1" => table1::run(cfg),
        "table2" => table2::run(cfg),
        "fig1" => fig1::run(cfg),
        "fig2" => fig2::run(cfg),
        "fig3" => fig3::run(cfg),
        "table3" => table3::run(cfg),
        "table4" => table4::run(cfg),
        "table5" => table5::run(cfg),
        "fig4" => fig4::run(cfg),
        "table6" => table6::run(cfg),
        "table7" => table7::run(cfg),
        "fig5" => fig5::run(cfg),
        "table8" => table8::run(cfg),
        "table9" => table9::run(cfg),
        "fig6" => fig6::run(cfg),
        "fig7" => fig7::run(cfg),
        "table10" => table10::run(cfg),
        _ => {
            table::capture_end();
            return false;
        }
    };
    let tables = table::capture_end();
    if let Some(dir) = json_dir {
        let path = format!("{dir}/{id}.json");
        let doc = format!(
            "{{\n  \"experiment\": \"{}\",\n  \"description\": \"{}\",\n  \"quick\": {},\n  \"tables\": [\n    {}\n  ]\n}}\n",
            escape(id),
            escape(desc),
            cfg.quick,
            tables.join(",\n    ")
        );
        match std::fs::write(&path, doc) {
            Ok(()) => println!("# wrote {path}"),
            Err(e) => eprintln!("# could not write {path}: {e}"),
        }
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = RunConfig {
        quick: args.iter().any(|a| a == "--quick"),
        csv: args.iter().any(|a| a == "--csv"),
    };
    let json_dir: Option<String> = match args.iter().position(|a| a == "--json-dir") {
        Some(i) => match args.get(i + 1) {
            Some(dir) => Some(dir.clone()),
            None => {
                eprintln!("--json-dir needs a directory\n{}", usage());
                std::process::exit(2);
            }
        },
        None => std::path::Path::new("results")
            .is_dir()
            .then(|| "results".to_string()),
    };
    let flag_values: Vec<usize> = args
        .iter()
        .position(|a| a == "--json-dir")
        .map(|i| vec![i + 1])
        .unwrap_or_default();
    let ids: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && !flag_values.contains(i))
        .map(|(_, a)| a.as_str())
        .collect();
    if ids.is_empty() {
        eprint!("{}", usage());
        std::process::exit(2);
    }
    println!(
        "# host cores: {} (measured parallel times are wall-clock on this host; \
         model columns predict P real workers)",
        pool::host_cores()
    );
    let list: Vec<&str> = if ids == ["all"] {
        IDS.iter().map(|(i, _)| *i).collect()
    } else {
        ids
    };
    for id in list {
        if !run_one(id, &cfg, json_dir.as_deref()) {
            eprintln!("unknown experiment `{id}`\n{}", usage());
            std::process::exit(2);
        }
    }
}
