//! F1 — speedup curves: cell-level wavefront vs tiled blocked execution.
//!
//! At the reference length, sweep `P` and report measured wall times for
//! both schedulers, plus each schedule's model-predicted speedup (cell
//! planes vs tile planes with per-tile granularity). The crossover the
//! paper's blocked algorithm exploits — fewer, coarser synchronizations —
//! shows up as the blocked model curve staying near-linear where the
//! cell-level curve flattens against its barrier costs.

use tsa_bench::{pool, table::Table, timing, workload, RunConfig};
use tsa_core::{blocked, wavefront};
use tsa_perfmodel::{planes, CostModel};
use tsa_scoring::Scoring;

const TILE: usize = 16;

pub fn run(cfg: &RunConfig) {
    let scoring = Scoring::dna_default();
    let n = cfg.reference_length();
    let (a, b, c) = workload::triple(n);
    let cell_profile = planes::plane_profile(a.len(), b.len(), c.len());
    let tile_profile = planes::tile_plane_profile(a.len(), b.len(), c.len(), TILE);

    let mut t = Table::new(
        &["P", "wf_ms", "blk_ms", "wf_model_spd", "blk_model_spd"],
        cfg.csv,
    );
    let mut wf_model: Option<CostModel> = None;
    let mut blk_model: Option<CostModel> = None;
    for p in cfg.thread_sweep() {
        let (_, t_wf) = timing::best_of(cfg.reps(), || {
            pool::with_pool(p, || wavefront::align_score(&a, &b, &c, &scoring))
        });
        let (_, t_blk) = timing::best_of(cfg.reps(), || {
            pool::with_pool(p, || blocked::align_score(&a, &b, &c, &scoring, TILE))
        });
        if p == 1 {
            let cells: usize = cell_profile.iter().sum();
            let mut m = CostModel::calibrate_cell(t_wf.as_nanos() as f64 * 0.95, cells, 0.0);
            m.calibrate_barrier(t_wf.as_nanos() as f64, &cell_profile, 1);
            wf_model = Some(m);
            let tiles: usize = tile_profile.iter().sum();
            let mut m = CostModel::calibrate_cell(t_blk.as_nanos() as f64 * 0.95, tiles, 0.0);
            m.calibrate_barrier(t_blk.as_nanos() as f64, &tile_profile, 1);
            blk_model = Some(m);
        }
        t.row(vec![
            p.to_string(),
            timing::fmt_ms(t_wf),
            timing::fmt_ms(t_blk),
            format!("{:.2}", wf_model.unwrap().predict_speedup(&cell_profile, p)),
            format!(
                "{:.2}",
                blk_model.unwrap().predict_speedup(&tile_profile, p)
            ),
        ]);
    }
    println!("  (n={n}, tile={TILE}; blk model granularity = whole tiles)");
    t.print();
}
