//! T1 — sequential runtime and cell-update rate vs sequence length.
//!
//! Columns: the full-lattice DP (with traceback storage) and the two
//! quadratic-space score-only passes. MCUPS = million cell updates per
//! second over the `(n1+1)(n2+1)(n3+1)` lattice.

use tsa_bench::{table::Table, timing, workload, RunConfig};
use tsa_core::{full, score_only};
use tsa_scoring::Scoring;

pub fn run(cfg: &RunConfig) {
    let scoring = Scoring::dna_default();
    let mut t = Table::new(
        &[
            "n",
            "cells",
            "full_ms",
            "full_MCUPS",
            "slab_ms",
            "slab_MCUPS",
            "planes_ms",
            "planes_MCUPS",
        ],
        cfg.csv,
    );
    for n in cfg.length_sweep() {
        let (a, b, c) = workload::triple(n);
        let cells = workload::cell_updates(&a, &b, &c);
        let (s1, t_full) = timing::best_of(cfg.reps(), || full::align_score(&a, &b, &c, &scoring));
        let (s2, t_slab) =
            timing::best_of(cfg.reps(), || score_only::score_slabs(&a, &b, &c, &scoring));
        let (s3, t_planes) = timing::best_of(cfg.reps(), || {
            score_only::score_planes_parallel(&a, &b, &c, &scoring)
        });
        assert_eq!(s1, s2, "slab score diverged at n={n}");
        assert_eq!(s1, s3, "plane score diverged at n={n}");
        t.row(vec![
            n.to_string(),
            cells.to_string(),
            timing::fmt_ms(t_full),
            format!("{:.1}", timing::mcups(cells, t_full)),
            timing::fmt_ms(t_slab),
            format!("{:.1}", timing::mcups(cells, t_slab)),
            timing::fmt_ms(t_planes),
            format!("{:.1}", timing::mcups(cells, t_planes)),
        ]);
    }
    t.print();
}
