//! F6 — wavefront load profile over execution.
//!
//! Runs the plane-parallel DP with the traced executor and reports, per
//! decile of the plane sequence: cells, wall time, and the effective cell
//! rate. The ramp-up → plateau → ramp-down shape is the empirical
//! counterpart of the analytic plane-size profile; the rate column shows
//! the small early/late planes paying disproportionate scheduling
//! overhead — the direct justification for the blocked variant.

use tsa_bench::{table::Table, workload, RunConfig};
use tsa_core::dp::{Kernel, NEG_INF};
use tsa_scoring::Scoring;
use tsa_wavefront::plane::Extents;
use tsa_wavefront::trace::{bucketize, run_cells_wavefront_traced};
use tsa_wavefront::SharedGrid;

pub fn run(cfg: &RunConfig) {
    let scoring = Scoring::dna_default();
    let n = cfg.reference_length();
    let (a, b, c) = workload::triple(n);
    let kernel = Kernel::new(a.residues(), b.residues(), c.residues(), &scoring);
    let (n1, n2, n3) = kernel.lens();
    let e = Extents::new(n1, n2, n3);
    let grid: SharedGrid<i32> = SharedGrid::new(e.cells(), NEG_INF);
    // SAFETY: standard plane-disjointness contract (one write per cell,
    // reads from earlier planes).
    let timings = run_cells_wavefront_traced(e, |i, j, k| {
        let v = kernel.cell(i, j, k, |pi, pj, pk| unsafe {
            grid.get(e.index(pi, pj, pk))
        });
        unsafe { grid.set(e.index(i, j, k), v) };
    });
    let score = unsafe { grid.get(e.index(n1, n2, n3)) };
    println!("  (n={n}, {} planes, final score {score})", timings.len());

    let mut t = Table::new(&["decile", "cells", "time_ms", "Mcells_per_s"], cfg.csv);
    for (idx, (cells, nanos)) in bucketize(&timings, 10).iter().enumerate() {
        let secs = *nanos as f64 / 1e9;
        let rate = if secs > 0.0 {
            *cells as f64 / secs / 1e6
        } else {
            f64::INFINITY
        };
        t.row(vec![
            format!("{}%", (idx + 1) * 10),
            cells.to_string(),
            format!("{:.2}", *nanos as f64 / 1e6),
            format!("{rate:.1}"),
        ]);
    }
    t.print();
}
