//! F3 — tile-size sensitivity of the blocked schedulers.
//!
//! At the reference length, sweep the tile edge and measure the barrier
//! scheduler against the dataflow scheduler. Small tiles expose more
//! parallelism but pay per-tile scheduling; large tiles amortize it but
//! starve workers (fewer tiles per plane) — the U-shape the default tile
//! size sits at the bottom of. The dataflow scheduler's advantage grows
//! as tiles shrink (no global barrier amplifying per-plane jitter).

use tsa_bench::{table::Table, timing, workload, RunConfig};
use tsa_core::{blocked, full};
use tsa_perfmodel::planes;
use tsa_scoring::Scoring;

pub fn run(cfg: &RunConfig) {
    let scoring = Scoring::dna_default();
    let n = cfg.reference_length();
    let (a, b, c) = workload::triple(n);
    let reference = full::align_score(&a, &b, &c, &scoring);
    let threads = if cfg.quick { 2 } else { 4 };
    let tiles: &[usize] = if cfg.quick {
        &[4, 8, 16, 32]
    } else {
        &[2, 4, 8, 16, 32, 64]
    };
    let mut t = Table::new(
        &[
            "tile",
            "tiles_total",
            "tile_planes",
            "barrier_ms",
            "dataflow_ms",
        ],
        cfg.csv,
    );
    for &tile in tiles {
        let profile = planes::tile_plane_profile(a.len(), b.len(), c.len(), tile);
        let (s1, t_bar) = timing::best_of(cfg.reps(), || {
            blocked::align_score(&a, &b, &c, &scoring, tile)
        });
        let (lat, t_df) = timing::best_of(cfg.reps(), || {
            blocked::fill_dataflow(&a, &b, &c, &scoring, tile, threads)
        });
        assert_eq!(s1, reference, "barrier diverged at tile={tile}");
        assert_eq!(
            lat.final_score(),
            reference,
            "dataflow diverged at tile={tile}"
        );
        t.row(vec![
            tile.to_string(),
            profile.iter().sum::<usize>().to_string(),
            profile.len().to_string(),
            timing::fmt_ms(t_bar),
            timing::fmt_ms(t_df),
        ]);
    }
    println!("  (n={n}, dataflow workers={threads})");
    t.print();
}
