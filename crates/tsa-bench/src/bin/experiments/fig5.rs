//! F5 — simulated cluster scalability (the paper's actual hardware
//! setting, reproduced analytically per the substitution rule).
//!
//! The blocked wavefront under the α–β message model
//! (`tsa-perfmodel::cluster`), with the per-tile cost calibrated from a
//! measured sequential blocked run on this host. Three interconnect
//! classes: shared memory (α = 0), a fast 2007-era interconnect
//! (Myrinet-class), and gigabit Ethernet. Reports predicted speedup per
//! node count and each class's saturation point.

use tsa_bench::{table::Table, timing, workload, RunConfig};
use tsa_core::blocked;
use tsa_perfmodel::{pipeline, ClusterModel};
use tsa_scoring::Scoring;

const TILE: usize = 16;

pub fn run(cfg: &RunConfig) {
    let scoring = Scoring::dna_default();
    let n = cfg.reference_length();
    let (a, b, c) = workload::triple(n);
    let dims = (a.len(), b.len(), c.len());

    // Calibrate the per-cell cost from a real sequential blocked run.
    let (_, t_seq) = timing::best_of(cfg.reps(), || {
        blocked::align_score(&a, &b, &c, &scoring, TILE)
    });
    let cells = workload::cell_updates(&a, &b, &c);
    let t_cell_ns = t_seq.as_nanos() as f64 / cells as f64;
    println!("  (n={n}, tile={TILE}, calibrated t_cell = {t_cell_ns:.1} ns)");

    let shm = ClusterModel::shared_memory(t_cell_ns);
    let fast = ClusterModel::fast_interconnect(t_cell_ns);
    let eth = ClusterModel::ethernet(t_cell_ns);

    let mut t = Table::new(
        &[
            "P",
            "shm_spd",
            "fast_net_spd",
            "ethernet_spd",
            "eth_pipeline_spd",
        ],
        cfg.csv,
    );
    let sweep: &[usize] = if cfg.quick {
        &[1, 2, 4, 8]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    for &p in sweep {
        t.row(vec![
            p.to_string(),
            format!("{:.2}", shm.predict_speedup(dims, TILE, p)),
            format!("{:.2}", fast.predict_speedup(dims, TILE, p)),
            format!("{:.2}", eth.predict_speedup(dims, TILE, p)),
            format!("{:.2}", pipeline::pipeline_speedup(&eth, dims, p, 128)),
        ]);
    }
    t.print();
    let max_p = *sweep.last().expect("non-empty sweep");
    println!(
        "  saturation (<2% marginal gain): shm P={}, fast P={}, ethernet P={}",
        shm.saturation_point(dims, TILE, max_p, 0.02),
        fast.saturation_point(dims, TILE, max_p, 0.02),
        eth.saturation_point(dims, TILE, max_p, 0.02),
    );
}
