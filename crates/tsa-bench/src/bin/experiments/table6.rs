//! T6 — cost of the affine-gap (quasi-natural) extension.
//!
//! The affine DP tracks 7 predecessor states per cell (7×7 transitions),
//! so its per-cell constant is substantially larger than the linear DP's
//! 7-way max. This table reports the measured ratio and both scores
//! (affine scores are lower: opens only subtract).

use tsa_bench::{table::Table, timing, workload, RunConfig};
use tsa_core::{affine, full};
use tsa_scoring::{GapModel, Scoring};

pub fn run(cfg: &RunConfig) {
    let linear = Scoring::dna_default();
    let aff = Scoring::dna_default().with_gap(GapModel::affine(-4, -2));
    let lengths: Vec<usize> = if cfg.quick {
        vec![8, 16, 24]
    } else {
        vec![16, 24, 32, 48, 64]
    };
    let mut t = Table::new(
        &[
            "n",
            "linear_ms",
            "affine_ms",
            "affine_over_linear",
            "linear_SP",
            "affine_QN",
        ],
        cfg.csv,
    );
    for n in lengths {
        let (a, b, c) = workload::triple(n);
        let (s_lin, t_lin) = timing::best_of(cfg.reps(), || full::align_score(&a, &b, &c, &linear));
        let (al_aff, t_aff) = timing::best_of(cfg.reps(), || affine::align(&a, &b, &c, &aff));
        al_aff
            .validate(&a, &b, &c)
            .expect("affine alignment invalid");
        // With extend == the linear gap and open ≤ 0, affine can only lose.
        assert!(al_aff.score <= s_lin, "affine beat linear at n={n}");
        t.row(vec![
            n.to_string(),
            timing::fmt_ms(t_lin),
            timing::fmt_ms(t_aff),
            format!("{:.1}", t_aff.as_secs_f64() / t_lin.as_secs_f64()),
            s_lin.to_string(),
            al_aff.score.to_string(),
        ]);
    }
    println!("  (affine gap: open -4, extend -2; linear gap -2)");
    t.print();
}
