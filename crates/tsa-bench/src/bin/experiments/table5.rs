//! T5 — exact optimum vs center-star heuristic, across divergence levels.
//!
//! The quality argument for exact three-sequence alignment: as the family
//! diverges, the star merge leaves more score on the table. Reports the
//! exact SP score, the heuristic SP score, the deviation, and the
//! pairwise-sum upper bound for context.

use tsa_bench::{table::Table, workload, RunConfig};
use tsa_core::{bounds, center_star, full};
use tsa_scoring::Scoring;

pub fn run(cfg: &RunConfig) {
    let scoring = Scoring::dna_default();
    let n = if cfg.quick { 32 } else { 96 };
    let rates: &[f64] = &[0.05, 0.10, 0.20, 0.30, 0.40];
    let mut t = Table::new(
        &[
            "sub_rate",
            "identity",
            "exact_SP",
            "star_SP",
            "deficit",
            "deficit_pct",
            "upper_bound",
        ],
        cfg.csv,
    );
    for (idx, &rate) in rates.iter().enumerate() {
        let fam = workload::family_at_rate(n, rate, idx as u64);
        let (a, b, c) = fam.triple();
        let exact = full::align_score(a, b, c, &scoring);
        let star = center_star::align(a, b, c, &scoring).alignment.score;
        assert!(star <= exact, "heuristic beat the optimum at rate {rate}");
        let ub = bounds::upper_bound(a, b, c, &scoring);
        assert!(exact <= ub, "optimum above its upper bound at rate {rate}");
        let deficit = exact - star;
        let pct = if exact != 0 {
            100.0 * deficit as f64 / exact.abs() as f64
        } else {
            0.0
        };
        t.row(vec![
            format!("{rate:.2}"),
            format!("{:.3}", fam.mean_pairwise_identity()),
            exact.to_string(),
            star.to_string(),
            deficit.to_string(),
            format!("{pct:.1}"),
            ub.to_string(),
        ]);
    }
    println!(
        "  (n={n}, indel rate {}, DNA default scoring)",
        workload::CANONICAL_INDEL
    );
    t.print();
}
