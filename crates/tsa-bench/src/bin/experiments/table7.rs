//! T7 — Carrillo–Lipman pruning effectiveness.
//!
//! For each divergence level: the fraction of the lattice the pruned DP
//! actually computes, the resulting wall time against the unpruned fill,
//! and score equality. The more similar the sequences, the tighter the
//! center-star lower bound and the pairwise-projection upper bounds —
//! and the smaller the surviving "tube" around the optimal path.

use tsa_bench::{table::Table, timing, workload, RunConfig};
use tsa_core::{carrillo_lipman, full};
use tsa_scoring::Scoring;

pub fn run(cfg: &RunConfig) {
    let scoring = Scoring::dna_default();
    let n = if cfg.quick { 40 } else { 96 };
    let rates: &[f64] = &[0.02, 0.05, 0.10, 0.20, 0.30, 0.50];
    let mut t = Table::new(
        &[
            "sub_rate",
            "visited_pct",
            "full_ms",
            "pruned_ms",
            "pruned_over_full",
            "scores_equal",
        ],
        cfg.csv,
    );
    for (idx, &rate) in rates.iter().enumerate() {
        let fam = workload::family_at_rate(n, rate, 1000 + idx as u64);
        let (a, b, c) = fam.triple();
        let (ref_score, t_full) =
            timing::best_of(cfg.reps(), || full::align_score(a, b, c, &scoring));
        let ((score, stats), t_pruned) = timing::best_of(cfg.reps(), || {
            carrillo_lipman::align_score_with_stats(a, b, c, &scoring)
        });
        assert_eq!(score, ref_score, "pruning lost the optimum at rate {rate}");
        t.row(vec![
            format!("{rate:.2}"),
            format!("{:.1}", 100.0 * stats.visited_fraction()),
            timing::fmt_ms(t_full),
            timing::fmt_ms(t_pruned),
            format!("{:.2}", t_pruned.as_secs_f64() / t_full.as_secs_f64()),
            "true".into(),
        ]);
    }
    println!("  (n={n}; pruned time includes the center-star seed and 6 pairwise DP matrices)");
    t.print();
}
