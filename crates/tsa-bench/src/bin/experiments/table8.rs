//! T8 — progressive MSA vs the exact three-sequence optimum.
//!
//! The extension experiment: the progressive profile-merge heuristic
//! (`tsa-msa`) evaluated against ground truth on triples, across
//! divergence levels — and against the center-star baseline, which it
//! should dominate or match (profile merges use full column information;
//! the star merge only sees the center).

use tsa_bench::{table::Table, workload, RunConfig};
use tsa_core::{center_star, full};
use tsa_msa::MsaBuilder;
use tsa_scoring::Scoring;

pub fn run(cfg: &RunConfig) {
    let scoring = Scoring::dna_default();
    let n = if cfg.quick { 32 } else { 96 };
    let rates: &[f64] = &[0.05, 0.10, 0.20, 0.30, 0.40];
    let mut t = Table::new(
        &[
            "sub_rate",
            "exact_SP",
            "progressive_SP",
            "star_SP",
            "prog_deficit_pct",
        ],
        cfg.csv,
    );
    for (idx, &rate) in rates.iter().enumerate() {
        let fam = workload::family_at_rate(n, rate, 2000 + idx as u64);
        let seqs = fam.members.to_vec();
        let exact = full::align_score(&seqs[0], &seqs[1], &seqs[2], &scoring) as i64;
        let progressive = MsaBuilder::new()
            .scoring(scoring.clone())
            .align(&seqs)
            .expect("linear gaps");
        progressive.validate(&seqs).expect("valid MSA");
        let star = center_star::align(&seqs[0], &seqs[1], &seqs[2], &scoring)
            .alignment
            .score as i64;
        assert!(
            progressive.sp_score <= exact,
            "heuristic beat optimum at rate {rate}"
        );
        let pct = if exact != 0 {
            100.0 * (exact - progressive.sp_score) as f64 / exact.abs() as f64
        } else {
            0.0
        };
        t.row(vec![
            format!("{rate:.2}"),
            exact.to_string(),
            progressive.sp_score.to_string(),
            star.to_string(),
            format!("{pct:.1}"),
        ]);
    }
    println!("  (n={n}; progressive = UPGMA + profile merges, star = center-star)");
    t.print();
}
