//! F4 — model-predicted vs measured speedup, plus the ideal bound.
//!
//! Three series over `P`: the measured wavefront speedup on this host,
//! the calibrated cost model's prediction for `P` real workers, and the
//! barrier-free ideal bound (`WavefrontStats::speedup_bound`). On a
//! multi-core host the measured curve should track the model; on a
//! single-core host it stays ≈ 1 and the model/ideal curves document what
//! the schedule supports.

use tsa_bench::{pool, table::Table, timing, workload, RunConfig};
use tsa_core::wavefront;
use tsa_perfmodel::{planes, CostModel};
use tsa_scoring::Scoring;
use tsa_wavefront::stats::WavefrontStats;

pub fn run(cfg: &RunConfig) {
    let scoring = Scoring::dna_default();
    let n = cfg.reference_length();
    let (a, b, c) = workload::triple(n);
    let profile = planes::plane_profile(a.len(), b.len(), c.len());
    let stats = WavefrontStats {
        plane_sizes: profile.clone(),
    };

    let mut t = Table::new(&["P", "measured_spd", "model_spd", "ideal_bound"], cfg.csv);
    let mut base = 0.0;
    let mut model: Option<CostModel> = None;
    let sweep: Vec<usize> = if cfg.quick {
        cfg.thread_sweep()
    } else {
        vec![1, 2, 4, 8, 16]
    };
    for p in sweep {
        let (_, wall) = timing::best_of(cfg.reps(), || {
            pool::with_pool(p, || wavefront::align_score(&a, &b, &c, &scoring))
        });
        if p == 1 {
            base = wall.as_secs_f64();
            let cells: usize = profile.iter().sum();
            let mut m = CostModel::calibrate_cell(wall.as_nanos() as f64 * 0.95, cells, 0.0);
            m.calibrate_barrier(wall.as_nanos() as f64, &profile, 1);
            model = Some(m);
        }
        t.row(vec![
            p.to_string(),
            format!("{:.2}", base / wall.as_secs_f64()),
            format!("{:.2}", model.unwrap().predict_speedup(&profile, p)),
            format!("{:.2}", stats.speedup_bound(p)),
        ]);
    }
    println!("  (n={n}; host cores: {})", pool::host_cores());
    t.print();
}
