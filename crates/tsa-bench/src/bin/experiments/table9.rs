//! T9 — search-space reduction shoot-out: full DP vs adaptive banding vs
//! Carrillo–Lipman pruning.
//!
//! Banding needs no precomputation but guesses its region (and re-runs on
//! a doubled band when the guess was tight); CL pruning pays six pairwise
//! matrices + a heuristic seed for a provably sufficient region. The
//! crossover depends on divergence — this table shows it.

use tsa_bench::{table::Table, timing, workload, RunConfig};
use tsa_core::{banded3, carrillo_lipman, full};
use tsa_scoring::Scoring;

pub fn run(cfg: &RunConfig) {
    let scoring = Scoring::dna_default();
    let n = if cfg.quick { 40 } else { 96 };
    let rates: &[f64] = &[0.05, 0.15, 0.30, 0.50];
    let mut t = Table::new(
        &[
            "sub_rate",
            "full_ms",
            "banded_ms",
            "cl_ms",
            "cl_visited_pct",
            "all_equal",
        ],
        cfg.csv,
    );
    for (idx, &rate) in rates.iter().enumerate() {
        let fam = workload::family_at_rate(n, rate, 3000 + idx as u64);
        let (a, b, c) = fam.triple();
        let (reference, t_full) =
            timing::best_of(cfg.reps(), || full::align_score(a, b, c, &scoring));
        let (banded, t_banded) =
            timing::best_of(cfg.reps(), || banded3::align_adaptive(a, b, c, &scoring));
        let ((cl_score, cl_stats), t_cl) = timing::best_of(cfg.reps(), || {
            carrillo_lipman::align_score_with_stats(a, b, c, &scoring)
        });
        assert_eq!(
            banded.score, reference,
            "banding lost the optimum at {rate}"
        );
        assert_eq!(cl_score, reference, "pruning lost the optimum at {rate}");
        t.row(vec![
            format!("{rate:.2}"),
            timing::fmt_ms(t_full),
            timing::fmt_ms(t_banded),
            timing::fmt_ms(t_cl),
            format!("{:.1}", 100.0 * cl_stats.visited_fraction()),
            "true".into(),
        ]);
    }
    println!("  (n={n}; banded = adaptive doubling from w=4, CL = center-star seed)");
    t.print();
}
