//! F7 — measured plane profile vs model prediction.
//!
//! Runs the plane-parallel fill under the *profiled* executor at each
//! thread count, prints the per-sweep rollup (occupancy, load imbalance,
//! barrier overhead), fits the two-parameter cost model to the measured
//! profile (`t_cell = busy/cells`, `t_barrier = overhead/planes`), and
//! reports the model's prediction against the measured wall time. The
//! residual delta is exactly what the model cannot express — intra-plane
//! imbalance — so the `imbalance` and `delta` columns should move
//! together.

use tsa_bench::{pool, table::Table, workload, RunConfig};
use tsa_core::wavefront;
use tsa_perfmodel::measured::compare;
use tsa_scoring::Scoring;

pub fn run(cfg: &RunConfig) {
    let scoring = Scoring::dna_default();
    let n = cfg.reference_length();
    let (a, b, c) = workload::triple(n);
    println!("  (n={n}; model fitted per row from that row's own profile)");

    let mut t = Table::new(
        &[
            "threads",
            "wall_ms",
            "occupancy",
            "imbalance",
            "barrier_pct",
            "t_cell_ns",
            "t_barrier_ns",
            "pred_ms",
            "delta_pct",
        ],
        cfg.csv,
    );
    for threads in cfg.thread_sweep() {
        let (lat, profile) =
            pool::with_pool(threads, || wavefront::fill_profiled(&a, &b, &c, &scoring));
        // Keep the lattice alive until after timing is read: dropping it
        // early would be fine, but using it guards against the fill being
        // optimized into a different shape.
        let _score = lat.final_score();
        let summary = profile.summary();
        let cmp = compare(&profile);
        t.row(vec![
            threads.to_string(),
            format!("{:.2}", summary.wall_ns as f64 / 1e6),
            format!("{:.2}", summary.occupancy),
            format!("{:.2}", summary.imbalance),
            format!("{:.1}", summary.barrier_frac() * 100.0),
            format!("{:.1}", cmp.model.t_cell_ns),
            format!("{:.0}", cmp.model.t_barrier_ns),
            format!("{:.2}", cmp.predicted_ns / 1e6),
            format!("{:+.1}", cmp.delta_frac() * 100.0),
        ]);
    }
    t.print();
}
