//! T2 — parallel speedup vs worker count.
//!
//! For each length and thread count: measured wall time of the plane
//! wavefront inside a dedicated `P`-thread pool, measured speedup vs the
//! `P = 1` run, and the calibrated model's prediction for `P` *real*
//! workers (`t_cell` from the measured P = 1 wavefront run, barriers from
//! its leftover vs pure cell work). On a single-core host the measured
//! column is flat by construction; the model column carries the shape.

use tsa_bench::{pool, table::Table, timing, workload, RunConfig};
use tsa_core::wavefront;
use tsa_perfmodel::{model, planes, CostModel};
use tsa_scoring::Scoring;

pub fn run(cfg: &RunConfig) {
    let scoring = Scoring::dna_default();
    let lengths: Vec<usize> = if cfg.quick {
        vec![cfg.reference_length()]
    } else {
        vec![96, 128, 192]
    };
    let mut t = Table::new(
        &[
            "n",
            "P",
            "time_ms",
            "speedup_meas",
            "eff_meas",
            "speedup_model",
            "eff_model",
        ],
        cfg.csv,
    );
    for n in lengths {
        let (a, b, c) = workload::triple(n);
        let profile = planes::plane_profile(a.len(), b.len(), c.len());
        let mut base_ms = 0.0;
        let mut model_: Option<CostModel> = None;
        for p in cfg.thread_sweep() {
            let (_, wall) = timing::best_of(cfg.reps(), || {
                pool::with_pool(p, || wavefront::align_score(&a, &b, &c, &scoring))
            });
            let ms = wall.as_secs_f64() * 1e3;
            if p == 1 {
                base_ms = ms;
                // Calibrate: all P=1 time split between cells and barriers.
                let cells: usize = profile.iter().sum();
                let mut m = CostModel::calibrate_cell(wall.as_nanos() as f64 * 0.95, cells, 0.0);
                m.calibrate_barrier(wall.as_nanos() as f64, &profile, 1);
                model_ = Some(m);
            }
            let m = model_.expect("P=1 measured first");
            let s_meas = base_ms / ms;
            let s_model = m.predict_speedup(&profile, p);
            t.row(vec![
                n.to_string(),
                p.to_string(),
                format!("{ms:.2}"),
                format!("{s_meas:.2}"),
                format!("{:.2}", s_meas / p as f64),
                format!("{s_model:.2}"),
                format!("{:.2}", s_model / p as f64),
            ]);
        }
        let cap = model::speedup_cap(&profile);
        println!("  (n={n}: wavefront speedup cap = mean parallelism = {cap:.0})");
    }
    t.print();
}
