//! T3 — memory footprint vs length.
//!
//! Analytic score-storage bytes for each variant (`tsa-perfmodel::memory`)
//! next to the *measured* allocation of the full lattice (the only one big
//! enough to matter). The cubic-vs-quadratic separation is the reason the
//! divide-and-conquer aligner exists.

use tsa_bench::{table::Table, workload, RunConfig};
use tsa_core::full;
use tsa_perfmodel::memory;
use tsa_scoring::Scoring;

fn mib(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1 << 20) as f64)
}

pub fn run(cfg: &RunConfig) {
    let scoring = Scoring::dna_default();
    let mut t = Table::new(
        &[
            "n",
            "full_MiB",
            "full_meas_MiB",
            "affine_MiB",
            "slab_MiB",
            "planes_MiB",
            "hirschberg_MiB",
        ],
        cfg.csv,
    );
    for n in cfg.length_sweep() {
        let (a, b, c) = workload::triple(n);
        let (n1, n2, n3) = (a.len(), b.len(), c.len());
        // Measured: actually materialize the lattice (cheap next to the
        // timing experiments) and ask it.
        let measured = full::fill(&a, &b, &c, &scoring).memory_bytes();
        assert_eq!(measured, memory::full_lattice(n1, n2, n3));
        t.row(vec![
            n.to_string(),
            mib(memory::full_lattice(n1, n2, n3)),
            mib(measured),
            mib(memory::affine_lattice(n1, n2, n3)),
            mib(memory::slab_score(n2, n3)),
            mib(memory::plane_score(n1, n2)),
            mib(memory::hirschberg(n1, n2, n3)),
        ]);
    }
    t.print();
}
