//! Property tests for the progressive MSA stack.

use proptest::prelude::*;
use tsa_msa::profile::{align_profiles, cross_group_score, Profile};
use tsa_msa::MsaBuilder;
use tsa_scoring::Scoring;
use tsa_seq::Seq;

fn dna(max_len: usize) -> impl Strategy<Value = Seq> {
    prop::collection::vec(
        prop::sample::select(vec![b'A', b'C', b'G', b'T']),
        0..=max_len,
    )
    .prop_map(|v| Seq::dna(v).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn msa_is_valid_for_any_input_set(seqs in prop::collection::vec(dna(20), 1..6)) {
        let msa = MsaBuilder::new().align(&seqs).unwrap();
        prop_assert!(msa.validate(&seqs).is_ok());
        prop_assert_eq!(msa.rescore(&Scoring::dna_default()), msa.sp_score);
        prop_assert!(msa.rows.iter().all(|r| r.len() == msa.len()));
    }

    #[test]
    fn two_sequence_msa_is_the_pairwise_optimum(a in dna(25), b in dna(25)) {
        let s = Scoring::dna_default();
        let msa = MsaBuilder::new().align(&[a.clone(), b.clone()]).unwrap();
        prop_assert_eq!(
            msa.sp_score,
            tsa_pairwise::nw::align_score(&a, &b, &s) as i64
        );
    }

    #[test]
    fn progressive_never_beats_exact_on_triples(a in dna(10), b in dna(10), c in dna(10)) {
        let seqs = [a.clone(), b.clone(), c.clone()];
        let progressive = MsaBuilder::new().align(&seqs).unwrap();
        let exact = MsaBuilder::new().exact_triples(true).align(&seqs).unwrap();
        prop_assert!(progressive.sp_score <= exact.sp_score);
        let opt = tsa_core::full::align_score(&a, &b, &c, &Scoring::dna_default());
        prop_assert_eq!(exact.sp_score, opt as i64);
    }

    #[test]
    fn profile_merge_score_matches_rescoring(
        xs in prop::collection::vec(dna(12), 1..4),
        ys in prop::collection::vec(dna(12), 1..4),
    ) {
        let s = Scoring::dna_default();
        // Build each side's profile by progressively merging its members
        // (any consistent internal alignment will do for the invariant).
        let build = |group: &[Seq], offset: usize| -> Profile {
            let mut p = Profile::from_sequence(group[0].residues(), offset);
            for (idx, seq) in group.iter().enumerate().skip(1) {
                let q = Profile::from_sequence(seq.residues(), offset + idx);
                p = align_profiles(&p, &q, &s).profile;
            }
            p
        };
        let px = build(&xs, 0);
        let py = build(&ys, xs.len());
        let merged = align_profiles(&px, &py, &s);
        // The DP's reported cross score must equal the actual cross-group
        // SP of the merged rows.
        let got = cross_group_score(
            &merged.profile.rows[..px.size()],
            &merged.profile.rows[px.size()..],
            &s,
        );
        prop_assert_eq!(merged.cross_score, got);
    }

    #[test]
    fn merge_is_a_cross_group_maximum(
        a in dna(8), b in dna(8), c in dna(8),
    ) {
        // Merging {a} into the pair-profile of {b, c} must produce a
        // cross score at least as good as any single fixed alignment —
        // compare against aligning a to b alone projected into the
        // profile (a feasible but generally suboptimal choice).
        let s = Scoring::dna_default();
        let pa = Profile::from_sequence(a.residues(), 0);
        let pb = Profile::from_sequence(b.residues(), 1);
        let pc = Profile::from_sequence(c.residues(), 2);
        let pbc = align_profiles(&pb, &pc, &s).profile;
        let merged = align_profiles(&pa, &pbc, &s);
        // Feasibility lower bound: NW(a,b) + NW(a,c) is an upper bound on
        // cross score; center-star-ish lower bound: projected scores of
        // the merged rows themselves (tautology) — instead check against
        // the trivially feasible "all-gaps-then-rows" alignment.
        let all_gap_cross: i64 = {
            // a inserted entirely before the bc block.
            let gap_cost = s.gap_linear() as i64;
            let a_len = a.len() as i64;
            let b_res = b.len() as i64;
            let c_res = c.len() as i64;
            // a's residues each pair with a gap in b and c rows; b's and
            // c's residues each pair with a gap in a's row.
            a_len * 2 * gap_cost + (b_res + c_res) * gap_cost
        };
        prop_assert!(merged.cross_score >= all_gap_cross);
    }
}
