//! Iterative refinement: the classic post-pass over a progressive MSA.
//!
//! Progressive alignment freezes early merge decisions. Refinement
//! revisits them: repeatedly *remove* one sequence from the alignment
//! (collapsing columns left all-gap), re-align it against the profile of
//! the remaining rows, and keep the result if the total SP score
//! improved. Each accepted step increases SP, and candidate steps are
//! bounded, so the loop terminates; the result is never worse than its
//! input.

use crate::msa::Msa;
use crate::profile::{align_profiles, Profile};
use tsa_scoring::Scoring;

/// Outcome of a refinement run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Refinement {
    /// The refined alignment (row order preserved).
    pub msa: Msa,
    /// SP score before refinement.
    pub initial_score: i64,
    /// Accepted improvement steps.
    pub accepted: usize,
    /// Full sweeps performed.
    pub sweeps: usize,
}

/// Remove row `idx` from the rows, dropping columns that become all-gap.
/// Returns (remaining rows in order, the removed sequence's residues).
fn remove_row(rows: &[Vec<Option<u8>>], idx: usize) -> (Vec<Vec<Option<u8>>>, Vec<u8>) {
    let removed: Vec<u8> = rows[idx].iter().flatten().copied().collect();
    let rest: Vec<&Vec<Option<u8>>> = rows
        .iter()
        .enumerate()
        .filter_map(|(r, row)| (r != idx).then_some(row))
        .collect();
    let len = rows[idx].len();
    let keep: Vec<usize> = (0..len)
        .filter(|&c| rest.iter().any(|row| row[c].is_some()))
        .collect();
    let remaining = rest
        .iter()
        .map(|row| keep.iter().map(|&c| row[c]).collect())
        .collect();
    (remaining, removed)
}

/// One sweep: try re-placing every row once. Returns the number of
/// accepted improvements.
fn sweep(msa: &mut Msa, scoring: &Scoring) -> usize {
    let k = msa.rows.len();
    if k < 2 {
        return 0;
    }
    let mut accepted = 0;
    for idx in 0..k {
        let current = msa.rescore(scoring);
        let (remaining, removed) = remove_row(&msa.rows, idx);
        // Profile of the others (member ids are positional here).
        let members: Vec<usize> = (0..k - 1).collect();
        let rest_profile = Profile::from_rows(remaining, members);
        let single = Profile::from_sequence(&removed, k - 1);
        let merged = align_profiles(&rest_profile, &single, scoring);
        // Rebuild candidate rows in the original order.
        let mut rows: Vec<Vec<Option<u8>>> = Vec::with_capacity(k);
        let mut rest_iter = merged.profile.rows[..k - 1].iter();
        for r in 0..k {
            if r == idx {
                rows.push(merged.profile.rows[k - 1].clone());
            } else {
                rows.push(rest_iter.next().expect("k-1 remaining rows").clone());
            }
        }
        let candidate = Msa { sp_score: 0, rows };
        let cand_score = candidate.rescore(scoring);
        if cand_score > current {
            *msa = Msa {
                sp_score: cand_score,
                rows: candidate.rows,
            };
            accepted += 1;
        }
    }
    msa.sp_score = msa.rescore(scoring);
    accepted
}

/// Refine `msa` with up to `max_sweeps` remove-and-realign sweeps,
/// stopping early when a sweep accepts nothing.
///
/// ```
/// use tsa_msa::{refine, MsaBuilder};
/// use tsa_scoring::Scoring;
/// use tsa_seq::Seq;
///
/// let seqs = vec![
///     Seq::dna("GATTACA").unwrap(),
///     Seq::dna("GATACA").unwrap(),
///     Seq::dna("GTTACA").unwrap(),
///     Seq::dna("GATTAGA").unwrap(),
/// ];
/// let msa = MsaBuilder::new().align(&seqs).unwrap();
/// let refined = refine::refine(&msa, &Scoring::dna_default(), 3);
/// assert!(refined.msa.sp_score >= refined.initial_score);
/// ```
pub fn refine(msa: &Msa, scoring: &Scoring, max_sweeps: usize) -> Refinement {
    let initial_score = msa.rescore(scoring);
    let mut out = Msa {
        rows: msa.rows.clone(),
        sp_score: initial_score,
    };
    let mut accepted = 0;
    let mut sweeps = 0;
    for _ in 0..max_sweeps {
        sweeps += 1;
        let n = sweep(&mut out, scoring);
        accepted += n;
        if n == 0 {
            break;
        }
    }
    Refinement {
        msa: out,
        initial_score,
        accepted,
        sweeps,
    }
}

/// Convenience: refinement never hurts, so this returns the better of the
/// input and the refined alignment (they are equal when nothing improved).
pub fn refined_score_gain(msa: &Msa, scoring: &Scoring, max_sweeps: usize) -> i64 {
    let r = refine(msa, scoring, max_sweeps);
    r.msa.sp_score - r.initial_score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MsaBuilder;
    use tsa_seq::family::FamilyConfig;
    use tsa_seq::Seq;

    fn s() -> Scoring {
        Scoring::dna_default()
    }

    fn family(k: usize, n: usize, rate: f64, seed: u64) -> Vec<Seq> {
        let mut out = Vec::new();
        let mut batch = 0;
        while out.len() < k {
            let fam = FamilyConfig::new(n, rate, 0.05).generate(seed + batch);
            for m in fam.members {
                if out.len() < k {
                    out.push(m);
                }
            }
            batch += 1;
        }
        out
    }

    #[test]
    fn refinement_never_decreases_score() {
        for seed in 0..6 {
            let seqs = family(5, 30, 0.25, 100 + seed);
            let msa = MsaBuilder::new().align(&seqs).unwrap();
            let r = refine(&msa, &s(), 4);
            assert!(r.msa.sp_score >= r.initial_score, "seed {seed}");
            r.msa.validate(&seqs).unwrap();
        }
    }

    #[test]
    fn refinement_is_idempotent_at_fixpoint() {
        let seqs = family(4, 24, 0.2, 7);
        let msa = MsaBuilder::new().align(&seqs).unwrap();
        let once = refine(&msa, &s(), 10);
        let twice = refine(&once.msa, &s(), 10);
        assert_eq!(twice.accepted, 0);
        assert_eq!(twice.msa.sp_score, once.msa.sp_score);
    }

    #[test]
    fn perfect_alignment_is_untouched() {
        let seqs: Vec<Seq> = vec![Seq::dna("ACGTACGT").unwrap(); 4];
        let msa = MsaBuilder::new().align(&seqs).unwrap();
        let r = refine(&msa, &s(), 3);
        assert_eq!(r.accepted, 0);
        assert_eq!(r.msa, msa);
    }

    #[test]
    fn single_and_pair_inputs_are_noops() {
        let one = MsaBuilder::new()
            .align(&[Seq::dna("ACGT").unwrap()])
            .unwrap();
        let r = refine(&one, &s(), 3);
        assert_eq!(r.accepted, 0);
        // A pairwise alignment is already optimal; a remove-and-realign
        // step can at best re-derive it.
        let two = MsaBuilder::new()
            .align(&[Seq::dna("GATTACA").unwrap(), Seq::dna("GATACA").unwrap()])
            .unwrap();
        let r = refine(&two, &s(), 3);
        assert_eq!(r.msa.sp_score, two.sp_score);
    }

    #[test]
    fn remove_row_collapses_all_gap_columns() {
        let row = |t: &str| -> Vec<Option<u8>> {
            t.chars().map(|c| (c != '-').then_some(c as u8)).collect()
        };
        let rows = vec![row("A-CT"), row("AG-T"), row("A--T")];
        // Removing row 1 leaves column 2 (C from row 0) and drops nothing;
        // removing row 0 leaves column 1 all-gap → collapsed.
        let (rest, removed) = remove_row(&rows, 0);
        assert_eq!(removed, b"ACT");
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[0].len(), 3, "{rest:?}");
        let (rest, removed) = remove_row(&rows, 1);
        assert_eq!(removed, b"AGT");
        assert_eq!(rest[0].len(), 3);
    }

    #[test]
    fn gain_helper_is_nonnegative() {
        let seqs = family(5, 26, 0.3, 55);
        let msa = MsaBuilder::new().align(&seqs).unwrap();
        assert!(refined_score_gain(&msa, &s(), 3) >= 0);
    }

    #[test]
    fn refinement_can_actually_improve_something() {
        // Search a few seeds for a case where progressive alignment is
        // improvable; the test asserts the mechanism works at least once
        // across the batch (deterministic given the seeds).
        let mut improved = 0;
        for seed in 0..10 {
            let seqs = family(5, 30, 0.35, 300 + seed);
            let msa = MsaBuilder::new().align(&seqs).unwrap();
            if refined_score_gain(&msa, &s(), 4) > 0 {
                improved += 1;
            }
        }
        assert!(
            improved > 0,
            "refinement never improved any of 10 workloads"
        );
    }
}
