//! Alignment profiles and the exact profile–profile DP.
//!
//! A [`Profile`] is a group of already-aligned rows summarized per column
//! as residue counts plus a gap count. Aligning two profiles with
//! [`align_profiles`] maximizes the **cross-group** sum-of-pairs score —
//! the total pairwise score between every sequence of one group and every
//! sequence of the other (within-group contributions are fixed by the
//! existing alignments and cannot change). Because the cross-group score
//! decomposes per column pair, this is an ordinary 2D Needleman–Wunsch
//! over columns, with integer weighted column–column scores.

use tsa_scoring::{Scoring, NEG_INF};

/// One profile column: residue counts plus the gap count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileColumn {
    /// `(residue, count)` pairs, residues distinct.
    pub residues: Vec<(u8, u32)>,
    /// Number of member sequences gapped at this column.
    pub gaps: u32,
}

impl ProfileColumn {
    /// Count of non-gap entries.
    pub fn residue_count(&self) -> u32 {
        self.residues.iter().map(|&(_, c)| c).sum()
    }
}

/// A group of aligned rows, summarized by column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Per-column summaries.
    pub columns: Vec<ProfileColumn>,
    /// The member rows themselves (over `Option<u8>`), kept so merges can
    /// emit full alignments.
    pub rows: Vec<Vec<Option<u8>>>,
    /// Input-set indices of the member rows (who is in this group).
    pub members: Vec<usize>,
}

impl Profile {
    /// A single-sequence profile.
    pub fn from_sequence(residues: &[u8], member: usize) -> Self {
        let rows = vec![residues.iter().map(|&r| Some(r)).collect::<Vec<_>>()];
        Profile::from_rows(rows, vec![member])
    }

    /// Build from explicit rows (must be equal length).
    pub fn from_rows(rows: Vec<Vec<Option<u8>>>, members: Vec<usize>) -> Self {
        assert_eq!(rows.len(), members.len(), "one member id per row");
        let len = rows.first().map_or(0, Vec::len);
        assert!(
            rows.iter().all(|r| r.len() == len),
            "rows must be equal length"
        );
        let mut columns = Vec::with_capacity(len);
        for c in 0..len {
            let mut col = ProfileColumn {
                residues: Vec::new(),
                gaps: 0,
            };
            for row in &rows {
                match row[c] {
                    Some(r) => match col.residues.iter_mut().find(|(x, _)| *x == r) {
                        Some((_, count)) => *count += 1,
                        None => col.residues.push((r, 1)),
                    },
                    None => col.gaps += 1,
                }
            }
            columns.push(col);
        }
        Profile {
            columns,
            rows,
            members,
        }
    }

    /// Number of member sequences.
    pub fn size(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the profile has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

/// Cross-group score of pairing column `x` with column `y`: every residue
/// pair scores the matrix, residue–gap pairs pay the linear gap, gap–gap
/// pairs are free.
fn column_pair_score(x: &ProfileColumn, y: &ProfileColumn, scoring: &Scoring) -> i64 {
    let g = scoring.gap_linear() as i64;
    let mut s = 0i64;
    for &(a, ca) in &x.residues {
        for &(b, cb) in &y.residues {
            s += ca as i64 * cb as i64 * scoring.sub(a, b) as i64;
        }
    }
    s += x.residue_count() as i64 * y.gaps as i64 * g;
    s += y.residue_count() as i64 * x.gaps as i64 * g;
    s
}

/// Cross-group score of pairing column `x` against an all-gap column of a
/// `size`-member group.
fn column_gap_score(x: &ProfileColumn, size: usize, scoring: &Scoring) -> i64 {
    x.residue_count() as i64 * size as i64 * scoring.gap_linear() as i64
}

/// The merged alignment of two profiles plus the cross-group score the DP
/// achieved.
pub struct ProfileMerge {
    /// The merged profile (rows of `x` first, then rows of `y`).
    pub profile: Profile,
    /// Cross-group sum-of-pairs score (within-group scores excluded).
    pub cross_score: i64,
}

/// Exact cross-group-optimal alignment of two profiles (linear gaps).
pub fn align_profiles(x: &Profile, y: &Profile, scoring: &Scoring) -> ProfileMerge {
    let (n, m) = (x.len(), y.len());
    let w = m + 1;
    let mut d = vec![NEG_INF as i64; (n + 1) * w];
    d[0] = 0;
    for j in 1..=m {
        d[j] = d[j - 1] + column_gap_score(&y.columns[j - 1], x.size(), scoring);
    }
    for i in 1..=n {
        let up_gap = column_gap_score(&x.columns[i - 1], y.size(), scoring);
        d[i * w] = d[(i - 1) * w] + up_gap;
        for j in 1..=m {
            let diag = d[(i - 1) * w + j - 1]
                + column_pair_score(&x.columns[i - 1], &y.columns[j - 1], scoring);
            let up = d[(i - 1) * w + j] + up_gap;
            let left = d[i * w + j - 1] + column_gap_score(&y.columns[j - 1], x.size(), scoring);
            d[i * w + j] = diag.max(up).max(left);
        }
    }

    // Traceback, canonical diag > up > left.
    let (mut i, mut j) = (n, m);
    // Each step records (consume_x, consume_y).
    let mut steps: Vec<(bool, bool)> = Vec::with_capacity(n + m);
    while i > 0 || j > 0 {
        let v = d[i * w + j];
        if i > 0
            && j > 0
            && v == d[(i - 1) * w + j - 1]
                + column_pair_score(&x.columns[i - 1], &y.columns[j - 1], scoring)
        {
            steps.push((true, true));
            i -= 1;
            j -= 1;
        } else if i > 0
            && v == d[(i - 1) * w + j] + column_gap_score(&x.columns[i - 1], y.size(), scoring)
        {
            steps.push((true, false));
            i -= 1;
        } else {
            debug_assert!(j > 0, "broken profile traceback");
            steps.push((false, true));
            j -= 1;
        }
    }
    steps.reverse();

    // Materialize merged rows.
    let total_cols = steps.len();
    let mut rows: Vec<Vec<Option<u8>>> = vec![Vec::with_capacity(total_cols); x.size() + y.size()];
    let (mut xi, mut yi) = (0usize, 0usize);
    for (cx, cy) in steps {
        for (r, row) in x.rows.iter().enumerate() {
            rows[r].push(if cx { row[xi] } else { None });
        }
        for (r, row) in y.rows.iter().enumerate() {
            rows[x.size() + r].push(if cy { row[yi] } else { None });
        }
        xi += usize::from(cx);
        yi += usize::from(cy);
    }
    let mut members = x.members.clone();
    members.extend_from_slice(&y.members);
    ProfileMerge {
        profile: Profile::from_rows(rows, members),
        cross_score: d[n * w + m],
    }
}

/// Total cross-group SP score of two row groups inside one merged
/// alignment — the oracle [`align_profiles`] is tested against.
pub fn cross_group_score(
    rows_x: &[Vec<Option<u8>>],
    rows_y: &[Vec<Option<u8>>],
    scoring: &Scoring,
) -> i64 {
    let mut total = 0i64;
    for x in rows_x {
        for y in rows_y {
            total += tsa_scoring::sp::projected_pair_score(scoring, x, y) as i64;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsa_seq::Seq;

    fn s() -> Scoring {
        Scoring::dna_default()
    }

    fn row(text: &str) -> Vec<Option<u8>> {
        text.chars()
            .map(|c| if c == '-' { None } else { Some(c as u8) })
            .collect()
    }

    #[test]
    fn single_sequence_profile() {
        let p = Profile::from_sequence(b"ACGT", 0);
        assert_eq!(p.size(), 1);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert_eq!(p.columns[0].residues, vec![(b'A', 1)]);
        assert_eq!(p.columns[0].gaps, 0);
    }

    #[test]
    fn column_counts_aggregate() {
        let p = Profile::from_rows(vec![row("AC-"), row("AG-"), row("-GT")], vec![0, 1, 2]);
        assert_eq!(p.columns[0].residues, vec![(b'A', 2)]);
        assert_eq!(p.columns[0].gaps, 1);
        let col1 = &p.columns[1];
        assert_eq!(col1.residue_count(), 3);
        assert!(col1.residues.contains(&(b'G', 2)));
        assert!(col1.residues.contains(&(b'C', 1)));
        assert_eq!(p.columns[2].gaps, 2);
    }

    #[test]
    fn two_singletons_reduce_to_pairwise_nw() {
        let a = Seq::dna("GATTACA").unwrap();
        let b = Seq::dna("GATACA").unwrap();
        let pa = Profile::from_sequence(a.residues(), 0);
        let pb = Profile::from_sequence(b.residues(), 1);
        let merged = align_profiles(&pa, &pb, &s());
        let nw = tsa_pairwise::nw::align_score(&a, &b, &s());
        assert_eq!(merged.cross_score, nw as i64);
        // And the reported score matches the merged rows' actual
        // cross-group score.
        assert_eq!(
            merged.cross_score,
            cross_group_score(&merged.profile.rows[..1], &merged.profile.rows[1..], &s())
        );
    }

    #[test]
    fn merge_preserves_member_rows_degapped() {
        let px = Profile::from_rows(vec![row("AC-T"), row("ACGT")], vec![0, 1]);
        let py = Profile::from_sequence(b"AT", 2);
        let merged = align_profiles(&px, &py, &s());
        let degap = |r: &Vec<Option<u8>>| -> Vec<u8> { r.iter().flatten().copied().collect() };
        assert_eq!(degap(&merged.profile.rows[0]), b"ACT");
        assert_eq!(degap(&merged.profile.rows[1]), b"ACGT");
        assert_eq!(degap(&merged.profile.rows[2]), b"AT");
        assert_eq!(merged.profile.members, vec![0, 1, 2]);
    }

    #[test]
    fn reported_cross_score_matches_rescoring() {
        let px = Profile::from_rows(vec![row("GAT-ACA"), row("GATTACA")], vec![0, 1]);
        let py = Profile::from_rows(vec![row("G-TACA"), row("GTTACA")], vec![2, 3]);
        let merged = align_profiles(&px, &py, &s());
        let got = cross_group_score(&merged.profile.rows[..2], &merged.profile.rows[2..], &s());
        assert_eq!(merged.cross_score, got);
    }

    #[test]
    fn empty_profiles() {
        let px = Profile::from_sequence(b"", 0);
        let py = Profile::from_sequence(b"ACG", 1);
        let merged = align_profiles(&px, &py, &s());
        assert_eq!(merged.cross_score, -6);
        assert_eq!(merged.profile.len(), 3);
        let both_empty = align_profiles(
            &Profile::from_sequence(b"", 0),
            &Profile::from_sequence(b"", 1),
            &s(),
        );
        assert_eq!(both_empty.cross_score, 0);
        assert!(both_empty.profile.is_empty());
    }

    #[test]
    fn column_pair_score_examples() {
        // (2×A) vs (1×A, 1 gap): 2·1 matches (+4) + 2·1 gaps (−4) = 0.
        let x = ProfileColumn {
            residues: vec![(b'A', 2)],
            gaps: 0,
        };
        let y = ProfileColumn {
            residues: vec![(b'A', 1)],
            gaps: 1,
        };
        assert_eq!(column_pair_score(&x, &y, &s()), 2 * 2 - 2 * 2);
        // Gap column against (2 residues, 1 gap) group of size 3.
        assert_eq!(column_gap_score(&x, 3, &s()), 2 * 3 * -2);
    }
}
