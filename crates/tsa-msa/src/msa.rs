//! The top-level multiple-alignment API.

use crate::distance::DistanceMatrix;
use crate::guide_tree::{neighbor_joining, upgma};
use crate::progressive::align_tree;
use std::fmt;
use tsa_core::{Algorithm, Aligner};
use tsa_scoring::{sp, Scoring};
use tsa_seq::Seq;

/// A multiple alignment: one gapped row per input sequence, **in input
/// order**, plus its sum-of-pairs score.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Msa {
    /// Row `i` aligns input sequence `i`.
    pub rows: Vec<Vec<Option<u8>>>,
    /// Sum of `projected_pair_score` over all row pairs.
    pub sp_score: i64,
}

/// Errors from [`MsaBuilder::align`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsaError {
    /// No input sequences.
    Empty,
    /// The scoring's gap model is affine (progressive profiles need
    /// linear gaps).
    AffineGapsUnsupported,
    /// A row failed to de-gap back to its input (internal invariant).
    Corrupt(usize),
}

impl fmt::Display for MsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsaError::Empty => write!(f, "need at least one sequence"),
            MsaError::AffineGapsUnsupported => {
                write!(f, "progressive MSA requires a linear gap model")
            }
            MsaError::Corrupt(i) => write!(f, "internal error: row {i} corrupt"),
        }
    }
}

impl std::error::Error for MsaError {}

impl Msa {
    /// Number of alignment columns.
    pub fn len(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }

    /// True when there are no columns.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Recompute the SP score of the rows.
    pub fn rescore(&self, scoring: &Scoring) -> i64 {
        let mut total = 0i64;
        for (i, x) in self.rows.iter().enumerate() {
            for y in &self.rows[i + 1..] {
                total += sp::projected_pair_score(scoring, x, y) as i64;
            }
        }
        total
    }

    /// Check every row de-gaps to its input and no column is all-gap.
    pub fn validate(&self, seqs: &[Seq]) -> Result<(), MsaError> {
        if self.rows.len() != seqs.len() {
            return Err(MsaError::Corrupt(usize::MAX));
        }
        for (i, (row, seq)) in self.rows.iter().zip(seqs).enumerate() {
            let degapped: Vec<u8> = row.iter().flatten().copied().collect();
            if degapped != seq.residues() {
                return Err(MsaError::Corrupt(i));
            }
        }
        for c in 0..self.len() {
            if self.rows.iter().all(|r| r[c].is_none()) {
                return Err(MsaError::Corrupt(usize::MAX));
            }
        }
        Ok(())
    }

    /// Render rows as gapped text, one per line.
    pub fn pretty(&self) -> String {
        self.rows
            .iter()
            .map(|row| {
                row.iter()
                    .map(|r| r.map(char::from).unwrap_or('-'))
                    .collect::<String>()
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// How the guide tree is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GuideMethod {
    /// UPGMA (assumes clock-like divergence; the classic default).
    #[default]
    Upgma,
    /// Neighbor joining (robust to rate heterogeneity).
    NeighborJoining,
}

/// Builder for multiple alignments.
#[derive(Debug, Clone)]
pub struct MsaBuilder {
    scoring: Scoring,
    exact_triples: bool,
    guide: GuideMethod,
}

impl Default for MsaBuilder {
    fn default() -> Self {
        MsaBuilder::new()
    }
}

impl MsaBuilder {
    /// DNA-default scoring, progressive for every input size.
    pub fn new() -> Self {
        MsaBuilder {
            scoring: Scoring::dna_default(),
            exact_triples: false,
            guide: GuideMethod::Upgma,
        }
    }

    /// Set the scoring scheme (linear gaps only).
    pub fn scoring(mut self, scoring: Scoring) -> Self {
        self.scoring = scoring;
        self
    }

    /// Use the exact three-sequence DP when exactly 3 sequences are given
    /// (guaranteed SP-optimal for that case).
    pub fn exact_triples(mut self, yes: bool) -> Self {
        self.exact_triples = yes;
        self
    }

    /// Choose the guide-tree construction method.
    pub fn guide(mut self, method: GuideMethod) -> Self {
        self.guide = method;
        self
    }

    /// Align `seqs`. One sequence yields itself; two an optimal pairwise
    /// alignment; three (with [`MsaBuilder::exact_triples`]) the exact
    /// optimum; otherwise progressive UPGMA alignment.
    pub fn align(&self, seqs: &[Seq]) -> Result<Msa, MsaError> {
        if seqs.is_empty() {
            return Err(MsaError::Empty);
        }
        if self.scoring.gap.linear_penalty().is_none() {
            return Err(MsaError::AffineGapsUnsupported);
        }
        if self.exact_triples && seqs.len() == 3 {
            let aln = Aligner::new()
                .scoring(self.scoring.clone())
                .algorithm(Algorithm::ParallelHirschberg)
                .align3(&seqs[0], &seqs[1], &seqs[2])
                .expect("linear gaps and DC need no lattice budget");
            let rows = aln.rows().to_vec();
            let msa = Msa {
                sp_score: rows_sp(&rows, &self.scoring),
                rows,
            };
            msa.validate(seqs)?;
            return Ok(msa);
        }
        let profile = if seqs.len() == 1 {
            crate::profile::Profile::from_sequence(seqs[0].residues(), 0)
        } else {
            let dist = DistanceMatrix::from_alignments(seqs, &self.scoring);
            let tree = match self.guide {
                GuideMethod::Upgma => upgma(&dist),
                GuideMethod::NeighborJoining => neighbor_joining(&dist),
            };
            align_tree(&tree, seqs, &self.scoring)
        };
        // Reorder rows back to input order.
        let mut rows = vec![Vec::new(); seqs.len()];
        for (row, &member) in profile.rows.iter().zip(&profile.members) {
            rows[member] = row.clone();
        }
        let msa = Msa {
            sp_score: rows_sp(&rows, &self.scoring),
            rows,
        };
        msa.validate(seqs)?;
        Ok(msa)
    }
}

fn rows_sp(rows: &[Vec<Option<u8>>], scoring: &Scoring) -> i64 {
    let mut total = 0i64;
    for (i, x) in rows.iter().enumerate() {
        for y in &rows[i + 1..] {
            total += sp::projected_pair_score(scoring, x, y) as i64;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsa_seq::family::FamilyConfig;

    fn seqs(texts: &[&str]) -> Vec<Seq> {
        texts.iter().map(|t| Seq::dna(t).unwrap()).collect()
    }

    #[test]
    fn empty_input_is_an_error() {
        assert_eq!(MsaBuilder::new().align(&[]), Err(MsaError::Empty));
    }

    #[test]
    fn affine_gaps_are_rejected() {
        let b = MsaBuilder::new()
            .scoring(Scoring::dna_default().with_gap(tsa_scoring::GapModel::affine(-4, -1)));
        assert_eq!(
            b.align(&seqs(&["ACG"])),
            Err(MsaError::AffineGapsUnsupported)
        );
    }

    #[test]
    fn single_sequence() {
        let ss = seqs(&["ACGT"]);
        let msa = MsaBuilder::new().align(&ss).unwrap();
        assert_eq!(msa.rows.len(), 1);
        assert_eq!(msa.len(), 4);
        assert_eq!(msa.sp_score, 0);
        msa.validate(&ss).unwrap();
    }

    #[test]
    fn two_sequences_equal_pairwise_optimum() {
        let ss = seqs(&["GATTACA", "GATACA"]);
        let msa = MsaBuilder::new().align(&ss).unwrap();
        msa.validate(&ss).unwrap();
        let nw = tsa_pairwise::nw::align_score(&ss[0], &ss[1], &Scoring::dna_default());
        assert_eq!(msa.sp_score, nw as i64);
        assert_eq!(msa.rescore(&Scoring::dna_default()), msa.sp_score);
    }

    #[test]
    fn progressive_triple_at_most_exact() {
        let fam = FamilyConfig::new(24, 0.2, 0.05).generate(8);
        let ss: Vec<Seq> = fam.members.to_vec();
        let progressive = MsaBuilder::new().align(&ss).unwrap();
        let exact = MsaBuilder::new().exact_triples(true).align(&ss).unwrap();
        progressive.validate(&ss).unwrap();
        exact.validate(&ss).unwrap();
        assert!(progressive.sp_score <= exact.sp_score);
        // Exact path equals the tsa-core optimum.
        let opt = tsa_core::full::align_score(&ss[0], &ss[1], &ss[2], &Scoring::dna_default());
        assert_eq!(exact.sp_score, opt as i64);
    }

    #[test]
    fn five_way_family_alignment_is_valid() {
        let fam = FamilyConfig::new(40, 0.1, 0.03).generate(3);
        let mut ss: Vec<Seq> = fam.members.to_vec();
        // Two extra descendants from the same ancestor.
        let more = FamilyConfig::new(40, 0.1, 0.03).generate(4);
        ss.push(more.members[0].clone());
        ss.push(more.members[1].clone());
        let msa = MsaBuilder::new().align(&ss).unwrap();
        msa.validate(&ss).unwrap();
        assert_eq!(msa.rows.len(), 5);
        assert_eq!(msa.rescore(&Scoring::dna_default()), msa.sp_score);
        // Rectangular rows.
        assert!(msa.rows.iter().all(|r| r.len() == msa.len()));
    }

    #[test]
    fn identical_inputs_have_no_gaps_and_max_score() {
        let ss = seqs(&["ACGTACGT"; 4]);
        let msa = MsaBuilder::new().align(&ss).unwrap();
        msa.validate(&ss).unwrap();
        assert!(msa.rows.iter().all(|r| r.iter().all(Option::is_some)));
        // 6 pairs × 8 matches × 2.
        assert_eq!(msa.sp_score, 6 * 16);
    }

    #[test]
    fn nj_guide_produces_valid_alignments() {
        let fam = FamilyConfig::new(36, 0.15, 0.04).generate(12);
        let mut ss: Vec<Seq> = fam.members.to_vec();
        ss.push(FamilyConfig::new(36, 0.15, 0.04).generate(13).members[0].clone());
        let nj = MsaBuilder::new()
            .guide(GuideMethod::NeighborJoining)
            .align(&ss)
            .unwrap();
        nj.validate(&ss).unwrap();
        let upgma_msa = MsaBuilder::new().align(&ss).unwrap();
        // Both are feasible; scores may differ but stay in the same range.
        assert!(nj.sp_score > upgma_msa.sp_score / 2);
    }

    #[test]
    fn rows_come_back_in_input_order() {
        // Craft inputs whose guide tree reorders the merges: identical
        // pair (0, 2) and an outlier (1).
        let ss = seqs(&["AAAAAAAA", "CCCCCCCC", "AAAAAAAA"]);
        let msa = MsaBuilder::new().align(&ss).unwrap();
        msa.validate(&ss).unwrap(); // validate() checks row order
        assert_eq!(msa.rows[1].iter().flatten().count(), 8);
    }

    #[test]
    fn pretty_is_rectangular() {
        let ss = seqs(&["GATTACA", "GATACA", "GTTACA"]);
        let msa = MsaBuilder::new().align(&ss).unwrap();
        let pretty = msa.pretty();
        let lines: Vec<&str> = pretty.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.len() == msa.len()));
    }
}
