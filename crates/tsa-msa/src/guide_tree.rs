//! UPGMA guide-tree construction.
//!
//! Repeatedly merge the two closest clusters; the inter-cluster distance
//! is the size-weighted average of member distances (the UPGMA update).
//! Ties break toward the lexicographically smallest index pair, so the
//! tree — and therefore the whole progressive alignment — is
//! deterministic.

use crate::distance::DistanceMatrix;

/// A rooted binary guide tree over sequence indices `0..k`.
#[derive(Debug, Clone, PartialEq)]
pub enum GuideTree {
    /// An input sequence.
    Leaf(usize),
    /// A merge of two subtrees (left merged first historically).
    Node(Box<GuideTree>, Box<GuideTree>),
}

impl GuideTree {
    /// All leaf indices, left to right.
    pub fn leaves(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<usize>) {
        match self {
            GuideTree::Leaf(i) => out.push(*i),
            GuideTree::Node(l, r) => {
                l.collect_leaves(out);
                r.collect_leaves(out);
            }
        }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        match self {
            GuideTree::Leaf(_) => 1,
            GuideTree::Node(l, r) => l.len() + r.len(),
        }
    }

    /// Always false — a tree has at least one leaf.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Build the UPGMA tree for a distance matrix with ≥ 1 entries.
///
/// # Panics
/// Panics on an empty matrix.
pub fn upgma(dist: &DistanceMatrix) -> GuideTree {
    let k = dist.len();
    assert!(k > 0, "cannot build a guide tree over zero sequences");
    // Active clusters: (tree, member count); distances kept in a mutable
    // working matrix indexed by cluster slot.
    let mut clusters: Vec<Option<(GuideTree, usize)>> =
        (0..k).map(|i| Some((GuideTree::Leaf(i), 1))).collect();
    let mut d = vec![0.0f64; k * k];
    for i in 0..k {
        for j in 0..k {
            d[i * k + j] = dist.get(i, j);
        }
    }
    for _ in 1..k {
        // Find the closest active pair (smallest distance, ties by index).
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..k {
            if clusters[i].is_none() {
                continue;
            }
            for j in i + 1..k {
                if clusters[j].is_none() {
                    continue;
                }
                let dij = d[i * k + j];
                // `map_or`, not `is_none_or`: MSRV 1.75 predates the latter.
                if best.map_or(true, |(_, _, bd)| dij < bd) {
                    best = Some((i, j, dij));
                }
            }
        }
        let (i, j, _) = best.expect("at least two active clusters");
        let (ti, ni) = clusters[i].take().expect("active");
        let (tj, nj) = clusters[j].take().expect("active");
        // UPGMA distance update into slot i.
        for m in 0..k {
            if m != i && clusters[m].is_some() {
                let dm = (d[i * k + m] * ni as f64 + d[j * k + m] * nj as f64) / (ni + nj) as f64;
                d[i * k + m] = dm;
                d[m * k + i] = dm;
            }
        }
        clusters[i] = Some((GuideTree::Node(Box::new(ti), Box::new(tj)), ni + nj));
    }
    clusters
        .into_iter()
        .flatten()
        .map(|(t, _)| t)
        .next()
        .expect("exactly one cluster remains")
}

/// Build a neighbor-joining tree (Saitou–Nei) for a distance matrix with
/// ≥ 1 entries. NJ does not assume a molecular clock, so it recovers the
/// right topology on rate-heterogeneous families where UPGMA can be
/// misled; the final unrooted join is rooted arbitrarily at the last
/// merge, which is all progressive alignment needs.
///
/// # Panics
/// Panics on an empty matrix.
pub fn neighbor_joining(dist: &DistanceMatrix) -> GuideTree {
    let k = dist.len();
    assert!(k > 0, "cannot build a guide tree over zero sequences");
    let mut clusters: Vec<Option<GuideTree>> = (0..k).map(|i| Some(GuideTree::Leaf(i))).collect();
    let mut d = vec![0.0f64; k * k];
    for i in 0..k {
        for j in 0..k {
            d[i * k + j] = dist.get(i, j);
        }
    }
    let mut active = k;
    while active > 2 {
        // Row sums over active clusters.
        let row_sum = |i: usize, cl: &[Option<GuideTree>], d: &[f64]| -> f64 {
            (0..k)
                .filter(|&m| m != i && cl[m].is_some())
                .map(|m| d[i * k + m])
                .sum()
        };
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..k {
            if clusters[i].is_none() {
                continue;
            }
            let ri = row_sum(i, &clusters, &d);
            for j in i + 1..k {
                if clusters[j].is_none() {
                    continue;
                }
                let q = (active as f64 - 2.0) * d[i * k + j] - ri - row_sum(j, &clusters, &d);
                if best.map_or(true, |(_, _, bq)| q < bq) {
                    best = Some((i, j, q));
                }
            }
        }
        let (i, j, _) = best.expect("at least three active clusters");
        let ti = clusters[i].take().expect("active");
        let tj = clusters[j].take().expect("active");
        let dij = d[i * k + j];
        for m in 0..k {
            if m != i && clusters[m].is_some() {
                let dm = 0.5 * (d[i * k + m] + d[j * k + m] - dij);
                d[i * k + m] = dm;
                d[m * k + i] = dm;
            }
        }
        clusters[i] = Some(GuideTree::Node(Box::new(ti), Box::new(tj)));
        active -= 1;
    }
    // Join the final one or two clusters.
    let mut rest = clusters.into_iter().flatten();
    let first = rest.next().expect("at least one cluster");
    match rest.next() {
        Some(second) => GuideTree::Node(Box::new(first), Box::new(second)),
        None => first,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(k: usize, entries: &[(usize, usize, f64)]) -> DistanceMatrix {
        let mut m = fresh(k);
        for &(i, j, d) in entries {
            m.set(i, j, d);
        }
        m
    }

    fn fresh(k: usize) -> DistanceMatrix {
        // Construct through the public API using k empty sequences (all
        // distances zero), then overwrite.
        let seqs: Vec<tsa_seq::Seq> = (0..k).map(|_| tsa_seq::Seq::dna("").unwrap()).collect();
        DistanceMatrix::from_alignments(&seqs, &tsa_scoring::Scoring::dna_default())
    }

    #[test]
    fn single_leaf() {
        let t = upgma(&fresh(1));
        assert_eq!(t, GuideTree::Leaf(0));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn two_leaves_merge() {
        let t = upgma(&matrix(2, &[(0, 1, 0.5)]));
        assert_eq!(t.leaves(), vec![0, 1]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn closest_pair_merges_first() {
        // 0-1 close, 2 far: tree should be ((0,1),2).
        let m = matrix(3, &[(0, 1, 0.1), (0, 2, 0.9), (1, 2, 0.9)]);
        let t = upgma(&m);
        assert_eq!(
            t,
            GuideTree::Node(
                Box::new(GuideTree::Node(
                    Box::new(GuideTree::Leaf(0)),
                    Box::new(GuideTree::Leaf(1))
                )),
                Box::new(GuideTree::Leaf(2))
            )
        );
    }

    #[test]
    fn four_leaves_two_clades() {
        let m = matrix(
            4,
            &[
                (0, 1, 0.1),
                (2, 3, 0.1),
                (0, 2, 0.8),
                (0, 3, 0.8),
                (1, 2, 0.8),
                (1, 3, 0.8),
            ],
        );
        let t = upgma(&m);
        let leaves = t.leaves();
        assert_eq!(leaves.len(), 4);
        // The two clades stay intact: 0,1 adjacent and 2,3 adjacent.
        let pos = |x: usize| leaves.iter().position(|&l| l == x).unwrap();
        assert_eq!(pos(0).abs_diff(pos(1)), 1);
        assert_eq!(pos(2).abs_diff(pos(3)), 1);
    }

    #[test]
    fn every_index_appears_once() {
        let m = fresh(7);
        let t = upgma(&m);
        let mut leaves = t.leaves();
        leaves.sort_unstable();
        assert_eq!(leaves, (0..7).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "zero sequences")]
    fn empty_matrix_panics() {
        let _ = upgma(&fresh(0));
    }

    #[test]
    fn nj_single_and_pair() {
        assert_eq!(neighbor_joining(&fresh(1)), GuideTree::Leaf(0));
        let t = neighbor_joining(&matrix(2, &[(0, 1, 0.4)]));
        assert_eq!(t.leaves(), vec![0, 1]);
    }

    #[test]
    fn nj_covers_every_index_once() {
        for k in [3usize, 5, 8] {
            let t = neighbor_joining(&fresh(k));
            let mut leaves = t.leaves();
            leaves.sort_unstable();
            assert_eq!(leaves, (0..k).collect::<Vec<_>>(), "k={k}");
        }
    }

    #[test]
    fn nj_keeps_clades_together() {
        let m = matrix(
            4,
            &[
                (0, 1, 0.1),
                (2, 3, 0.1),
                (0, 2, 0.9),
                (0, 3, 0.9),
                (1, 2, 0.9),
                (1, 3, 0.9),
            ],
        );
        let t = neighbor_joining(&m);
        let leaves = t.leaves();
        let pos = |x: usize| leaves.iter().position(|&l| l == x).unwrap();
        assert_eq!(pos(0).abs_diff(pos(1)), 1, "{leaves:?}");
        assert_eq!(pos(2).abs_diff(pos(3)), 1, "{leaves:?}");
    }

    #[test]
    fn nj_handles_rate_heterogeneity() {
        // A classic UPGMA failure shape: leaf 1 evolves fast. True
        // topology groups (0,1) vs (2,3); distances: d(0,1) moderate but
        // d(1, anything) inflated. NJ's Q-correction compensates.
        let m = matrix(
            4,
            &[
                (0, 1, 0.5),
                (0, 2, 0.4),
                (0, 3, 0.45),
                (1, 2, 0.85),
                (1, 3, 0.9),
                (2, 3, 0.2),
            ],
        );
        let t = neighbor_joining(&m);
        let leaves = t.leaves();
        let pos = |x: usize| leaves.iter().position(|&l| l == x).unwrap();
        // NJ must keep the (2,3) clade adjacent despite leaf 1's noise.
        assert_eq!(pos(2).abs_diff(pos(3)), 1, "{leaves:?}");
    }

    #[test]
    #[should_panic(expected = "zero sequences")]
    fn nj_empty_matrix_panics() {
        let _ = neighbor_joining(&fresh(0));
    }
}
