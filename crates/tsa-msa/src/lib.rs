//! Progressive multiple alignment of `k` sequences — the natural
//! extension of the three-sequence aligner, built from the same
//! substrate.
//!
//! Exact sum-of-pairs alignment is `O(nᵏ)` and NP-hard for unbounded `k`,
//! so beyond three sequences the standard approach is *progressive*
//! alignment:
//!
//! 1. estimate pairwise distances from optimal pairwise alignments
//!    ([`distance`]);
//! 2. build a guide tree by UPGMA ([`guide_tree`]);
//! 3. align up the tree, merging groups with an exact **profile–profile**
//!    DP that maximizes the *cross-group* sum-of-pairs contribution
//!    ([`profile`], [`progressive`]).
//!
//! For exactly three inputs the exact `tsa-core` aligner is available
//! through the same entry point (`MsaBuilder::exact_triples`), letting
//! callers quantify how much the progressive heuristic loses — the same
//! comparison the center-star experiment makes, one level up.
//!
//! ```
//! use tsa_msa::MsaBuilder;
//! use tsa_seq::Seq;
//!
//! let seqs = vec![
//!     Seq::dna("GATTACA").unwrap(),
//!     Seq::dna("GATACA").unwrap(),
//!     Seq::dna("GTTACA").unwrap(),
//!     Seq::dna("GATTACA").unwrap(),
//! ];
//! let msa = MsaBuilder::new().align(&seqs).unwrap();
//! assert_eq!(msa.rows.len(), 4);
//! msa.validate(&seqs).unwrap();
//! ```

pub mod distance;
pub mod guide_tree;
pub mod msa;
pub mod profile;
pub mod progressive;
pub mod refine;

pub use msa::{GuideMethod, Msa, MsaBuilder, MsaError};
