//! Progressive alignment up the guide tree.

use crate::guide_tree::GuideTree;
use crate::profile::{align_profiles, Profile};
use tsa_scoring::Scoring;
use tsa_seq::Seq;

/// Align the sequences along `tree`, returning the merged profile (rows in
/// leaf order of the tree; `members` maps each row back to its input
/// index).
pub fn align_tree(tree: &GuideTree, seqs: &[Seq], scoring: &Scoring) -> Profile {
    match tree {
        GuideTree::Leaf(i) => Profile::from_sequence(seqs[*i].residues(), *i),
        GuideTree::Node(l, r) => {
            let pl = align_tree(l, seqs, scoring);
            let pr = align_tree(r, seqs, scoring);
            align_profiles(&pl, &pr, scoring).profile
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::DistanceMatrix;
    use crate::guide_tree::upgma;

    fn s() -> Scoring {
        Scoring::dna_default()
    }

    fn seqs(texts: &[&str]) -> Vec<Seq> {
        texts.iter().map(|t| Seq::dna(t).unwrap()).collect()
    }

    #[test]
    fn leaf_is_the_sequence_itself() {
        let ss = seqs(&["ACGT"]);
        let p = align_tree(&GuideTree::Leaf(0), &ss, &s());
        assert_eq!(p.size(), 1);
        assert_eq!(p.members, vec![0]);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn full_tree_aligns_all_members_once() {
        let ss = seqs(&["GATTACA", "GATACA", "GTTACA", "GATTACA", "GATTAGA"]);
        let tree = upgma(&DistanceMatrix::from_alignments(&ss, &s()));
        let p = align_tree(&tree, &ss, &s());
        assert_eq!(p.size(), 5);
        let mut members = p.members.clone();
        members.sort_unstable();
        assert_eq!(members, vec![0, 1, 2, 3, 4]);
        // Every row de-gaps to its input.
        for (row, &m) in p.rows.iter().zip(&p.members) {
            let degapped: Vec<u8> = row.iter().flatten().copied().collect();
            assert_eq!(degapped, ss[m].residues(), "member {m}");
        }
        // Rectangular.
        assert!(p.rows.iter().all(|r| r.len() == p.len()));
    }

    #[test]
    fn identical_inputs_align_without_gaps() {
        let ss = seqs(&["ACGTACGT"; 4]);
        let tree = upgma(&DistanceMatrix::from_alignments(&ss, &s()));
        let p = align_tree(&tree, &ss, &s());
        assert_eq!(p.len(), 8);
        assert!(p.columns.iter().all(|c| c.gaps == 0));
    }
}
