//! Pairwise distance estimation for guide-tree construction.
//!
//! Distance = `1 − fractional identity` of the optimal pairwise (linear
//! space) alignment: cheap, symmetric, zero for identical sequences, and
//! entirely adequate for ordering merges.

use tsa_pairwise::hirschberg;
use tsa_scoring::Scoring;
use tsa_seq::Seq;

/// A symmetric `k×k` distance matrix.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    vals: Vec<f64>,
    k: usize,
}

impl DistanceMatrix {
    /// Distances from optimal pairwise alignments of every pair.
    pub fn from_alignments(seqs: &[Seq], scoring: &Scoring) -> Self {
        let k = seqs.len();
        let mut m = DistanceMatrix {
            vals: vec![0.0; k * k],
            k,
        };
        for i in 0..k {
            for j in i + 1..k {
                let d = alignment_distance(&seqs[i], &seqs[j], scoring);
                m.set(i, j, d);
            }
        }
        m
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.k
    }

    /// True when the matrix is over zero sequences.
    pub fn is_empty(&self) -> bool {
        self.k == 0
    }

    /// Distance between `i` and `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.vals[i * self.k + j]
    }

    /// Set (symmetrically).
    pub fn set(&mut self, i: usize, j: usize, d: f64) {
        self.vals[i * self.k + j] = d;
        self.vals[j * self.k + i] = d;
    }
}

/// `1 − identity` over the aligned columns of an optimal pairwise
/// alignment (gap columns count as differences).
pub fn alignment_distance(a: &Seq, b: &Seq, scoring: &Scoring) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let aln = hirschberg::align(a, b, scoring);
    if aln.is_empty() {
        return 0.0;
    }
    let same = aln
        .row_a
        .iter()
        .zip(&aln.row_b)
        .filter(|(x, y)| matches!((x, y), (Some(p), Some(q)) if p == q))
        .count();
    1.0 - same as f64 / aln.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> Scoring {
        Scoring::dna_default()
    }

    #[test]
    fn identical_sequences_have_zero_distance() {
        let a = Seq::dna("ACGTACGT").unwrap();
        assert_eq!(alignment_distance(&a, &a, &s()), 0.0);
    }

    #[test]
    fn unrelated_sequences_have_large_distance() {
        let a = Seq::dna("AAAAAAAA").unwrap();
        let b = Seq::dna("CCCCCCCC").unwrap();
        assert!(alignment_distance(&a, &b, &s()) > 0.8);
    }

    #[test]
    fn distance_is_bounded_and_symmetric() {
        let seqs = [
            Seq::dna("ACGTACGT").unwrap(),
            Seq::dna("ACGTTCGT").unwrap(),
            Seq::dna("TTTT").unwrap(),
        ];
        for a in &seqs {
            for b in &seqs {
                let d = alignment_distance(a, b, &s());
                assert!((0.0..=1.0).contains(&d));
                assert!((d - alignment_distance(b, a, &s())).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matrix_fills_symmetrically() {
        let seqs = vec![
            Seq::dna("ACGT").unwrap(),
            Seq::dna("ACGA").unwrap(),
            Seq::dna("TTTT").unwrap(),
        ];
        let m = DistanceMatrix::from_alignments(&seqs, &s());
        assert_eq!(m.len(), 3);
        for i in 0..3 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
        // The similar pair is closer than either is to the unrelated one.
        assert!(m.get(0, 1) < m.get(0, 2));
        assert!(m.get(0, 1) < m.get(1, 2));
    }

    #[test]
    fn empty_inputs() {
        let e = Seq::dna("").unwrap();
        let a = Seq::dna("ACG").unwrap();
        assert_eq!(alignment_distance(&e, &e, &s()), 0.0);
        // All-gap alignment: zero identical columns.
        assert_eq!(alignment_distance(&e, &a, &s()), 1.0);
    }
}
