//! Fault-injection suite (requires `--features faults`): drives the
//! engine through kernel panics, worker deaths, inflated resource
//! estimates, and mid-kernel deadline expiry via `#fault-*` tag
//! directives, and checks that the accounting identity
//! `submitted == completed + rejected + cancelled + failed` survives.
#![cfg(feature = "faults")]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tsa_core::Algorithm;
use tsa_seq::{family::FamilyConfig, Seq};
use tsa_service::{
    AlignRequest, CancelStage, Engine, JobOutcome, RingSink, ServiceConfig, SpanRecord,
    SubmitError, Tracer,
};

fn family(len: usize, seed: u64) -> [Seq; 3] {
    let fam = FamilyConfig::new(len, 0.1, 0.05)
        .try_generate(seed)
        .expect("generate family");
    let mut it = fam.members.into_iter();
    [it.next().unwrap(), it.next().unwrap(), it.next().unwrap()]
}

/// Cache disabled: the injected faults live inside the kernel closure,
/// and a cache hit would skip them.
fn fault_config(workers: usize) -> ServiceConfig {
    ServiceConfig {
        workers,
        queue_capacity: 32,
        cache_capacity: 0,
        ..ServiceConfig::default()
    }
}

#[test]
fn panic_storm_is_contained_and_counted() {
    let engine = Engine::start(fault_config(2));
    let [a, b, c] = family(40, 1);

    // Every one of these jobs panics inside the kernel; each must resolve
    // as a structured failure without taking its worker down.
    let storm: Vec<_> = (0..8)
        .map(|i| {
            let req = AlignRequest::new(
                format!("storm-{i}#fault-panic"),
                a.clone(),
                b.clone(),
                c.clone(),
            )
            .score_only(true);
            engine.submit(req).expect("admitted")
        })
        .collect();
    for handle in storm {
        match handle.wait() {
            JobOutcome::Failed(msg) => {
                assert!(
                    msg.contains("kernel panicked: injected kernel panic"),
                    "unexpected failure text: {msg}"
                );
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    // The pool is still at full strength: fresh jobs complete normally.
    for i in 0..4 {
        let req = AlignRequest::new(format!("after-{i}"), a.clone(), b.clone(), c.clone())
            .score_only(true);
        let handle = engine.submit(req).expect("admitted");
        assert!(matches!(handle.wait(), JobOutcome::Done(_)));
    }

    let stats = engine.shutdown();
    assert_eq!(stats.panics, 8, "every injected panic is counted");
    assert_eq!(stats.failed, 8, "caught panics resolve as failures");
    assert_eq!(stats.respawns, 0, "caught panics never kill a worker");
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.resolved(), stats.submitted);
}

#[test]
fn worker_death_resolves_handle_and_pool_respawns() {
    let engine = Engine::start(fault_config(2));
    let [a, b, c] = family(30, 2);

    // This panic fires *outside* the kernel isolation boundary: the
    // worker thread dies. The handle must still resolve — never hang.
    let req = AlignRequest::new("boom#fault-abort", a.clone(), b.clone(), c.clone());
    let handle = engine.submit(req).expect("admitted");
    match handle.wait() {
        JobOutcome::Failed(msg) => assert_eq!(msg, "worker thread died mid-job"),
        other => panic!("expected Failed, got {other:?}"),
    }

    // The supervisor replaces the dead thread within its poll interval.
    let deadline = Instant::now() + Duration::from_secs(5);
    while engine.stats().respawns == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        engine.stats().respawns >= 1,
        "supervisor respawned the worker"
    );

    // Both pool slots work: more jobs than one worker could serve alone
    // all complete.
    let after: Vec<_> = (0..4)
        .map(|i| {
            let req = AlignRequest::new(format!("after-{i}"), a.clone(), b.clone(), c.clone())
                .score_only(true);
            engine.submit(req).expect("admitted")
        })
        .collect();
    for handle in after {
        assert!(matches!(handle.wait(), JobOutcome::Done(_)));
    }

    let stats = engine.shutdown();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.completed, 4);
    assert!(stats.respawns >= 1);
    assert_eq!(stats.resolved(), stats.submitted);
}

#[test]
fn inflated_estimate_trips_the_memory_budget() {
    let engine = Engine::start(ServiceConfig {
        memory_budget: Some(16 * 1024 * 1024),
        ..fault_config(2)
    });
    let [a, b, c] = family(40, 3);

    // The directive multiplies the governor's byte estimate; the pinned
    // algorithm leaves no room to degrade, so admission must refuse.
    let req = AlignRequest::new("hog#fault-inflate=100000", a.clone(), b.clone(), c.clone())
        .algorithm(Algorithm::FullDp);
    match engine.submit(req) {
        Err(SubmitError::ResourceExhausted {
            required,
            budget,
            limit,
        }) => {
            assert_eq!(limit, "memory-budget");
            assert!(required > budget, "{required} must exceed {budget}");
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }

    // The identical job without the directive fits and completes.
    let req = AlignRequest::new("fits", a, b, c).algorithm(Algorithm::FullDp);
    let handle = engine.submit(req).expect("admitted");
    assert!(matches!(handle.wait(), JobOutcome::Done(_)));

    let stats = engine.shutdown();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.resolved(), stats.submitted);
}

#[test]
fn deadline_expiring_mid_kernel_cancels_with_progress() {
    let engine = Engine::start(fault_config(2));
    // Large enough (~15.8M cells) that the kernel cannot finish in the
    // few milliseconds left after the injected delay.
    let [a, b, c] = family(250, 9);

    let req = AlignRequest::new("slow#fault-delay=40", a, b, c)
        .score_only(true)
        .deadline(Duration::from_millis(45));
    let handle = engine.submit(req).expect("admitted");
    match handle.wait() {
        JobOutcome::DeadlineExceeded { stage, progress } => {
            assert_eq!(stage, CancelStage::Kernel, "expired inside the kernel");
            let progress = progress.expect("kernel cancellation reports progress");
            if progress.cells_total > 0 {
                assert!(
                    progress.cells_done < progress.cells_total,
                    "partial progress: {} of {}",
                    progress.cells_done,
                    progress.cells_total
                );
            }
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    let stats = engine.shutdown();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.resolved(), stats.submitted);
}

/// Field value of `record` under `key`, rendered through Display.
fn field(record: &SpanRecord, key: &str) -> Option<String> {
    record.field(key).map(|v| v.to_string())
}

/// The root `job` span whose `tag` field equals `tag`.
fn root_of<'a>(records: &'a [SpanRecord], tag: &str) -> &'a SpanRecord {
    records
        .iter()
        .find(|r| r.name == "job" && field(r, "tag").as_deref() == Some(tag))
        .unwrap_or_else(|| panic!("no root span for tag {tag}"))
}

/// Children of `root`, i.e. records whose parent is `root.id`.
fn children_of<'a>(records: &'a [SpanRecord], root: &SpanRecord) -> Vec<&'a SpanRecord> {
    records
        .iter()
        .filter(|r| r.parent == Some(root.id))
        .collect()
}

#[test]
fn faulted_jobs_emit_complete_annotated_span_trees() {
    let sink = Arc::new(RingSink::with_capacity(256));
    let tracer = Tracer::new(sink.clone());
    let engine = Engine::start(ServiceConfig {
        tracer: Some(tracer.clone()),
        memory_budget: Some(1024 * 1024),
        ..fault_config(2)
    });
    let [a, b, c] = family(40, 7);

    // A job whose kernel panics: caught at the isolation boundary.
    let outcome = engine
        .submit(
            AlignRequest::new("boom#fault-panic", a.clone(), b.clone(), c.clone()).score_only(true),
        )
        .expect("admitted")
        .wait();
    assert!(matches!(outcome, JobOutcome::Failed(_)));

    // A job cancelled before any work: its deadline is already expired
    // when a worker picks it up.
    let outcome = engine
        .submit(
            AlignRequest::new("late", a.clone(), b.clone(), c.clone())
                .score_only(true)
                .deadline(Duration::ZERO),
        )
        .expect("admitted")
        .wait();
    assert!(matches!(
        outcome,
        JobOutcome::Cancelled { .. } | JobOutcome::DeadlineExceeded { .. }
    ));

    // An `Auto` job the governor degrades: the full-lattice resolution
    // (~16.7 MB) is over the 1 MiB budget, Hirschberg fits.
    let long = Seq::dna("ACGTACGTGA".repeat(16)).unwrap();
    let outcome = engine
        .submit(AlignRequest::new(
            "shrunk",
            long.clone(),
            long.clone(),
            long,
        ))
        .expect("admitted")
        .wait();
    let result = outcome.result().expect("degraded job completes");
    assert!(result.degraded_from.is_some());

    engine.shutdown();

    // No span leaked open — every start was balanced by a record, even
    // on the panicking path (the drop guard fires during unwind).
    assert_eq!(tracer.open_spans(), 0, "open spans leaked");

    let records = sink.snapshot();

    // Panicking job: full tree, kernel child carries the panic message,
    // root is annotated with the outcome.
    let root = root_of(&records, "boom#fault-panic");
    assert_eq!(field(root, "outcome").as_deref(), Some("failed"));
    assert!(field(root, "panic")
        .unwrap()
        .contains("injected kernel panic"));
    let kids = children_of(&records, root);
    let names: Vec<&str> = kids.iter().map(|r| r.name).collect();
    for want in ["queued", "cache_lookup", "kernel", "respond"] {
        assert!(names.contains(&want), "missing {want} in {names:?}");
    }
    let kernel = kids.iter().find(|r| r.name == "kernel").unwrap();
    assert!(field(kernel, "panic")
        .unwrap()
        .contains("injected kernel panic"));

    // Cancelled job: annotated with where cancellation was detected; the
    // kernel stage never ran.
    let root = root_of(&records, "late");
    let outcome = field(root, "outcome").unwrap();
    assert!(outcome == "cancelled" || outcome == "deadline", "{outcome}");
    assert!(
        field(root, "cancelled_at").is_some() || field(root, "deadline_at").is_some(),
        "cancellation stage annotated"
    );
    let kids = children_of(&records, root);
    assert!(
        !kids.iter().any(|r| r.name == "kernel"),
        "pre-kernel cancellation must not run the kernel"
    );

    // Degraded job: the root records what it was degraded from and
    // completes normally.
    let root = root_of(&records, "shrunk");
    assert_eq!(field(root, "outcome").as_deref(), Some("done"));
    assert!(field(root, "degraded_from").is_some());
    let kids = children_of(&records, root);
    assert!(kids.iter().any(|r| r.name == "kernel"));

    // Global tree invariants: every non-root span's parent exists, and
    // every child lies within its root's time window (start only — the
    // root's duration is recorded after the children close).
    for r in &records {
        if let Some(parent) = r.parent {
            let p = records
                .iter()
                .find(|c| c.id == parent)
                .unwrap_or_else(|| panic!("dangling parent {parent} for {}", r.name));
            assert!(
                p.start_us <= r.start_us,
                "{} starts before its parent",
                r.name
            );
        }
    }
}

#[test]
fn mixed_fault_stress_preserves_the_accounting_identity() {
    const SUBMITTERS: usize = 4;
    const JOBS_PER_THREAD: usize = 40;

    let engine = Arc::new(Engine::start(ServiceConfig {
        workers: 4,
        queue_capacity: 16,
        cache_capacity: 0,
        memory_budget: Some(256 * 1024 * 1024),
        ..ServiceConfig::default()
    }));
    let problems: Vec<[Seq; 3]> = (0..8)
        .map(|i| family(12 + 6 * i, 4000 + i as u64))
        .collect();
    let problems = Arc::new(problems);

    let completed = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let cancelled = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..SUBMITTERS)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let problems = Arc::clone(&problems);
            let completed = Arc::clone(&completed);
            let failed = Arc::clone(&failed);
            let cancelled = Arc::clone(&cancelled);
            let rejected = Arc::clone(&rejected);
            std::thread::spawn(move || {
                for j in 0..JOBS_PER_THREAD {
                    let [a, b, c] = problems[(t * 13 + j * 5) % problems.len()].clone();
                    // One fault class per job, in fixed rotation.
                    let mut req = if j % 5 == 0 {
                        AlignRequest::new(format!("{t}-{j}#fault-panic"), a, b, c)
                    } else if j % 7 == 0 {
                        AlignRequest::new(format!("{t}-{j}#fault-abort"), a, b, c)
                    } else if j % 13 == 0 {
                        AlignRequest::new(format!("{t}-{j}#fault-inflate=1000000"), a, b, c)
                            .algorithm(Algorithm::FullDp)
                    } else {
                        AlignRequest::new(format!("{t}-{j}"), a, b, c)
                    };
                    req = req.score_only(true);
                    if j % 11 == 0 {
                        req = req.deadline(Duration::ZERO);
                    }
                    // Blocking submit: the only rejections left are the
                    // governor's, so the tallies stay deterministic-ish.
                    match engine.submit_blocking(req) {
                        Ok(handle) => match handle.wait() {
                            JobOutcome::Done(_) => completed.fetch_add(1, Ordering::Relaxed),
                            JobOutcome::Failed(_) => failed.fetch_add(1, Ordering::Relaxed),
                            JobOutcome::Cancelled { .. } | JobOutcome::DeadlineExceeded { .. } => {
                                cancelled.fetch_add(1, Ordering::Relaxed)
                            }
                        },
                        Err(SubmitError::ResourceExhausted { .. }) => {
                            rejected.fetch_add(1, Ordering::Relaxed)
                        }
                        Err(e) => panic!("unexpected submit error: {e}"),
                    };
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let stats = engine.shutdown();
    let total = (SUBMITTERS * JOBS_PER_THREAD) as u64;
    assert_eq!(stats.submitted, total);
    assert_eq!(
        stats.submitted,
        stats.completed + stats.rejected + stats.cancelled + stats.failed,
        "accounting identity holds under mixed faults"
    );
    assert_eq!(stats.completed, completed.load(Ordering::Relaxed));
    assert_eq!(stats.failed, failed.load(Ordering::Relaxed));
    assert_eq!(stats.cancelled, cancelled.load(Ordering::Relaxed));
    assert_eq!(stats.rejected, rejected.load(Ordering::Relaxed));
    assert!(stats.panics > 0, "panic directives fired");
    assert!(stats.respawns > 0, "abort directives killed workers");
    assert_eq!(stats.queue_depth, 0, "queue drained at quiescence");
    assert_eq!(engine.memory_in_flight(), 0, "all reservations released");
}
