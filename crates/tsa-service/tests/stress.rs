//! Concurrency stress: hundreds of mixed-size jobs submitted from many
//! threads must each resolve exactly once, cached results must be
//! score-identical to fresh computation, and the queue must drain.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tsa_seq::{family::FamilyConfig, Seq};
use tsa_service::{AlignRequest, Engine, JobOutcome, ServiceConfig};

fn family(len: usize, seed: u64) -> [Seq; 3] {
    let fam = FamilyConfig::new(len, 0.1, 0.05)
        .try_generate(seed)
        .expect("generate family");
    let mut it = fam.members.into_iter();
    [it.next().unwrap(), it.next().unwrap(), it.next().unwrap()]
}

#[test]
fn mixed_load_from_many_threads_resolves_exactly_once() {
    const SUBMITTERS: usize = 4;
    const JOBS_PER_THREAD: usize = 60;

    let engine = Arc::new(Engine::start(ServiceConfig {
        workers: 4,
        queue_capacity: 16,
        cache_capacity: 256,
        ..ServiceConfig::default()
    }));

    // A small pool of distinct problems, so many submissions repeat work
    // and the cache gets real traffic. Sizes are mixed (tiny to ~90).
    let problems: Vec<[Seq; 3]> = (0..12)
        .map(|i| family(10 + 7 * i, 1000 + i as u64))
        .collect();
    let problems = Arc::new(problems);

    let done = Arc::new(AtomicUsize::new(0));
    let cancelled = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..SUBMITTERS)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let problems = Arc::clone(&problems);
            let done = Arc::clone(&done);
            let cancelled = Arc::clone(&cancelled);
            std::thread::spawn(move || {
                let mut scores = Vec::new();
                for j in 0..JOBS_PER_THREAD {
                    let pick = (t * 31 + j * 7) % problems.len();
                    let [a, b, c] = problems[pick].clone();
                    let mut req =
                        AlignRequest::new(format!("{t}-{j}"), a, b, c).score_only(j % 3 == 0);
                    // A sprinkling of jobs that must miss their deadline
                    // while queued.
                    if j % 17 == 0 {
                        req = req.deadline(Duration::ZERO);
                    }
                    // The queue is small relative to the load; throttle.
                    let handle = engine.submit_blocking(req).expect("engine running");
                    match handle.wait() {
                        JobOutcome::Done(r) => {
                            done.fetch_add(1, Ordering::Relaxed);
                            scores.push((pick, r.score));
                        }
                        JobOutcome::DeadlineExceeded { .. } | JobOutcome::Cancelled { .. } => {
                            cancelled.fetch_add(1, Ordering::Relaxed);
                        }
                        JobOutcome::Failed(e) => panic!("unexpected failure: {e}"),
                    }
                }
                scores
            })
        })
        .collect();

    let mut observed: Vec<(usize, i32)> = Vec::new();
    for h in handles {
        observed.extend(h.join().unwrap());
    }

    let total = SUBMITTERS * JOBS_PER_THREAD;
    let stats = engine.shutdown();

    // Exactly-once accounting: every submission resolved, nothing lost,
    // nothing double-counted, queue fully drained.
    assert_eq!(stats.submitted, total as u64);
    assert_eq!(stats.resolved(), stats.submitted);
    assert_eq!(
        stats.completed,
        done.load(Ordering::Relaxed) as u64,
        "engine count matches what waiters observed"
    );
    assert_eq!(stats.cancelled, cancelled.load(Ordering::Relaxed) as u64);
    assert_eq!(stats.rejected, 0, "blocking submission never rejects");
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.queue_depth, 0, "queue drains to zero at quiescence");
    assert!(stats.cancelled > 0, "the zero-deadline jobs must show up");
    assert!(stats.cache_hits > 0, "repeated problems must hit the cache");

    // Cached scores are identical to a fresh single-threaded computation.
    let aligner = tsa_core::Aligner::new();
    for pick in 0..problems.len() {
        let Some(&(_, score)) = observed.iter().find(|(p, _)| *p == pick) else {
            continue;
        };
        let [a, b, c] = problems[pick].clone();
        let fresh = aligner.score3(&a, &b, &c).unwrap();
        assert_eq!(score, fresh, "problem {pick}: service score == fresh score");
        assert!(
            observed
                .iter()
                .filter(|(p, _)| *p == pick)
                .all(|&(_, s)| s == score),
            "problem {pick}: every observation agrees"
        );
    }
}

#[test]
fn nonblocking_overload_storm_keeps_accounting_consistent() {
    // Hammer try-submit far past capacity from several threads; rejected +
    // completed must exactly cover the attempts, and depth must return to 0.
    let engine = Arc::new(Engine::start(ServiceConfig {
        workers: 2,
        queue_capacity: 4,
        cache_capacity: 0, // no cache: every accepted job runs the kernel
        ..ServiceConfig::default()
    }));
    let [a, b, c] = family(60, 7);

    let handles: Vec<_> = (0..4)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let (a, b, c) = (a.clone(), b.clone(), c.clone());
            std::thread::spawn(move || {
                let mut accepted = 0u64;
                let mut rejected = 0u64;
                let mut waiters = Vec::new();
                for j in 0..50 {
                    let req = AlignRequest::new(
                        format!("storm-{t}-{j}"),
                        a.clone(),
                        b.clone(),
                        c.clone(),
                    )
                    .score_only(true);
                    match engine.submit(req) {
                        Ok(h) => {
                            accepted += 1;
                            waiters.push(h);
                        }
                        Err(tsa_service::SubmitError::Overloaded { capacity, .. }) => {
                            assert_eq!(capacity, 4);
                            rejected += 1;
                        }
                        Err(e) => panic!("unexpected submit error: {e}"),
                    }
                }
                for h in waiters {
                    assert!(h.wait().result().is_some());
                }
                (accepted, rejected)
            })
        })
        .collect();

    let (mut accepted, mut rejected) = (0, 0);
    for h in handles {
        let (a_n, r_n) = h.join().unwrap();
        accepted += a_n;
        rejected += r_n;
    }
    let stats = engine.shutdown();
    assert_eq!(stats.submitted, accepted + rejected);
    assert_eq!(stats.completed, accepted);
    assert_eq!(stats.rejected, rejected);
    assert!(rejected > 0, "a 4-deep queue must reject under this storm");
    assert_eq!(stats.queue_depth, 0);
}
