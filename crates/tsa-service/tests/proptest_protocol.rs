//! Property tests for the NDJSON protocol parser — the surface every
//! byte from the network crosses first. The contract: `parse_request`
//! never panics on any input, every rejection is a structured
//! [`ProtocolError`] that renders to one valid JSON line, and bad
//! *values* inside well-formed lines come back as positioned
//! `invalid_argument` errors (not blanket `bad_request`).

use proptest::prelude::*;
use tsa_service::json::Value;
use tsa_service::protocol::{parse_request, render_protocol_error, Request};

/// Strings that lean on the parser's sore spots: JSON-ish fragments,
/// quotes, braces, escapes, and control characters — not just uniform
/// random noise.
fn hostile_line() -> impl Strategy<Value = String> {
    prop_oneof![
        // Arbitrary unicode, the honest fuzz case.
        ".*",
        // Arbitrary bytes squeezed through the same lossy conversion a
        // non-UTF-8 network line undergoes before reaching the parser.
        prop::collection::vec(any::<u8>(), 0..256)
            .prop_map(|b| String::from_utf8_lossy(&b).into_owned()),
        // JSON-shaped prefixes with garbage tails.
        r#"\{"op":"submit".*"#,
        // Deep quote/brace/escape soup.
        prop::collection::vec(
            prop::sample::select(vec![
                "{", "}", "\"", "\\", ":", ",", "op", "submit", "[", "]"
            ]),
            0..64
        )
        .prop_map(|parts| parts.concat()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The parser never panics, and every rejection renders to exactly
    /// one line of well-formed JSON carrying a known error code.
    #[test]
    fn arbitrary_lines_never_panic_and_errors_render_clean(line in hostile_line()) {
        match parse_request(&line) {
            Ok(_) => {}
            Err(err) => {
                prop_assert!(
                    err.code == "bad_request" || err.code == "invalid_argument",
                    "unknown error code {:?}", err.code
                );
                let rendered = render_protocol_error(&err);
                prop_assert!(!rendered.contains('\n'), "one response line per request");
                let v = Value::parse(&rendered)
                    .expect("error responses must themselves be valid JSON");
                prop_assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
                prop_assert_eq!(v.get("error").and_then(Value::as_str), Some(err.code));
                if let Some(p) = err.position {
                    prop_assert_eq!(v.get("position").and_then(Value::as_u64), Some(p as u64));
                }
            }
        }
    }

    /// A well-formed submit whose sequence has one out-of-alphabet
    /// residue is rejected `invalid_argument` with the exact byte
    /// position of the offender — under every declared alphabet.
    #[test]
    fn bad_residues_are_positioned_invalid_arguments(
        prefix in prop::collection::vec(prop::sample::select(vec!['A', 'C', 'G', 'T']), 0..24),
        bad in prop::sample::select(vec!['1', '!', '~', 'J', 'O']),
        field in prop::sample::select(vec!["a", "b", "c"]),
    ) {
        let mut seq: String = prefix.iter().collect();
        let position = seq.len();
        seq.push(bad);
        let mk = |f: &str| if f == field { seq.clone() } else { "ACGT".to_string() };
        let line = format!(
            r#"{{"op":"submit","id":"p1","alphabet":"dna","a":"{}","b":"{}","c":"{}"}}"#,
            mk("a"), mk("b"), mk("c"),
        );
        let err = parse_request(&line).expect_err("out-of-alphabet residue must be rejected");
        prop_assert_eq!(err.code, "invalid_argument");
        prop_assert_eq!(err.position, Some(position));
        prop_assert_eq!(err.id.as_deref(), Some("p1"));
    }

    /// Valid submits round-trip whatever id they carried; the parser's
    /// acceptance is stable (same line parses the same way twice).
    #[test]
    fn valid_submits_parse_deterministically(
        id in "[a-z0-9-]{0,16}",
        a in "[ACGT]{1,32}",
        b in "[ACGT]{1,32}",
        c in "[ACGT]{1,32}",
    ) {
        let line = format!(r#"{{"op":"submit","id":"{id}","a":"{a}","b":"{b}","c":"{c}"}}"#);
        let first = match parse_request(&line) {
            Ok(Request::Submit(req)) => req,
            other => panic!("expected a submit, got {other:?}"),
        };
        let again = match parse_request(&line) {
            Ok(Request::Submit(req)) => req,
            other => panic!("expected a submit, got {other:?}"),
        };
        prop_assert_eq!(&first.tag, &id);
        prop_assert_eq!(&first.tag, &again.tag);
        prop_assert_eq!(first.seqs[0].residues(), again.seqs[0].residues());
    }
}
