//! Error and outcome types of the service engine.

use std::fmt;
use std::time::Duration;
use tsa_core::{Algorithm, CancelProgress};

/// Why a submission was refused at admission time. The job never entered
/// the queue; nothing was computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission refused the job as overload shedding — explicit
    /// backpressure. Re-submit after `retry_after_ms`; the engine never
    /// buffers beyond its configured limits. `scope` says which limit
    /// tripped: the shared bounded queue (`"queue"`), the client's token
    /// bucket (`"client-rate"`), or the client's in-flight quota
    /// (`"in-flight"`).
    Overloaded {
        /// The configured limit that was exhausted (queue capacity,
        /// bucket burst size, or in-flight quota).
        capacity: usize,
        /// Hint: earliest time, in milliseconds, at which a retry has a
        /// chance of being admitted (0 when unknowable).
        retry_after_ms: u64,
        /// Which limit tripped: `"queue"`, `"client-rate"`, or
        /// `"in-flight"`.
        scope: &'static str,
    },
    /// The resource governor refused the job: its estimated footprint
    /// exceeds a configured limit (and, for `Algorithm::Auto`, no
    /// lower-memory variant fits either). Nothing was computed.
    ResourceExhausted {
        /// Estimated requirement for the cheapest admissible variant.
        required: u64,
        /// The configured limit that was exceeded.
        budget: u64,
        /// Which limit tripped: `"memory-budget"` or `"max-cells"`.
        limit: &'static str,
    },
    /// The engine has been shut down; no further jobs are accepted.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Overloaded {
                capacity,
                retry_after_ms,
                scope,
            } => {
                write!(f, "service overloaded: {scope} at capacity {capacity}")?;
                if *retry_after_ms > 0 {
                    write!(f, " (retry after {retry_after_ms} ms)")?;
                }
                Ok(())
            }
            SubmitError::ResourceExhausted {
                required,
                budget,
                limit,
            } => {
                write!(
                    f,
                    "resource exhausted: job needs {required} but {limit} is {budget}"
                )
            }
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Where a job's deadline was discovered to have expired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelStage {
    /// Expired while waiting in the queue — no work was done.
    Queued,
    /// Expired *inside* the kernel: the cooperative cancellation token
    /// stopped the DP loop between anti-diagonal planes (or slabs). Only
    /// partial work was done and nothing was cached.
    Kernel,
    /// Expired after the alignment kernel finished. The result is still
    /// written to the cache (the work is done; future identical requests
    /// benefit), but this job reports the deadline miss.
    Computed,
}

/// The completed result of an accepted job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Optimal (or heuristic, for non-exact algorithms) alignment score.
    pub score: i32,
    /// Aligned rows (`-` for gaps), absent for score-only jobs.
    pub rows: Option<[String; 3]>,
    /// The algorithm that actually ran, after `Auto` resolution.
    pub algorithm: Algorithm,
    /// Set when the admission governor downgraded an `Auto` request to a
    /// lower-memory variant: the algorithm it would have picked unbudgeted.
    pub degraded_from: Option<Algorithm>,
    /// Whether this result came from the result cache.
    pub cached: bool,
    /// Whether the cache entry it came from was recovered from the crash
    /// journal on startup (as opposed to computed by this process).
    pub recovered: bool,
    /// Time the job spent queued before a worker picked it up.
    pub wait: Duration,
    /// Time the worker spent serving it (cache probe + kernel).
    pub service: Duration,
}

/// Terminal state of an accepted job. Every accepted job resolves to
/// exactly one of these.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// The alignment ran (or was served from cache).
    Done(JobResult),
    /// The per-job deadline expired before a result could be delivered.
    DeadlineExceeded {
        /// Whether the deadline fired while queued, mid-kernel, or after
        /// the kernel finished.
        stage: CancelStage,
        /// Cell-update progress at the stop point, when the kernel had
        /// started ([`CancelStage::Kernel`] only).
        progress: Option<CancelProgress>,
    },
    /// The job was cancelled through its handle.
    Cancelled {
        /// Cell-update progress at the stop point, when the kernel had
        /// started; `None` when cancelled while still queued.
        progress: Option<CancelProgress>,
    },
    /// The aligner rejected the configuration (e.g. lattice over budget
    /// for a pinned full-lattice algorithm), the kernel panicked, or the
    /// worker serving the job died.
    Failed(String),
}

impl JobOutcome {
    /// The result, if the job completed.
    pub fn result(&self) -> Option<&JobResult> {
        match self {
            JobOutcome::Done(r) => Some(r),
            _ => None,
        }
    }

    /// Short machine-readable label used by the wire protocol and stats.
    pub fn label(&self) -> &'static str {
        match self {
            JobOutcome::Done(_) => "done",
            JobOutcome::DeadlineExceeded { .. } => "deadline",
            JobOutcome::Cancelled { .. } => "cancelled",
            JobOutcome::Failed(_) => "failed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_errors_render() {
        let overloaded = SubmitError::Overloaded {
            capacity: 8,
            retry_after_ms: 40,
            scope: "queue",
        };
        assert!(overloaded.to_string().contains('8'));
        assert!(overloaded.to_string().contains("queue"));
        assert!(overloaded.to_string().contains("40 ms"));
        let silent = SubmitError::Overloaded {
            capacity: 2,
            retry_after_ms: 0,
            scope: "in-flight",
        };
        assert!(!silent.to_string().contains("retry"));
        assert!(SubmitError::ShuttingDown.to_string().contains("shutting"));
        let e = SubmitError::ResourceExhausted {
            required: 100,
            budget: 64,
            limit: "memory-budget",
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("memory-budget"));
    }

    #[test]
    fn outcome_labels() {
        assert_eq!(
            JobOutcome::Cancelled { progress: None }.label(),
            "cancelled"
        );
        assert_eq!(
            JobOutcome::DeadlineExceeded {
                stage: CancelStage::Queued,
                progress: None,
            }
            .label(),
            "deadline"
        );
        assert_eq!(
            JobOutcome::DeadlineExceeded {
                stage: CancelStage::Kernel,
                progress: Some(CancelProgress {
                    cells_done: 3,
                    cells_total: 10,
                }),
            }
            .label(),
            "deadline"
        );
        assert_eq!(JobOutcome::Failed("x".into()).label(), "failed");
        assert!(JobOutcome::Cancelled { progress: None }.result().is_none());
    }
}
