//! Cooperative cancellation: a shared flag plus an optional deadline.
//!
//! Cancellation is *cooperative*: nothing preempts a running kernel.
//! Workers poll the token at the defined checkpoints — on dequeue (before
//! any work) and after the kernel returns (before delivering the result).
//! A deadline that fires mid-kernel therefore wastes at most one kernel
//! run, and that run's result is still cached.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared cancellation state for one job. Clones observe the same flag.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that expires at `deadline` (if given) or when
    /// [`CancelToken::cancel`] is called.
    pub fn new(deadline: Option<Instant>) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline,
            }),
        }
    }

    /// A token with a deadline `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        CancelToken::new(Some(Instant::now() + timeout))
    }

    /// Request cancellation. Idempotent.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// True once the deadline (if any) has passed.
    pub fn deadline_expired(&self) -> bool {
        self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// True if the job should not (or should no longer) run: explicitly
    /// cancelled or past its deadline. This is the checkpoint predicate.
    pub fn should_stop(&self) -> bool {
        self.is_cancelled() || self.deadline_expired()
    }

    /// Time left before the deadline; `None` when no deadline is set.
    /// Zero once expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_token_never_stops() {
        let t = CancelToken::new(None);
        assert!(!t.should_stop());
        assert!(t.remaining().is_none());
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::new(None);
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
        assert!(t.should_stop());
        assert!(!t.deadline_expired());
    }

    #[test]
    fn zero_timeout_is_immediately_expired() {
        let t = CancelToken::with_timeout(Duration::ZERO);
        assert!(t.deadline_expired());
        assert!(t.should_stop());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn distant_deadline_not_expired() {
        let t = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!t.should_stop());
        assert!(t.remaining().unwrap() > Duration::from_secs(3000));
    }
}
