//! Weighted fair scheduling: a bounded multi-lane queue with deficit
//! round-robin service across per-client lanes.
//!
//! The engine's original admission queue was a single FIFO — one heavy
//! tenant could fill it and starve everyone behind it. [`FairQueue`]
//! keeps the same bounded-capacity, blocking/non-blocking push and
//! blocking pop contract, but partitions buffered jobs into *lanes*
//! keyed by the request's optional `client` field and serves lanes with
//! deficit round-robin (DRR):
//!
//! * **FIFO within a lane** — each lane is a `VecDeque`; a client's own
//!   jobs never reorder.
//! * **No starvation across lanes** — every nonempty lane is visited
//!   once per rotation and served up to `weight` items on its turn, so
//!   a lane waits at most the sum of the other active lanes' weights
//!   before its next pop.
//! * **Work conservation** — `pop` returns an item whenever any lane is
//!   nonempty; an idle lane cedes its turn immediately.
//!
//! With a single lane (every request leaves `client` empty) DRR
//! degenerates to exactly the old FIFO: pops drain the one lane in
//! insertion order, so existing single-tenant behavior is unchanged.
//!
//! The capacity bound is global, not per-lane — per-client isolation at
//! admission time is the token-bucket/quota layer's job (see
//! `engine::ClientGovernor`); this queue only guarantees that whatever
//! was admitted is *served* fairly.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::queue::PushError;

/// One per-client lane: its buffered items plus DRR service state.
#[derive(Debug)]
struct Lane<T> {
    key: String,
    items: VecDeque<T>,
    /// Items this lane may still pop in the current rotation; refreshed
    /// to `weight` when the lane reaches the head of the active list.
    deficit: u64,
    /// Items granted per rotation (quantum). Defaults to 1: plain
    /// round-robin across clients.
    weight: u64,
}

#[derive(Debug)]
struct State<T> {
    /// All lanes ever seen, in first-seen order (stable for stats).
    lanes: Vec<Lane<T>>,
    /// Indices into `lanes` of nonempty lanes, in service order.
    active: VecDeque<usize>,
    /// True once every producer handle has been dropped.
    producers: usize,
    /// True once every receiver handle has been dropped.
    receivers: usize,
}

impl<T> std::fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("depth", &self.depth.load(Ordering::Relaxed))
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Signaled when an item arrives or the queue closes.
    items: Condvar,
    /// Signaled when a pop frees capacity.
    space: Condvar,
    depth: AtomicUsize,
    capacity: usize,
}

impl<T> Shared<T> {
    /// Append to `key`'s lane (creating it on first sight). Caller has
    /// already reserved capacity.
    fn enqueue(&self, state: &mut State<T>, key: &str, item: T) {
        let idx = match state.lanes.iter().position(|l| l.key == key) {
            Some(i) => i,
            None => {
                state.lanes.push(Lane {
                    key: key.to_string(),
                    items: VecDeque::new(),
                    deficit: 0,
                    weight: 1,
                });
                state.lanes.len() - 1
            }
        };
        let was_empty = state.lanes[idx].items.is_empty();
        state.lanes[idx].items.push_back(item);
        if was_empty {
            state.active.push_back(idx);
        }
        self.items.notify_one();
    }

    /// DRR pop: serve the lane at the head of the active list, rotating
    /// it to the back once its deficit for this visit is spent.
    fn dequeue(&self, state: &mut State<T>) -> Option<T> {
        let &idx = state.active.front()?;
        let lane = &mut state.lanes[idx];
        if lane.deficit == 0 {
            lane.deficit = lane.weight.max(1);
        }
        let item = lane.items.pop_front()?;
        lane.deficit -= 1;
        if lane.items.is_empty() {
            // An emptied lane leaves the rotation and forfeits any
            // remaining deficit — no credit banking across idle spells.
            lane.deficit = 0;
            state.active.pop_front();
        } else if lane.deficit == 0 {
            state.active.pop_front();
            state.active.push_back(idx);
        }
        Some(item)
    }
}

/// Producer handle of a bounded DRR queue (see module docs). Cloning
/// registers another producer; the queue closes for consumers when the
/// last producer drops.
#[derive(Debug)]
pub struct FairQueue<T> {
    shared: Arc<Shared<T>>,
}

/// Consumer handle of a bounded DRR queue; cloned into each worker.
#[derive(Debug)]
pub struct FairReceiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create a bounded fair queue (capacity is clamped to at least 1).
pub fn fair_queue<T>(capacity: usize) -> (FairQueue<T>, FairReceiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            lanes: Vec::new(),
            active: VecDeque::new(),
            producers: 1,
            receivers: 1,
        }),
        items: Condvar::new(),
        space: Condvar::new(),
        depth: AtomicUsize::new(0),
        capacity: capacity.max(1),
    });
    (
        FairQueue {
            shared: Arc::clone(&shared),
        },
        FairReceiver { shared },
    )
}

impl<T> Clone for FairQueue<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().producers += 1;
        FairQueue {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for FairQueue<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock();
        state.producers -= 1;
        if state.producers == 0 {
            // Wake poppers so they can observe the close.
            self.shared.items.notify_all();
        }
    }
}

impl<T> Clone for FairReceiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().receivers += 1;
        FairReceiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for FairReceiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock();
        state.receivers -= 1;
        if state.receivers == 0 {
            self.shared.space.notify_all();
        }
    }
}

impl<T> FairQueue<T> {
    /// Enqueue without blocking: refused with [`PushError::Full`] when
    /// the global bound is reached, [`PushError::Closed`] when every
    /// receiver is gone.
    pub fn try_push(&self, key: &str, item: T) -> Result<(), PushError<T>> {
        let mut state = self.shared.state.lock();
        if state.receivers == 0 {
            return Err(PushError::Closed(item));
        }
        if self.shared.depth.load(Ordering::SeqCst) >= self.shared.capacity {
            return Err(PushError::Full(item));
        }
        self.shared.depth.fetch_add(1, Ordering::SeqCst);
        self.shared.enqueue(&mut state, key, item);
        Ok(())
    }

    /// Enqueue, blocking while the queue is at capacity. Fails only when
    /// every receiver is gone.
    pub fn push_blocking(&self, key: &str, item: T) -> Result<(), PushError<T>> {
        let mut state = self.shared.state.lock();
        loop {
            if state.receivers == 0 {
                return Err(PushError::Closed(item));
            }
            if self.shared.depth.load(Ordering::SeqCst) < self.shared.capacity {
                self.shared.depth.fetch_add(1, Ordering::SeqCst);
                self.shared.enqueue(&mut state, key, item);
                return Ok(());
            }
            self.shared.space.wait(&mut state);
        }
    }

    /// Set the DRR weight (items served per rotation) of `key`'s lane,
    /// creating the lane if it does not exist yet. Weight 0 is clamped
    /// to 1.
    pub fn set_weight(&self, key: &str, weight: u64) {
        let mut state = self.shared.state.lock();
        match state.lanes.iter_mut().find(|l| l.key == key) {
            Some(lane) => lane.weight = weight.max(1),
            None => state.lanes.push(Lane {
                key: key.to_string(),
                items: VecDeque::new(),
                deficit: 0,
                weight: weight.max(1),
            }),
        }
    }

    /// Number of buffered items across all lanes.
    pub fn depth(&self) -> usize {
        self.shared.depth.load(Ordering::SeqCst)
    }

    /// The configured global bound.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

impl<T> FairReceiver<T> {
    /// Blocking DRR pop. Returns `None` once every producer has dropped
    /// and all lanes are drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.shared.state.lock();
        loop {
            if let Some(item) = self.shared.dequeue(&mut state) {
                self.shared.depth.fetch_sub(1, Ordering::SeqCst);
                self.shared.space.notify_one();
                return Some(item);
            }
            if state.producers == 0 {
                return None;
            }
            self.shared.items.wait(&mut state);
        }
    }

    /// Number of buffered items across all lanes.
    pub fn depth(&self) -> usize {
        self.shared.depth.load(Ordering::SeqCst)
    }

    /// Per-lane buffered-item counts, in first-seen lane order. Lanes
    /// that have gone idle stay listed (depth 0) so stats keep naming
    /// every client seen.
    pub fn lane_depths(&self) -> Vec<(String, usize)> {
        let state = self.shared.state.lock();
        state
            .lanes
            .iter()
            .map(|l| (l.key.clone(), l.items.len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_lane_is_fifo() {
        let (q, rx) = fair_queue::<u32>(8);
        for i in 0..5 {
            q.try_push("", i).unwrap();
        }
        let got: Vec<u32> = (0..5).map(|_| rx.pop().unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overflow_is_reported_with_the_item() {
        let (q, _rx) = fair_queue::<u32>(2);
        q.try_push("a", 1).unwrap();
        q.try_push("b", 2).unwrap();
        match q.try_push("c", 3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn closed_queue_rejects_pushes() {
        let (q, rx) = fair_queue::<u32>(2);
        drop(rx);
        match q.try_push("", 9) {
            Err(PushError::Closed(9)) => {}
            other => panic!("expected Closed(9), got {other:?}"),
        }
        match q.push_blocking("", 9) {
            Err(PushError::Closed(9)) => {}
            other => panic!("expected Closed(9), got {other:?}"),
        }
    }

    #[test]
    fn pop_returns_none_after_producers_drop() {
        let (q, rx) = fair_queue::<u32>(4);
        q.try_push("x", 7).unwrap();
        drop(q);
        assert_eq!(rx.pop(), Some(7));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn round_robin_interleaves_two_lanes() {
        let (q, rx) = fair_queue::<(char, u32)>(16);
        for i in 0..3 {
            q.try_push("a", ('a', i)).unwrap();
        }
        for i in 0..3 {
            q.try_push("b", ('b', i)).unwrap();
        }
        let got: Vec<(char, u32)> = (0..6).map(|_| rx.pop().unwrap()).collect();
        // Lane a was active first; unit weights alternate a, b, a, b…
        assert_eq!(
            got,
            vec![('a', 0), ('b', 0), ('a', 1), ('b', 1), ('a', 2), ('b', 2)]
        );
    }

    #[test]
    fn weights_scale_service_share() {
        let (q, rx) = fair_queue::<(char, u32)>(32);
        q.set_weight("big", 3);
        for i in 0..6 {
            q.try_push("big", ('B', i)).unwrap();
        }
        for i in 0..2 {
            q.try_push("small", ('s', i)).unwrap();
        }
        let got: Vec<char> = (0..8).map(|_| rx.pop().unwrap().0).collect();
        assert_eq!(got, vec!['B', 'B', 'B', 's', 'B', 'B', 'B', 's']);
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let (q, rx) = fair_queue::<u32>(1);
        q.try_push("", 1).unwrap();
        let q2 = q.clone();
        let pusher = std::thread::spawn(move || q2.push_blocking("", 2));
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(rx.pop(), Some(1));
        pusher.join().unwrap().unwrap();
        assert_eq!(rx.pop(), Some(2));
    }

    #[test]
    fn lane_depths_track_buffered_items() {
        let (q, rx) = fair_queue::<u32>(8);
        q.try_push("", 0).unwrap();
        q.try_push("tenant", 1).unwrap();
        q.try_push("tenant", 2).unwrap();
        let depths = rx.lane_depths();
        assert_eq!(depths, vec![(String::new(), 1), ("tenant".to_string(), 2)]);
        while rx.depth() > 0 {
            rx.pop();
        }
        assert!(rx.lane_depths().iter().all(|(_, d)| *d == 0));
    }

    #[test]
    fn depth_settles_to_zero_under_mpmc_load() {
        let (q, rx) = fair_queue::<usize>(8);
        let mut producers = Vec::new();
        for p in 0..4 {
            let q = q.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..50 {
                    q.push_blocking(&format!("c{p}"), p * 1000 + i).unwrap();
                }
            }));
        }
        drop(q);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(std::thread::spawn(move || {
                let mut n = 0usize;
                while rx.pop().is_some() {
                    n += 1;
                }
                n
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 200);
        assert_eq!(rx.depth(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A scripted fill: up to 4 lanes with arbitrary item counts and
    /// weights, interleaved pushes, then a full single-threaded drain.
    fn drain_order(pushes: &[(u8, u32)], weights: &[(u8, u64)], capacity: usize) -> Vec<(u8, u32)> {
        let (q, rx) = fair_queue::<(u8, u32)>(capacity.max(pushes.len()));
        for &(lane, w) in weights {
            q.set_weight(&format!("lane{lane}"), w);
        }
        for &(lane, seq) in pushes {
            q.try_push(&format!("lane{lane}"), (lane, seq)).unwrap();
        }
        drop(q);
        let mut out = Vec::new();
        while let Some(item) = rx.pop() {
            out.push(item);
        }
        out
    }

    proptest! {
        /// Work conservation: every pushed item is popped, exactly once.
        #[test]
        fn work_conserving(
            pushes in prop::collection::vec((0u8..4, 0u32..1000), 0..64)
        ) {
            let mut tagged: Vec<(u8, u32)> = Vec::new();
            let mut counters = [0u32; 4];
            for &(lane, _) in &pushes {
                tagged.push((lane, counters[lane as usize]));
                counters[lane as usize] += 1;
            }
            let mut got = drain_order(&tagged, &[], 64);
            let mut want = tagged.clone();
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }

        /// FIFO within a lane: for every lane, sequence numbers appear
        /// in increasing order in the drain.
        #[test]
        fn fifo_within_each_lane(
            pushes in prop::collection::vec(0u8..4, 0..64),
            weights in prop::collection::vec((0u8..4, 1u64..5), 0..4)
        ) {
            let mut tagged: Vec<(u8, u32)> = Vec::new();
            let mut counters = [0u32; 4];
            for &lane in &pushes {
                tagged.push((lane, counters[lane as usize]));
                counters[lane as usize] += 1;
            }
            let got = drain_order(&tagged, &weights, 64);
            for lane in 0u8..4 {
                let seqs: Vec<u32> = got
                    .iter()
                    .filter(|(l, _)| *l == lane)
                    .map(|&(_, s)| s)
                    .collect();
                prop_assert!(
                    seqs.windows(2).all(|w| w[0] < w[1]),
                    "lane {} reordered: {:?}", lane, seqs
                );
            }
        }

        /// No starvation: a lane that stays nonempty is served within
        /// one full rotation — at most `sum(weights)` consecutive pops
        /// go elsewhere. Checked online against the queue's own lane
        /// depths, so the bound holds at every pop, not just on average.
        #[test]
        fn no_lane_starves(
            pushes in prop::collection::vec(0u8..4, 16..96),
            weights in prop::collection::vec(1u64..4, 4)
        ) {
            let (q, rx) = fair_queue::<(u8, u32)>(128);
            for (i, &w) in weights.iter().enumerate() {
                q.set_weight(&format!("lane{i}"), w);
            }
            let mut counters = [0u32; 4];
            for &lane in &pushes {
                q.try_push(&format!("lane{lane}"), (lane, counters[lane as usize]))
                    .unwrap();
                counters[lane as usize] += 1;
            }
            drop(q);
            let rotation: usize = weights.iter().sum::<u64>() as usize;
            // Pops since each lane was last served while it stayed
            // nonempty the whole time.
            let mut since = [0usize; 4];
            loop {
                let depths = rx.lane_depths();
                let nonempty: Vec<bool> = (0..4)
                    .map(|i| {
                        depths
                            .iter()
                            .any(|(k, d)| k == &format!("lane{i}") && *d > 0)
                    })
                    .collect();
                let Some((served, _)) = rx.pop() else { break };
                for lane in 0..4usize {
                    if lane == served as usize {
                        since[lane] = 0;
                    } else if nonempty[lane] {
                        since[lane] += 1;
                        prop_assert!(
                            since[lane] <= rotation,
                            "lane {} waited {} pops (rotation {})",
                            lane, since[lane], rotation
                        );
                    } else {
                        since[lane] = 0; // empty lanes cannot starve
                    }
                }
            }
        }
    }
}
