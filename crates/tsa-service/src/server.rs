//! Protocol frontends: an NDJSON session loop (stdin/stdout or one TCP
//! connection) and the batch driver.

use crate::engine::{AlignRequest, Engine, JobHandle};
use crate::protocol::{self, ProtocolError, Request};
use crate::stats::StatsSnapshot;
use parking_lot::Mutex;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

/// Per-session transport limits for the NDJSON frontends.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Close a TCP connection that sends no bytes for this long. `None`
    /// disables the timeout. Only applies to TCP sessions; stdio and
    /// in-memory readers are never timed out.
    pub idle_timeout: Option<Duration>,
    /// Longest accepted request line, in bytes (newline excluded). An
    /// oversized line is consumed and answered with a positioned
    /// `invalid_argument` error; the session keeps running.
    pub max_line_bytes: usize,
    /// This server's shard identity when it runs as a cluster worker;
    /// reported by the `shard_info` and `hello` ops.
    pub shard: Option<u64>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            idle_timeout: Some(Duration::from_secs(300)),
            max_line_bytes: 1 << 20,
            shard: None,
        }
    }
}

/// The answering engine's identity for `server` response sections.
fn server_info(engine: &Engine) -> protocol::ServerInfo {
    protocol::ServerInfo::current(engine.uptime())
}

/// Answer a `trace` op from the engine's flight recorder: one tree by
/// id, the recent notable trees, or a structured "not enabled" error.
fn trace_response(engine: &Engine, trace_id: Option<u64>, recent: usize) -> String {
    match engine.recorder() {
        None => protocol::render_trace_unavailable(),
        Some(recorder) => {
            let trees = match trace_id {
                Some(id) => recorder.get(id).into_iter().collect(),
                None => recorder.recent(recent),
            };
            protocol::render_trace_response(&trees)
        }
    }
}

fn write_line<W: Write>(writer: &Mutex<W>, line: &str) -> io::Result<()> {
    let mut w = writer.lock();
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

enum LineRead {
    /// Clean end of stream (nothing buffered).
    Eof,
    /// A complete line is in the buffer (trailing newline stripped).
    Line,
    /// The line exceeded the bound; it was consumed through its newline.
    TooLong,
}

/// Read one newline-terminated line into `buf`, refusing to buffer more
/// than `max` bytes. Works through `fill_buf`/`consume` so an oversized
/// line is discarded in chunks rather than accumulated — a client cannot
/// balloon server memory by never sending a newline.
fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    max: usize,
) -> io::Result<LineRead> {
    buf.clear();
    let mut discarding = false;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            // EOF mid-line still yields the partial line, matching
            // `read_until`; EOF mid-discard reports the oversize.
            return Ok(match (discarding, buf.is_empty()) {
                (true, _) => LineRead::TooLong,
                (false, true) => LineRead::Eof,
                (false, false) => LineRead::Line,
            });
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.map_or(chunk.len(), |pos| pos);
        if !discarding {
            if buf.len() + take > max {
                buf.clear();
                discarding = true;
            } else {
                buf.extend_from_slice(&chunk[..take]);
            }
        }
        match newline {
            Some(pos) => {
                reader.consume(pos + 1);
                return Ok(if discarding {
                    LineRead::TooLong
                } else {
                    LineRead::Line
                });
            }
            None => {
                let len = chunk.len();
                reader.consume(len);
            }
        }
    }
}

/// Run one NDJSON session: read request lines from `reader`, write
/// response lines to `writer` as jobs resolve (so responses can arrive
/// out of submission order — clients correlate by `id`). Returns after a
/// `shutdown` or `drain` request (engine stopped; final stats written),
/// at EOF (engine left running), or when the transport's idle timeout
/// expires (connection closed, engine left running).
pub fn serve_session_with<R, W>(
    engine: &Arc<Engine>,
    reader: R,
    writer: Arc<Mutex<W>>,
    options: &ServeOptions,
) -> io::Result<bool>
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let mut reader = reader;
    let mut buf = Vec::new();
    loop {
        match read_bounded_line(&mut reader, &mut buf, options.max_line_bytes) {
            Ok(LineRead::Eof) => break,
            Ok(LineRead::Line) => {}
            Ok(LineRead::TooLong) => {
                let err = ProtocolError::line_too_long(options.max_line_bytes);
                write_line(&writer, &protocol::render_protocol_error(&err))?;
                continue;
            }
            // A read timeout on the underlying socket: the peer went
            // idle. Close this session; the engine keeps running.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                break;
            }
            Err(e) => return Err(e),
        }
        while matches!(buf.last(), Some(b'\n' | b'\r')) {
            buf.pop();
        }
        // Validate UTF-8 here rather than via `lines()`: a client sending
        // raw bytes gets one structured error line, not a dead session.
        let line = match std::str::from_utf8(&buf) {
            Ok(line) => line,
            Err(e) => {
                let err = protocol::ProtocolError::not_utf8(e.valid_up_to());
                write_line(&writer, &protocol::render_protocol_error(&err))?;
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        match protocol::parse_request(line) {
            Err(err) => write_line(&writer, &protocol::render_protocol_error(&err))?,
            Ok(Request::Stats) => write_line(
                &writer,
                &protocol::render_stats(&engine.stats(), &server_info(engine)),
            )?,
            Ok(Request::Metrics) => {
                write_line(&writer, &protocol::render_metrics(&engine.metrics_text()))?
            }
            Ok(Request::ShardInfo) => {
                let state_dir = engine
                    .config()
                    .state_dir
                    .as_ref()
                    .map(|p| p.display().to_string());
                write_line(
                    &writer,
                    &protocol::render_shard_info(
                        options.shard,
                        state_dir.as_deref(),
                        &server_info(engine),
                    ),
                )?
            }
            Ok(Request::Hello) => write_line(
                &writer,
                &protocol::render_hello(options.shard, &server_info(engine)),
            )?,
            Ok(Request::Ping { seq }) => {
                write_line(&writer, &protocol::render_pong(seq, &server_info(engine)))?
            }
            Ok(Request::Trace { trace_id, recent }) => {
                write_line(&writer, &trace_response(engine, trace_id, recent))?
            }
            Ok(Request::Shutdown) => {
                let stats = engine.shutdown();
                write_line(&writer, &protocol::render_shutdown(&stats))?;
                return Ok(true);
            }
            Ok(Request::Drain) => {
                let stats = engine.drain();
                write_line(&writer, &protocol::render_drain(&stats))?;
                return Ok(true);
            }
            Ok(Request::Submit(req)) => {
                let tag = req.tag.clone();
                let cb_writer = Arc::clone(&writer);
                let submitted = engine.submit_with(*req, move |done| {
                    let _ = write_line(&cb_writer, &protocol::render_outcome(&done));
                });
                if let Err(err) = submitted {
                    write_line(&writer, &protocol::render_submit_error(&tag, &err))?;
                }
            }
        }
    }
    Ok(false)
}

/// [`serve_session_with`] under default [`ServeOptions`].
pub fn serve_session<R, W>(
    engine: &Arc<Engine>,
    reader: R,
    writer: Arc<Mutex<W>>,
) -> io::Result<bool>
where
    R: BufRead,
    W: Write + Send + 'static,
{
    serve_session_with(engine, reader, writer, &ServeOptions::default())
}

/// Serve NDJSON over stdin/stdout until `shutdown`, `drain`, or EOF.
/// Returns the final stats snapshot.
pub fn serve_stdio(engine: &Arc<Engine>) -> io::Result<StatsSnapshot> {
    let writer = Arc::new(Mutex::new(io::stdout()));
    let shut = serve_session(engine, io::stdin().lock(), writer)?;
    Ok(if shut {
        engine.stats()
    } else {
        engine.shutdown()
    })
}

/// Serve NDJSON over TCP: one session thread per connection, all sharing
/// the engine. Returns after a connection issues `shutdown` or `drain`.
pub fn serve_tcp(engine: &Arc<Engine>, addr: &str) -> io::Result<StatsSnapshot> {
    serve_listener(engine, TcpListener::bind(addr)?)
}

/// [`serve_tcp`] with explicit [`ServeOptions`].
pub fn serve_tcp_with(
    engine: &Arc<Engine>,
    addr: &str,
    options: &ServeOptions,
) -> io::Result<StatsSnapshot> {
    serve_listener_with(engine, TcpListener::bind(addr)?, options)
}

/// [`serve_tcp`] over an already-bound listener (lets callers pick port 0
/// and read the assigned address first).
pub fn serve_listener(engine: &Arc<Engine>, listener: TcpListener) -> io::Result<StatsSnapshot> {
    serve_listener_with(engine, listener, &ServeOptions::default())
}

/// [`serve_listener`] with explicit [`ServeOptions`]: each accepted
/// connection gets the configured idle read timeout and request-line
/// bound.
pub fn serve_listener_with(
    engine: &Arc<Engine>,
    listener: TcpListener,
    options: &ServeOptions,
) -> io::Result<StatsSnapshot> {
    // Poll accept so a shutdown from one connection stops the loop.
    listener.set_nonblocking(true)?;
    let mut sessions = Vec::new();
    loop {
        if !engine.is_running() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                stream.set_nonblocking(false)?;
                stream.set_read_timeout(options.idle_timeout)?;
                let engine = Arc::clone(engine);
                let options = options.clone();
                let reader = BufReader::new(stream.try_clone()?);
                let writer = Arc::new(Mutex::new(stream));
                sessions.push(std::thread::spawn(move || {
                    let _ = serve_session_with(&engine, reader, writer, &options);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            Err(e) => return Err(e),
        }
    }
    for session in sessions {
        let _ = session.join();
    }
    Ok(engine.stats())
}

/// Per-outcome tally for one [`run_batch`] invocation.
///
/// `submitted` counts lines that produced a job; the four outcome
/// counters partition those jobs, and `errors` counts lines answered
/// with an error instead (parse failures and refused submits). A batch
/// is clean — [`BatchSummary::all_ok`] — exactly when every job ran to
/// completion and no line errored.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BatchSummary {
    /// Lines that produced a job (accepted submits).
    pub submitted: usize,
    /// Jobs that finished with a result.
    pub done: usize,
    /// Jobs that exceeded their deadline.
    pub deadline: usize,
    /// Jobs cancelled before completion.
    pub cancelled: usize,
    /// Jobs whose kernel failed.
    pub failed: usize,
    /// Lines answered with an error line (bad requests, refused submits).
    pub errors: usize,
    /// Every job that did *not* finish cleanly, with its distributed
    /// trace id so failures are immediately queryable via the `trace`
    /// op. Not part of [`BatchSummary`]'s `Display` line.
    pub flagged: Vec<FlaggedJob>,
}

/// One non-clean batch line: enough identity to go fetch its trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlaggedJob {
    /// The caller's tag for the line.
    pub tag: String,
    /// Outcome label: `"deadline"`, `"cancelled"`, or `"failed"`.
    pub outcome: &'static str,
    /// Distributed trace id; 0 when the job ran untraced.
    pub trace_id: u64,
}

impl BatchSummary {
    /// True when every line in the batch resolved successfully.
    pub fn all_ok(&self) -> bool {
        self.deadline == 0 && self.cancelled == 0 && self.failed == 0 && self.errors == 0
    }
}

impl std::fmt::Display for BatchSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "submitted={} done={} deadline={} cancelled={} failed={} errors={}",
            self.submitted, self.done, self.deadline, self.cancelled, self.failed, self.errors
        )
    }
}

/// Feed a batch of requests through the engine at full parallelism.
///
/// Each line of `input` is a protocol `submit` object (the `op` field is
/// optional in batch mode). Submission uses the blocking path — the
/// bounded queue throttles the reader instead of rejecting — and
/// responses are written in input order. Returns the per-outcome
/// [`BatchSummary`] so callers can fail a run that contained errors.
pub fn run_batch<W: Write>(
    engine: &Arc<Engine>,
    input: &str,
    writer: &mut W,
) -> io::Result<BatchSummary> {
    let mut summary = BatchSummary::default();
    let mut pending: Vec<(usize, String, JobHandle)> = Vec::new();
    let mut immediate: Vec<(usize, String)> = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        // Accept bare submit objects: inject the op when it is absent.
        let owned;
        let text = if line.contains("\"op\"") {
            line
        } else {
            owned = format!(
                "{{\"op\":\"submit\",{}",
                line.trim_start().trim_start_matches('{')
            );
            &owned
        };
        match protocol::parse_request(text) {
            Err(err) => {
                summary.errors += 1;
                immediate.push((lineno, protocol::render_protocol_error(&err)));
            }
            Ok(Request::Stats) => immediate.push((
                lineno,
                protocol::render_stats(&engine.stats(), &server_info(engine)),
            )),
            Ok(Request::Metrics) => {
                immediate.push((lineno, protocol::render_metrics(&engine.metrics_text())))
            }
            Ok(Request::ShardInfo) => {
                let state_dir = engine
                    .config()
                    .state_dir
                    .as_ref()
                    .map(|p| p.display().to_string());
                immediate.push((
                    lineno,
                    protocol::render_shard_info(None, state_dir.as_deref(), &server_info(engine)),
                ));
            }
            Ok(Request::Hello) => {
                immediate.push((lineno, protocol::render_hello(None, &server_info(engine))))
            }
            Ok(Request::Ping { seq }) => {
                immediate.push((lineno, protocol::render_pong(seq, &server_info(engine))))
            }
            Ok(Request::Trace { trace_id, recent }) => {
                immediate.push((lineno, trace_response(engine, trace_id, recent)))
            }
            Ok(Request::Shutdown) | Ok(Request::Drain) => break,
            Ok(Request::Submit(req)) => {
                let tag = req.tag.clone();
                // A structured `overloaded` refusal carries a pacing
                // hint; the batch driver honors it with one bounded
                // sleep-and-retry before counting the line as an error.
                // The sleep is additionally capped by the job's own
                // deadline budget (its explicit deadline, else the
                // engine default): sleeping past the deadline would
                // guarantee the retry is submitted already expired.
                let result = match engine.submit_blocking((*req).clone()) {
                    Err(crate::SubmitError::Overloaded { retry_after_ms, .. })
                        if retry_after_ms > 0 =>
                    {
                        let budget = req
                            .deadline
                            .or(engine.config().default_deadline)
                            .unwrap_or(Duration::from_millis(5_000));
                        let pause = Duration::from_millis(retry_after_ms.min(5_000)).min(budget);
                        std::thread::sleep(pause);
                        engine.submit_blocking(*req)
                    }
                    other => other,
                };
                match result {
                    Ok(handle) => pending.push((lineno, tag, handle)),
                    Err(err) => {
                        summary.errors += 1;
                        immediate.push((lineno, protocol::render_submit_error(&tag, &err)));
                    }
                }
            }
        }
    }
    summary.submitted = pending.len();
    let mut responses: Vec<(usize, String)> = immediate;
    for (lineno, tag, handle) in pending {
        let id = handle.id;
        let done = handle
            .wait_completed()
            .unwrap_or(crate::worker::CompletedJob {
                id,
                tag,
                trace_id: 0,
                outcome: crate::JobOutcome::Cancelled { progress: None },
            });
        let label = match &done.outcome {
            crate::JobOutcome::Done(_) => {
                summary.done += 1;
                None
            }
            crate::JobOutcome::DeadlineExceeded { .. } => {
                summary.deadline += 1;
                Some("deadline")
            }
            crate::JobOutcome::Cancelled { .. } => {
                summary.cancelled += 1;
                Some("cancelled")
            }
            crate::JobOutcome::Failed(_) => {
                summary.failed += 1;
                Some("failed")
            }
        };
        if let Some(outcome) = label {
            summary.flagged.push(FlaggedJob {
                tag: done.tag.clone(),
                outcome,
                trace_id: done.trace_id,
            });
        }
        responses.push((lineno, protocol::render_outcome(&done)));
    }
    responses.sort_by_key(|(lineno, _)| *lineno);
    for (_, line) in &responses {
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
    }
    writer.flush()?;
    Ok(summary)
}

/// Convenience for tests and benchmarks: submit every request with the
/// blocking path and wait for all of them, returning the outcomes in
/// order.
pub fn run_all(engine: &Arc<Engine>, requests: Vec<AlignRequest>) -> Vec<crate::JobOutcome> {
    let handles: Vec<_> = requests
        .into_iter()
        .filter_map(|req| engine.submit_blocking(req).ok())
        .collect();
    handles.into_iter().map(JobHandle::wait).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServiceConfig;
    use crate::json::Value;
    use std::io::Cursor;

    fn engine() -> Arc<Engine> {
        Arc::new(Engine::start(ServiceConfig {
            workers: 2,
            queue_capacity: 16,
            cache_capacity: 64,
            ..ServiceConfig::default()
        }))
    }

    fn lines(bytes: &[u8]) -> Vec<Value> {
        std::str::from_utf8(bytes)
            .unwrap()
            .lines()
            .map(|l| Value::parse(l).unwrap())
            .collect()
    }

    #[test]
    fn session_submit_stats_shutdown() {
        let engine = engine();
        let input = concat!(
            r#"{"op":"submit","id":"j1","a":"GATTACA","b":"GATACA","c":"GTTACA"}"#,
            "\n",
            r#"{"op":"shutdown"}"#,
            "\n"
        );
        let writer = Arc::new(Mutex::new(Vec::<u8>::new()));
        let shut = serve_session(&engine, Cursor::new(input), Arc::clone(&writer)).unwrap();
        assert!(shut);
        let out = lines(&writer.lock());
        // Shutdown drains the queue first, so both lines are present;
        // the job response precedes the shutdown summary.
        assert_eq!(out.len(), 2);
        let job = out
            .iter()
            .find(|v| v.get("id").map(|i| i.as_str()) == Some(Some("j1")))
            .expect("job response present");
        assert_eq!(job.get("ok").unwrap().as_bool(), Some(true));
        assert!(job.get("score").is_some());
        let shutdown = out
            .iter()
            .find(|v| v.get("op").map(|o| o.as_str()) == Some(Some("shutdown")))
            .expect("shutdown response present");
        assert_eq!(shutdown.get("completed").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn session_reports_bad_lines_and_keeps_going() {
        let engine = engine();
        let input = concat!(
            "this is not json\n",
            r#"{"op":"stats"}"#,
            "\n",
            r#"{"op":"shutdown"}"#,
            "\n"
        );
        let writer = Arc::new(Mutex::new(Vec::<u8>::new()));
        serve_session(&engine, Cursor::new(input), Arc::clone(&writer)).unwrap();
        let out = lines(&writer.lock());
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].get("error").unwrap().as_str(), Some("bad_request"));
        assert_eq!(out[1].get("op").unwrap().as_str(), Some("stats"));
        assert_eq!(out[2].get("op").unwrap().as_str(), Some("shutdown"));
    }

    #[test]
    fn session_survives_non_utf8_bytes() {
        let engine = engine();
        let mut input: Vec<u8> = Vec::new();
        input.extend_from_slice(b"{\"op\":\"st");
        input.extend_from_slice(&[0xFF, 0xFE, 0x80]); // invalid UTF-8
        input.extend_from_slice(b"\n");
        input.extend_from_slice(br#"{"op":"stats"}"#);
        input.extend_from_slice(b"\n");
        input.extend_from_slice(br#"{"op":"shutdown"}"#);
        input.extend_from_slice(b"\n");
        let writer = Arc::new(Mutex::new(Vec::<u8>::new()));
        let shut = serve_session(&engine, Cursor::new(input), Arc::clone(&writer)).unwrap();
        assert!(shut, "session keeps running past the binary garbage");
        let out = lines(&writer.lock());
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].get("error").unwrap().as_str(), Some("bad_request"));
        assert!(out[0]
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("UTF-8"));
        assert_eq!(out[0].get("position").unwrap().as_u64(), Some(9));
        assert_eq!(out[2].get("op").unwrap().as_str(), Some("shutdown"));
    }

    #[test]
    fn session_rejects_oversized_line_and_keeps_going() {
        let engine = engine();
        let options = ServeOptions {
            max_line_bytes: 64,
            ..ServeOptions::default()
        };
        let mut input = String::new();
        input.push_str(&"x".repeat(200)); // no JSON, just too long
        input.push('\n');
        input.push_str(r#"{"op":"stats"}"#);
        input.push('\n');
        input.push_str(r#"{"op":"shutdown"}"#);
        input.push('\n');
        let writer = Arc::new(Mutex::new(Vec::<u8>::new()));
        let shut =
            serve_session_with(&engine, Cursor::new(input), Arc::clone(&writer), &options).unwrap();
        assert!(shut, "session survives the oversized line");
        let out = lines(&writer.lock());
        assert_eq!(out.len(), 3);
        assert_eq!(
            out[0].get("error").unwrap().as_str(),
            Some("invalid_argument")
        );
        assert_eq!(out[0].get("position").unwrap().as_u64(), Some(64));
        assert_eq!(out[1].get("op").unwrap().as_str(), Some("stats"));
        assert_eq!(out[2].get("op").unwrap().as_str(), Some("shutdown"));
    }

    #[test]
    fn line_exactly_at_bound_is_accepted() {
        let engine = engine();
        let line = r#"{"op":"stats"}"#;
        let options = ServeOptions {
            max_line_bytes: line.len(),
            ..ServeOptions::default()
        };
        let input = format!("{line}\n{{\"op\":\"shutdown\"}}\n");
        let writer = Arc::new(Mutex::new(Vec::<u8>::new()));
        serve_session_with(&engine, Cursor::new(input), Arc::clone(&writer), &options).unwrap();
        let out = lines(&writer.lock());
        assert_eq!(out[0].get("op").unwrap().as_str(), Some("stats"));
    }

    #[test]
    fn session_stats_carry_server_identity_and_shard_info_answers() {
        let engine = engine();
        let options = ServeOptions {
            shard: Some(2),
            ..ServeOptions::default()
        };
        let input = concat!(
            r#"{"op":"stats"}"#,
            "\n",
            r#"{"op":"shard_info"}"#,
            "\n",
            r#"{"op":"hello"}"#,
            "\n",
            r#"{"op":"ping","seq":5}"#,
            "\n",
            r#"{"op":"shutdown"}"#,
            "\n"
        );
        let writer = Arc::new(Mutex::new(Vec::<u8>::new()));
        serve_session_with(&engine, Cursor::new(input), Arc::clone(&writer), &options).unwrap();
        let out = lines(&writer.lock());
        assert_eq!(out.len(), 5);
        let server = out[0].get("server").expect("stats carry a server section");
        assert_eq!(
            server.get("pid").unwrap().as_u64(),
            Some(std::process::id() as u64)
        );
        assert_eq!(
            server.get("version").unwrap().as_str(),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert!(server.get("uptime_ms").unwrap().as_u64().is_some());
        assert_eq!(out[1].get("op").unwrap().as_str(), Some("shard_info"));
        assert_eq!(out[1].get("shard").unwrap().as_u64(), Some(2));
        assert_eq!(out[2].get("op").unwrap().as_str(), Some("hello"));
        assert_eq!(out[2].get("shard").unwrap().as_u64(), Some(2));
        assert_eq!(out[3].get("op").unwrap().as_str(), Some("pong"));
        assert_eq!(out[3].get("seq").unwrap().as_u64(), Some(5));
    }

    #[test]
    fn session_drain_stops_engine_and_reports_stats() {
        let engine = engine();
        let input = concat!(
            r#"{"op":"submit","id":"d1","a":"GATTACA","b":"GATACA","c":"GTTACA"}"#,
            "\n",
            r#"{"op":"drain"}"#,
            "\n"
        );
        let writer = Arc::new(Mutex::new(Vec::<u8>::new()));
        let shut = serve_session(&engine, Cursor::new(input), Arc::clone(&writer)).unwrap();
        assert!(shut);
        assert!(!engine.is_running());
        let out = lines(&writer.lock());
        let drain = out
            .iter()
            .find(|v| v.get("op").map(|o| o.as_str()) == Some(Some("drain")))
            .expect("drain response present");
        assert_eq!(drain.get("ok").unwrap().as_bool(), Some(true));
        // Without a state dir the job completes before drain returns.
        assert_eq!(drain.get("completed").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn session_eof_leaves_engine_running() {
        let engine = engine();
        let writer = Arc::new(Mutex::new(Vec::<u8>::new()));
        let shut = serve_session(&engine, Cursor::new(""), Arc::clone(&writer)).unwrap();
        assert!(!shut);
        assert!(engine.is_running());
        engine.shutdown();
    }

    #[test]
    fn batch_preserves_input_order_and_allows_bare_objects() {
        let engine = engine();
        let input = concat!(
            r#"{"id":"first","a":"GATTACA","b":"GATACA","c":"GTTACA"}"#,
            "\n",
            "garbage line\n",
            r#"{"op":"submit","id":"second","a":"ACGTACGT","b":"ACGTACG","c":"CGTACGT"}"#,
            "\n"
        );
        let mut out = Vec::new();
        let summary = run_batch(&engine, input, &mut out).unwrap();
        assert_eq!(summary.submitted, 2);
        assert_eq!(summary.done, 2);
        assert_eq!(summary.errors, 1, "the garbage line is tallied");
        assert!(!summary.all_ok(), "an errored line marks the batch dirty");
        let out = lines(&out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].get("id").unwrap().as_str(), Some("first"));
        assert_eq!(out[1].get("error").unwrap().as_str(), Some("bad_request"));
        assert_eq!(out[2].get("id").unwrap().as_str(), Some("second"));
        engine.shutdown();
    }

    #[test]
    fn batch_summary_tallies_outcomes_and_renders() {
        let engine = engine();
        let input = r#"{"id":"ok1","a":"GATTACA","b":"GATACA","c":"GTTACA"}"#;
        let mut out = Vec::new();
        let summary = run_batch(&engine, input, &mut out).unwrap();
        assert_eq!(
            summary,
            BatchSummary {
                submitted: 1,
                done: 1,
                ..BatchSummary::default()
            }
        );
        assert!(summary.all_ok());
        assert_eq!(
            summary.to_string(),
            "submitted=1 done=1 deadline=0 cancelled=0 failed=0 errors=0"
        );
        engine.shutdown();
    }

    #[test]
    fn batch_overload_retry_sleep_is_capped_by_the_deadline_budget() {
        use std::time::Instant;
        // client_rate 1.0 = burst of one: the second line sheds with a
        // retry hint of ~1000 ms. With a 20 ms deadline budget the
        // retry sleep must be capped at 20 ms, not the full hint —
        // sleeping a second for a job that expires in 20 ms is useless.
        let engine = Arc::new(Engine::start(ServiceConfig {
            workers: 2,
            queue_capacity: 16,
            client_rate: Some(1.0),
            default_deadline: Some(Duration::from_millis(20)),
            ..ServiceConfig::default()
        }));
        let input = concat!(
            r#"{"id":"a1","client":"capped","a":"GATTACA","b":"GATACA","c":"GTTACA"}"#,
            "\n",
            r#"{"id":"a2","client":"capped","a":"ACGTACGT","b":"ACGTACG","c":"CGTACGT"}"#,
            "\n"
        );
        let started = Instant::now();
        let mut out = Vec::new();
        let summary = run_batch(&engine, input, &mut out).unwrap();
        assert!(
            started.elapsed() < Duration::from_millis(900),
            "retry slept ~the full 1 s hint instead of the deadline budget"
        );
        assert_eq!(summary.submitted + summary.errors, 2);
        assert_eq!(
            summary.errors, 1,
            "the shed line errors after its capped retry"
        );
        engine.shutdown();
    }

    #[test]
    fn batch_repeat_hits_cache() {
        let engine = engine();
        let line = r#"{"id":"r","a":"GATTACAGATTACA","b":"GATACAGATACA","c":"GTTACAGTTACA"}"#;
        let mut out = Vec::new();
        run_batch(&engine, line, &mut out).unwrap();
        run_batch(&engine, line, &mut out).unwrap();
        let out = lines(&out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get("cached").unwrap().as_bool(), Some(false));
        assert_eq!(out[1].get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(
            out[0].get("score").unwrap().as_i64(),
            out[1].get("score").unwrap().as_i64()
        );
        engine.shutdown();
    }

    #[test]
    fn tcp_round_trip() {
        use std::io::{BufRead as _, Write as _};
        use std::net::TcpStream;

        let engine = engine();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || serve_listener(&engine, listener).unwrap())
        };
        let stream = TcpStream::connect(addr).expect("connect to service");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut w = stream;
        writeln!(
            w,
            r#"{{"op":"submit","id":"t1","a":"GATTACA","b":"GATACA","c":"GTTACA"}}"#
        )
        .unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let v = Value::parse(&line).unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("t1"));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        writeln!(w, r#"{{"op":"shutdown"}}"#).unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(
            Value::parse(&line).unwrap().get("op").unwrap().as_str(),
            Some("shutdown")
        );
        let stats = server.join().unwrap();
        assert_eq!(stats.completed, 1);
    }
}
