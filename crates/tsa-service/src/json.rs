//! Minimal hand-rolled JSON reader/writer for the NDJSON protocol.
//!
//! The workspace is dependency-free by policy, so the wire format is
//! implemented here: a recursive-descent parser producing a small
//! [`Value`] tree, and an append-only [`JsonObject`] writer. Only what
//! the protocol needs is supported — numbers are `f64` (the protocol
//! uses integers well inside the 2^53 exact range), and `\uXXXX` escapes
//! outside the BMP are accepted pairwise as surrogates.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order preserved, last duplicate key wins on
    /// lookup-by-iteration (we never emit duplicates).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parse one complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(text: &str) -> Result<Value, String> {
        Value::parse_bytes(text.as_bytes())
    }

    /// Parse raw bytes without requiring the whole line to be valid
    /// UTF-8 up front: structure is ASCII, and string contents are
    /// decoded incrementally, so an invalid byte yields a positioned
    /// error instead of a panic. Lets transports hand wire bytes
    /// straight to the parser.
    pub fn parse_bytes(bytes: &[u8]) -> Result<Value, String> {
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// This number as a signed integer, if it is one exactly.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!(
                "unexpected '{}' at byte {}",
                char::from(c),
                self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX for the
                                // low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("invalid \\u escape")?
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The input may be raw wire
                    // bytes (`parse_bytes`), so decode defensively — an
                    // invalid sequence is an error, never a panic.
                    let (ch, len) = next_char(&self.bytes[self.pos..])
                        .ok_or_else(|| format!("invalid UTF-8 in string at byte {}", self.pos))?;
                    out.push(ch);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex =
            std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).map_err(|e| e.to_string())?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        // The consumed range is ASCII by construction, but stay
        // panic-free anyway.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number '{text}'"))
    }
}

/// Decode the first UTF-8 scalar of `bytes`, returning it with its
/// encoded length; `None` on an invalid or truncated sequence.
fn next_char(bytes: &[u8]) -> Option<(char, usize)> {
    let len = match bytes.first()? {
        0x00..=0x7F => 1,
        0xC2..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF4 => 4,
        _ => return None,
    };
    let chunk = bytes.get(..len)?;
    let s = std::str::from_utf8(chunk).ok()?;
    let ch = s.chars().next()?;
    Some((ch, len))
}

/// Escape a string for embedding in JSON output (without the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Append-only single-line JSON object writer.
#[derive(Debug)]
pub struct JsonObject {
    out: String,
    first: bool,
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> Self {
        JsonObject {
            out: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        let _ = write!(self.out, "\"{}\":", escape(key));
    }

    /// Add a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        let _ = write!(self.out, "\"{}\"", escape(value));
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        let _ = write!(self.out, "{value}");
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        let _ = write!(self.out, "{value}");
        self
    }

    /// Add a signed integer field.
    pub fn i64(mut self, key: &str, value: i64) -> Self {
        self.key(key);
        let _ = write!(self.out, "{value}");
        self
    }

    /// Add an array-of-unsigned-integers field.
    pub fn u64_array(mut self, key: &str, values: &[u64]) -> Self {
        self.key(key);
        self.out.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            let _ = write!(self.out, "{v}");
        }
        self.out.push(']');
        self
    }

    /// Add an array-of-strings field.
    pub fn str_array(mut self, key: &str, values: &[String]) -> Self {
        self.key(key);
        self.out.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            let _ = write!(self.out, "\"{}\"", escape(v));
        }
        self.out.push(']');
        self
    }

    /// Add a nested-object field built from another writer.
    pub fn object(mut self, key: &str, inner: JsonObject) -> Self {
        self.key(key);
        self.out.push_str(&inner.finish());
        self
    }

    /// Add an array-of-objects field built from other writers.
    pub fn objects(mut self, key: &str, items: Vec<JsonObject>) -> Self {
        self.key(key);
        self.out.push('[');
        for (i, item) in items.into_iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            self.out.push_str(&item.finish());
        }
        self.out.push(']');
        self
    }

    /// Close the object and return the JSON text (one line, no newline).
    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        JsonObject::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(Value::parse("-3.5e2").unwrap(), Value::Num(-350.0));
        assert_eq!(
            Value::parse("\"hi\\n\\u0041\"").unwrap(),
            Value::Str("hi\nA".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v =
            Value::parse(r#"{"op":"submit","seqs":["AC","GT"],"n":3,"deep":{"x":[1,2]}}"#).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("submit"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        match v.get("seqs").unwrap() {
            Value::Arr(items) => assert_eq!(items.len(), 2),
            other => panic!("expected array, got {other:?}"),
        }
        assert!(v.get("deep").unwrap().get("x").is_some());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{\"a\" 1}").is_err());
        assert!(Value::parse("\"unterminated").is_err());
        assert!(Value::parse("1 2").is_err());
        assert!(Value::parse("nulls").is_err());
        assert!(Value::parse("").is_err());
    }

    #[test]
    fn rejects_truncated_objects_without_panicking() {
        assert!(Value::parse("{\"a\":").is_err());
        assert!(Value::parse("{\"a\":1,").is_err());
        assert!(Value::parse("{\"a\":{\"b\":").is_err());
        assert!(Value::parse("[{\"a\":1}").is_err());
        assert!(Value::parse("{\"a").is_err());
    }

    #[test]
    fn rejects_bad_unicode_escapes_without_panicking() {
        // Truncated \u escape at end of input.
        assert!(Value::parse("\"\\u12\"").is_err());
        assert!(Value::parse("\"\\u").is_err());
        // Non-hex digits.
        assert!(Value::parse("\"\\uZZZZ\"").is_err());
        // Unknown escape letter.
        assert!(Value::parse("\"\\x41\"").is_err());
        // Lone low surrogate.
        assert!(Value::parse("\"\\udd13\"").is_err());
    }

    #[test]
    fn rejects_non_utf8_bytes_without_panicking() {
        // Invalid byte inside a string value.
        assert!(Value::parse_bytes(b"{\"a\":\"\xff\"}").is_err());
        // Truncated multi-byte sequence at end of string.
        assert!(Value::parse_bytes(b"\"\xe2\x82\"").is_err());
        // Stray continuation byte.
        assert!(Value::parse_bytes(b"\"\x80\"").is_err());
        // Valid multi-byte input still parses through the bytes path.
        let v = Value::parse_bytes("\"héllo\"".as_bytes()).unwrap();
        assert_eq!(v.as_str(), Some("héllo"));
    }

    #[test]
    fn surrogate_pairs_round_trip() {
        let v = Value::parse("\"\\ud83e\\udd13\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1F913}"));
        assert!(Value::parse("\"\\ud83e\"").is_err());
    }

    #[test]
    fn unicode_passthrough() {
        let v = Value::parse("\"héllo→\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo→"));
    }

    #[test]
    fn integer_accessors_guard_range_and_sign() {
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_i64(), Some(-1));
        assert_eq!(Value::Num(1.5).as_i64(), None);
        assert_eq!(Value::Str("1".into()).as_u64(), None);
    }

    #[test]
    fn writer_builds_one_line_objects() {
        let line = JsonObject::new()
            .bool("ok", true)
            .str("id", "a\"b")
            .u64("score", 7)
            .i64("delta", -2)
            .str_array("rows", &["A-C".into(), "AGC".into()])
            .finish();
        assert_eq!(
            line,
            r#"{"ok":true,"id":"a\"b","score":7,"delta":-2,"rows":["A-C","AGC"]}"#
        );
        // And it parses back.
        let v = Value::parse(&line).unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("a\"b"));
        assert_eq!(v.get("delta").unwrap().as_i64(), Some(-2));
    }

    #[test]
    fn writer_nests_objects_and_object_arrays() {
        let line = JsonObject::new()
            .bool("ok", true)
            .object(
                "server",
                JsonObject::new().str("version", "1.0").u64("pid", 7),
            )
            .objects(
                "shards",
                vec![
                    JsonObject::new().u64("shard", 0),
                    JsonObject::new().u64("shard", 1),
                ],
            )
            .finish();
        assert_eq!(
            line,
            r#"{"ok":true,"server":{"version":"1.0","pid":7},"shards":[{"shard":0},{"shard":1}]}"#
        );
        let v = Value::parse(&line).unwrap();
        let server = v.get("server").unwrap();
        assert_eq!(server.get("pid").unwrap().as_u64(), Some(7));
        assert!(matches!(v.get("shards"), Some(Value::Arr(a)) if a.len() == 2));
    }

    #[test]
    fn escape_control_characters() {
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(escape("tab\there"), "tab\\there");
    }
}
