//! The NDJSON wire protocol: one JSON object per line, each a request or
//! a response.
//!
//! Requests (`op` selects the kind):
//!
//! ```json
//! {"op":"submit","id":"j1","a":"GATTACA","b":"GATACA","c":"GTTACA",
//!  "scoring":"dna","algorithm":"auto","deadline_ms":5000,"score_only":false}
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses always carry `ok`; submissions echo the request `id`.
//! A completed job answers `{"ok":true,"id":...,"status":"done","score":...}`;
//! backpressure answers `{"ok":false,"id":...,"error":"overloaded",...}`.

use crate::engine::AlignRequest;
use crate::error::{CancelStage, JobOutcome, SubmitError};
use crate::json::{JsonObject, Value};
use crate::stats::StatsSnapshot;
use crate::worker::CompletedJob;
use std::time::Duration;
use tsa_core::{Algorithm, SimdKernel};
use tsa_obs::{StitchSpan, TraceTree};
use tsa_scoring::Scoring;
use tsa_seq::{Alphabet, Seq};

/// A parsed protocol request.
#[derive(Debug)]
pub enum Request {
    /// Run one alignment.
    Submit(Box<AlignRequest>),
    /// Report the engine counters.
    Stats,
    /// Report every metric as Prometheus-style text exposition, embedded
    /// in one JSON response line.
    Metrics,
    /// Drain the queue, stop the workers, report final counters.
    Shutdown,
    /// Graceful drain: stop admission, checkpoint in-flight durable
    /// kernels, flush the journal, report final counters. Identical to
    /// `Shutdown` when the engine has no state directory.
    Drain,
    /// Report this server's shard identity (set when it runs as a
    /// cluster worker) and state directory.
    ShardInfo,
    /// Cluster handshake: the coordinator verifies the worker answers
    /// the NDJSON protocol and learns its shard/version/pid.
    Hello,
    /// Liveness probe; answered with `pong`, echoing `seq` when given.
    Ping {
        /// Client-chosen sequence number, echoed in the response.
        seq: Option<u64>,
    },
    /// Query the flight recorder: one stitched trace tree by id
    /// (`{"op":"trace","trace_id":"<16 hex>"}`) or the most recent
    /// notable (slow/failed/overloaded) traces
    /// (`{"op":"trace","recent":5}`).
    Trace {
        /// The trace to fetch, when querying by id.
        trace_id: Option<u64>,
        /// How many recent notable traces to return otherwise.
        recent: usize,
    },
}

/// A request that could not be honored; `id` is echoed when the line
/// carried one so the client can correlate.
#[derive(Debug, PartialEq, Eq)]
pub struct ProtocolError {
    /// The request id, when one was present.
    pub id: Option<String>,
    /// Machine-readable error code: `"bad_request"` for malformed lines,
    /// `"invalid_argument"` for well-formed lines with bad values (e.g. a
    /// residue outside the declared alphabet).
    pub code: &'static str,
    /// Human-readable reason.
    pub message: String,
    /// Offending byte offset within the rejected field, when known.
    pub position: Option<usize>,
}

impl ProtocolError {
    fn new(id: Option<&str>, message: impl Into<String>) -> Self {
        ProtocolError {
            id: id.map(str::to_owned),
            code: "bad_request",
            message: message.into(),
            position: None,
        }
    }

    fn invalid_argument(
        id: Option<&str>,
        message: impl Into<String>,
        position: Option<usize>,
    ) -> Self {
        ProtocolError {
            id: id.map(str::to_owned),
            code: "invalid_argument",
            message: message.into(),
            position,
        }
    }

    /// A request line longer than the server's configured bound; the
    /// position is the first byte past the limit. The oversized line is
    /// consumed, so the session survives to serve the next request.
    pub(crate) fn line_too_long(max_bytes: usize) -> Self {
        ProtocolError {
            id: None,
            code: "invalid_argument",
            message: format!("request line exceeds {max_bytes} bytes"),
            position: Some(max_bytes),
        }
    }

    /// A request line that was not valid UTF-8; `valid_up_to` is the byte
    /// offset of the first invalid byte.
    pub(crate) fn not_utf8(valid_up_to: usize) -> Self {
        ProtocolError {
            id: None,
            code: "bad_request",
            message: "request line is not valid UTF-8".into(),
            position: Some(valid_up_to),
        }
    }
}

/// The declared-alphabet request field (`"alphabet":"dna"`); sequences
/// are validated against it and rejected with `invalid_argument` on the
/// first out-of-alphabet residue.
fn parse_alphabet(obj: &Value, id: Option<&str>) -> Result<Option<Alphabet>, ProtocolError> {
    match obj.get("alphabet") {
        None => Ok(None),
        Some(v) => match v.as_str() {
            Some("dna") => Ok(Some(Alphabet::Dna)),
            Some("rna") => Ok(Some(Alphabet::Rna)),
            Some("protein") => Ok(Some(Alphabet::Protein)),
            _ => Err(ProtocolError::new(
                id,
                "'alphabet' must be \"dna\", \"rna\", or \"protein\"",
            )),
        },
    }
}

fn parse_seq(
    obj: &Value,
    field: &str,
    declared: Option<Alphabet>,
    id: Option<&str>,
) -> Result<Seq, ProtocolError> {
    let text = obj
        .get(field)
        .and_then(Value::as_str)
        .ok_or_else(|| ProtocolError::new(id, format!("missing string field '{field}'")))?;
    let bytes = text.as_bytes();
    let alphabet = match declared {
        Some(alphabet) => alphabet,
        None => Alphabet::infer(bytes).ok_or_else(|| {
            // Report where inference gave up: `infer` tries protein last,
            // so the first non-protein byte is the culprit.
            let position = Alphabet::Protein
                .validate(bytes)
                .err()
                .and_then(|e| match e {
                    tsa_seq::SeqError::InvalidResidue { position, .. } => Some(position),
                    _ => None,
                });
            ProtocolError::invalid_argument(
                id,
                format!("'{field}' is not a DNA/RNA/protein sequence"),
                position,
            )
        })?,
    };
    Seq::new(field, alphabet, bytes).map_err(|e| match e {
        tsa_seq::SeqError::InvalidResidue { position, .. } => {
            ProtocolError::invalid_argument(id, format!("invalid '{field}': {e}"), Some(position))
        }
        other => ProtocolError::invalid_argument(id, format!("invalid '{field}': {other}"), None),
    })
}

/// Parse one NDJSON request line.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let obj = Value::parse(line).map_err(|e| ProtocolError::new(None, format!("bad JSON: {e}")))?;
    let id = obj.get("id").and_then(Value::as_str).map(str::to_owned);
    let id_ref = id.as_deref();
    let op = obj
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| ProtocolError::new(id_ref, "missing string field 'op'"))?;
    match op {
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        "drain" => Ok(Request::Drain),
        "shard_info" => Ok(Request::ShardInfo),
        "hello" => Ok(Request::Hello),
        "ping" => Ok(Request::Ping {
            seq: obj.get("seq").and_then(Value::as_u64),
        }),
        "trace" => {
            let trace_id = match obj.get("trace_id") {
                None => None,
                Some(v) => {
                    let hex = v.as_str().ok_or_else(|| {
                        ProtocolError::new(id_ref, "'trace_id' must be a hex string")
                    })?;
                    Some(
                        u64::from_str_radix(hex, 16)
                            .ok()
                            .filter(|&t| t != 0)
                            .ok_or_else(|| {
                                ProtocolError::new(
                                    id_ref,
                                    format!("'trace_id' is not a nonzero hex id: '{hex}'"),
                                )
                            })?,
                    )
                }
            };
            let recent = match obj.get("recent") {
                None => 10,
                Some(v) => v.as_u64().ok_or_else(|| {
                    ProtocolError::new(id_ref, "'recent' must be a non-negative integer")
                })? as usize,
            };
            Ok(Request::Trace { trace_id, recent })
        }
        "submit" => {
            let declared = parse_alphabet(&obj, id_ref)?;
            let a = parse_seq(&obj, "a", declared, id_ref)?;
            let b = parse_seq(&obj, "b", declared, id_ref)?;
            let c = parse_seq(&obj, "c", declared, id_ref)?;
            let scoring = match obj.get("scoring").and_then(Value::as_str) {
                None => Scoring::dna_default(),
                Some(name) => Scoring::by_name(name).ok_or_else(|| {
                    ProtocolError::new(id_ref, format!("unknown scoring '{name}'"))
                })?,
            };
            let tile =
                match obj.get("tile") {
                    None => 16,
                    Some(v) => v.as_u64().filter(|&t| t >= 1).ok_or_else(|| {
                        ProtocolError::new(id_ref, "'tile' must be an integer >= 1")
                    })? as usize,
                };
            let threads = match obj.get("threads") {
                None => std::thread::available_parallelism().map_or(1, |n| n.get()),
                Some(v) => v.as_u64().filter(|&t| t >= 1).ok_or_else(|| {
                    ProtocolError::new(id_ref, "'threads' must be an integer >= 1")
                })? as usize,
            };
            let algorithm = match obj.get("algorithm").and_then(Value::as_str) {
                None => Algorithm::Auto,
                Some(name) => Algorithm::by_name(name, tile, threads).ok_or_else(|| {
                    ProtocolError::new(id_ref, format!("unknown algorithm '{name}'"))
                })?,
            };
            let kernel = match obj.get("kernel").and_then(Value::as_str) {
                None => SimdKernel::Auto,
                Some(name) => SimdKernel::by_name(name).ok_or_else(|| {
                    ProtocolError::new(
                        id_ref,
                        format!(
                            "unknown kernel '{name}' (want scalar|auto|sse2|avx2|sse2-i16|avx2-i16)"
                        ),
                    )
                })?,
            };
            let score_only = match obj.get("score_only") {
                None => false,
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| ProtocolError::new(id_ref, "'score_only' must be a boolean"))?,
            };
            let deadline = match obj.get("deadline_ms") {
                None => None,
                Some(v) => Some(Duration::from_millis(v.as_u64().ok_or_else(|| {
                    ProtocolError::new(id_ref, "'deadline_ms' must be a non-negative integer")
                })?)),
            };
            let client = match obj.get("client") {
                None => String::new(),
                Some(v) => v
                    .as_str()
                    .ok_or_else(|| ProtocolError::new(id_ref, "'client' must be a string"))?
                    .to_owned(),
            };
            let trace = match obj.get("trace") {
                None => None,
                Some(v) => Some(
                    v.as_str()
                        .and_then(tsa_obs::TraceContext::parse)
                        .ok_or_else(|| {
                            ProtocolError::new(
                                id_ref,
                                "'trace' must be \"<16 hex digits>:<parent span id>\"",
                            )
                        })?,
                ),
            };
            let mut req = AlignRequest::new(id.unwrap_or_default(), a, b, c)
                .scoring(scoring)
                .algorithm(algorithm)
                .score_only(score_only)
                .kernel(kernel)
                .client(client);
            req.deadline = deadline;
            req.trace = trace;
            Ok(Request::Submit(Box::new(req)))
        }
        other => Err(ProtocolError::new(id_ref, format!("unknown op '{other}'"))),
    }
}

fn base(ok: bool, id: &str) -> JsonObject {
    let obj = JsonObject::new().bool("ok", ok);
    if id.is_empty() {
        obj
    } else {
        obj.str("id", id)
    }
}

/// Append partial-progress fields when a kernel was stopped mid-flight.
fn progress_fields(obj: JsonObject, progress: &Option<tsa_core::CancelProgress>) -> JsonObject {
    match progress {
        Some(p) => obj
            .u64("cells_done", p.cells_done)
            .u64("cells_total", p.cells_total),
        None => obj,
    }
}

/// Render a resolved job as one response line (no trailing newline).
pub fn render_outcome(done: &CompletedJob) -> String {
    let obj = base(done.outcome.result().is_some(), &done.tag).str("status", done.outcome.label());
    // Untraced jobs render byte-identically to before tracing existed.
    let obj = if done.trace_id != 0 {
        obj.str("trace_id", &format!("{:016x}", done.trace_id))
    } else {
        obj
    };
    match &done.outcome {
        JobOutcome::Done(r) => {
            let obj = obj
                .i64("score", r.score as i64)
                .str("algorithm", r.algorithm.name())
                .bool("cached", r.cached)
                .u64("wait_us", r.wait.as_micros().min(u64::MAX as u128) as u64)
                .u64(
                    "service_us",
                    r.service.as_micros().min(u64::MAX as u128) as u64,
                );
            // Present only when true: a hit on a journal-recovered entry.
            let obj = if r.recovered {
                obj.bool("recovered", true)
            } else {
                obj
            };
            let obj = match r.degraded_from {
                Some(from) => obj.str("degraded_from", from.name()),
                None => obj,
            };
            match &r.rows {
                Some(rows) => obj.str_array("rows", rows.as_slice()).finish(),
                None => obj.finish(),
            }
        }
        JobOutcome::DeadlineExceeded { stage, progress } => progress_fields(
            obj.str(
                "stage",
                match stage {
                    CancelStage::Queued => "queued",
                    CancelStage::Kernel => "kernel",
                    CancelStage::Computed => "computed",
                },
            ),
            progress,
        )
        .finish(),
        JobOutcome::Cancelled { progress } => progress_fields(obj, progress).finish(),
        JobOutcome::Failed(reason) => obj.str("error", reason).finish(),
    }
}

/// Render an admission refusal. Backpressure is the `overloaded` error;
/// a governor refusal is `resource_exhausted`.
pub fn render_submit_error(id: &str, err: &SubmitError) -> String {
    match err {
        SubmitError::Overloaded {
            capacity,
            retry_after_ms,
            scope,
        } => base(false, id)
            .str("error", "overloaded")
            .u64("capacity", *capacity as u64)
            .str("scope", scope)
            .u64("retry_after_ms", *retry_after_ms)
            .finish(),
        SubmitError::ResourceExhausted {
            required,
            budget,
            limit,
        } => base(false, id)
            .str("error", "resource_exhausted")
            .str("limit", limit)
            .u64("required", *required)
            .u64("budget", *budget)
            .finish(),
        SubmitError::ShuttingDown => base(false, id).str("error", "shutting_down").finish(),
    }
}

/// Render a malformed-request response.
pub fn render_protocol_error(err: &ProtocolError) -> String {
    let obj = base(false, err.id.as_deref().unwrap_or(""))
        .str("error", err.code)
        .str("message", &err.message);
    match err.position {
        Some(position) => obj.u64("position", position as u64).finish(),
        None => obj.finish(),
    }
}

/// Identity of the answering process, carried as a nested `server`
/// section so multi-worker aggregators can label per-worker rows.
#[derive(Debug, Clone)]
pub struct ServerInfo {
    /// Crate version of the serving binary.
    pub version: &'static str,
    /// Operating-system process id.
    pub pid: u32,
    /// Milliseconds since the engine started.
    pub uptime_ms: u64,
}

impl ServerInfo {
    /// This process's identity with the given engine uptime.
    pub fn current(uptime: Duration) -> ServerInfo {
        ServerInfo {
            version: env!("CARGO_PKG_VERSION"),
            pid: std::process::id(),
            uptime_ms: uptime.as_millis().min(u64::MAX as u128) as u64,
        }
    }

    fn fields(&self) -> JsonObject {
        JsonObject::new()
            .str("version", self.version)
            .u64("pid", self.pid as u64)
            .u64("uptime_ms", self.uptime_ms)
    }
}

fn stats_fields(obj: JsonObject, stats: &StatsSnapshot) -> JsonObject {
    let obj = obj
        .u64("submitted", stats.submitted)
        .u64("completed", stats.completed)
        .u64("rejected", stats.rejected)
        .u64("cancelled", stats.cancelled)
        .u64("failed", stats.failed)
        .u64("cache_hits", stats.cache_hits)
        .u64("cache_misses", stats.cache_misses)
        .u64("panics", stats.panics)
        .u64("respawns", stats.respawns)
        .u64("downgraded", stats.downgraded)
        .u64("recovered", stats.recovered)
        .u64("resumed", stats.resumed)
        .u64("restarted", stats.restarted)
        .u64("cache_recovered_hits", stats.cache_recovered_hits)
        .u64("simd_jobs", stats.simd_jobs)
        .u64("shed", stats.shed)
        .u64("integrity_quarantined", stats.integrity_quarantined)
        .u64("queue_depth", stats.queue_depth as u64)
        .u64("latency_p50_us", stats.latency_p50_us)
        .u64("latency_p90_us", stats.latency_p90_us)
        .u64("latency_p95_us", stats.latency_p95_us)
        .u64("latency_p99_us", stats.latency_p99_us)
        .u64("queue_wait_p50_us", stats.queue_wait_p50_us)
        .u64("queue_wait_p95_us", stats.queue_wait_p95_us)
        .u64("queue_wait_p99_us", stats.queue_wait_p99_us)
        .u64("kernel_p50_us", stats.kernel_p50_us)
        .u64("kernel_p95_us", stats.kernel_p95_us)
        .u64("kernel_p99_us", stats.kernel_p99_us)
        .u64_array("latency_buckets", &stats.latency_buckets)
        .u64_array("queue_wait_buckets", &stats.queue_wait_buckets)
        .u64_array("kernel_buckets", &stats.kernel_buckets);
    // Per-client lane rows appear only once a named client has been
    // seen, so single-tenant responses are byte-identical to before.
    if stats.lanes.is_empty() {
        obj
    } else {
        obj.objects(
            "lanes",
            stats
                .lanes
                .iter()
                .map(|lane| {
                    JsonObject::new()
                        .str("client", &lane.client)
                        .u64("queued", lane.queued as u64)
                        .u64("in_flight", lane.in_flight)
                        .u64("submitted", lane.submitted)
                        .u64("rejected", lane.rejected)
                })
                .collect(),
        )
    }
}

/// Render a `stats` response. The counters stay top-level (older clients
/// keep working); the answering process identifies itself in the nested
/// `server` section.
pub fn render_stats(stats: &StatsSnapshot, server: &ServerInfo) -> String {
    stats_fields(
        JsonObject::new()
            .bool("ok", true)
            .str("op", "stats")
            .object("server", server.fields()),
        stats,
    )
    .finish()
}

/// Render a `metrics` response: the Prometheus-style exposition text is
/// carried as one escaped string field, keeping the stream NDJSON.
pub fn render_metrics(exposition: &str) -> String {
    JsonObject::new()
        .bool("ok", true)
        .str("op", "metrics")
        .str("format", "prometheus")
        .str("body", exposition)
        .finish()
}

/// Render the final `shutdown` response.
pub fn render_shutdown(stats: &StatsSnapshot) -> String {
    stats_fields(
        JsonObject::new().bool("ok", true).str("op", "shutdown"),
        stats,
    )
    .finish()
}

/// Render the final `drain` response.
pub fn render_drain(stats: &StatsSnapshot) -> String {
    stats_fields(JsonObject::new().bool("ok", true).str("op", "drain"), stats).finish()
}

/// Render a `shard_info` response: the worker's cluster shard identity
/// (absent when the server is not a cluster worker) and state directory.
pub fn render_shard_info(
    shard: Option<u64>,
    state_dir: Option<&str>,
    server: &ServerInfo,
) -> String {
    let obj = JsonObject::new().bool("ok", true).str("op", "shard_info");
    let obj = match shard {
        Some(shard) => obj.u64("shard", shard),
        None => obj,
    };
    let obj = match state_dir {
        Some(dir) => obj.str("state_dir", dir),
        None => obj,
    };
    obj.object("server", server.fields()).finish()
}

/// Render a `hello` handshake response.
pub fn render_hello(shard: Option<u64>, server: &ServerInfo) -> String {
    let obj = JsonObject::new()
        .bool("ok", true)
        .str("op", "hello")
        .u64("proto", 1);
    let obj = match shard {
        Some(shard) => obj.u64("shard", shard),
        None => obj,
    };
    obj.object("server", server.fields()).finish()
}

/// Render a `pong` liveness answer, echoing the probe's `seq`.
pub fn render_pong(seq: Option<u64>, server: &ServerInfo) -> String {
    let obj = JsonObject::new().bool("ok", true).str("op", "pong");
    let obj = match seq {
        Some(seq) => obj.u64("seq", seq),
        None => obj,
    };
    obj.u64("uptime_ms", server.uptime_ms).finish()
}

/// Re-render a parsed submit request as one wire line — the inverse of
/// [`parse_request`], used by the cluster coordinator to forward (and
/// resubmit) jobs to workers. Returns `None` when the request cannot
/// round-trip losslessly: the scoring must be a named preset with its
/// default gap model, which is the only kind the wire can express in
/// the first place, so every wire-originated request re-renders.
pub fn render_submit(req: &AlignRequest) -> Option<String> {
    let scoring_key = crate::durability::preset_key(&req.scoring)?;
    let preset = Scoring::by_name(&scoring_key)?;
    if crate::durability::gap_tuple(&preset) != crate::durability::gap_tuple(&req.scoring) {
        return None;
    }
    let mut obj = JsonObject::new().str("op", "submit");
    if !req.tag.is_empty() {
        obj = obj.str("id", &req.tag);
    }
    if !req.client.is_empty() {
        obj = obj.str("client", &req.client);
    }
    // Re-declare a uniform alphabet explicitly; mixed alphabets are
    // omitted and re-inferred per sequence, which is deterministic.
    let alphabet = req.seqs[0].alphabet();
    if req.seqs.iter().all(|s| s.alphabet() == alphabet) {
        obj = obj.str(
            "alphabet",
            match alphabet {
                Alphabet::Dna => "dna",
                Alphabet::Rna => "rna",
                Alphabet::Protein => "protein",
            },
        );
    }
    obj = obj
        .str("a", req.seqs[0].as_str())
        .str("b", req.seqs[1].as_str())
        .str("c", req.seqs[2].as_str())
        .str("scoring", &scoring_key);
    match req.algorithm {
        Algorithm::Blocked { tile } | Algorithm::TileWavefront { tile } => {
            obj = obj.u64("tile", tile as u64)
        }
        Algorithm::BlockedDataflow { tile, threads } => {
            obj = obj.u64("tile", tile as u64).u64("threads", threads as u64);
        }
        _ => {}
    }
    obj = obj.str("algorithm", req.algorithm.name());
    if req.kernel != SimdKernel::Auto {
        obj = obj.str("kernel", req.kernel.name());
    }
    if req.score_only {
        obj = obj.bool("score_only", true);
    }
    if let Some(deadline) = req.deadline {
        obj = obj.u64(
            "deadline_ms",
            deadline.as_millis().min(u64::MAX as u128) as u64,
        );
    }
    // One stamp per outgoing line: the trace context rides as a single
    // string field, so retries/hedges re-render with a fresh parent.
    if let Some(ctx) = req.trace {
        obj = obj.str("trace", &ctx.render());
    }
    Some(obj.finish())
}

fn trace_tree_json(tree: &TraceTree) -> JsonObject {
    JsonObject::new()
        .str("trace_id", &format!("{:016x}", tree.trace_id))
        .bool("notable", tree.notable)
        .objects(
            "spans",
            tree.spans
                .iter()
                .map(|s| {
                    let obj = JsonObject::new().u64("id", s.id);
                    let obj = match s.parent {
                        Some(p) => obj.u64("parent", p),
                        None => obj,
                    };
                    let obj = match s.shard {
                        Some(shard) => obj.u64("shard", shard),
                        None => obj,
                    };
                    let mut obj = obj
                        .str("name", &s.name)
                        .u64("start_us", s.start_us)
                        .u64("dur_us", s.dur_us);
                    if !s.fields.is_empty() {
                        let mut fields = JsonObject::new();
                        for (k, v) in &s.fields {
                            fields = fields.str(k, v);
                        }
                        obj = obj.object("fields", fields);
                    }
                    obj
                })
                .collect(),
        )
}

/// Render a `trace` response carrying zero or more stitched trace trees.
pub fn render_trace_response(trees: &[TraceTree]) -> String {
    JsonObject::new()
        .bool("ok", true)
        .str("op", "trace")
        .objects("traces", trees.iter().map(trace_tree_json).collect())
        .finish()
}

/// Render the `trace` refusal for a server with no flight recorder.
pub fn render_trace_unavailable() -> String {
    JsonObject::new()
        .bool("ok", false)
        .str("op", "trace")
        .str("error", "no_recorder")
        .str(
            "message",
            "flight recorder is not enabled; start with --flight-recorder N",
        )
        .finish()
}

/// Parse the trees out of a `trace` response line — the inverse of
/// [`render_trace_response`], used by the cluster coordinator to stitch
/// worker subtrees into its own and by `tsa trace` to render text. The
/// response value must be the parsed line; returns an empty vector when
/// it carries no `traces` array.
pub fn parse_trace_trees(response: &Value) -> Vec<TraceTree> {
    let Some(Value::Arr(items)) = response.get("traces") else {
        return Vec::new();
    };
    items
        .iter()
        .filter_map(|t| {
            let trace_id = u64::from_str_radix(t.get("trace_id")?.as_str()?, 16).ok()?;
            let spans = match t.get("spans") {
                Some(Value::Arr(spans)) => spans
                    .iter()
                    .filter_map(|s| {
                        Some(StitchSpan {
                            shard: s.get("shard").and_then(Value::as_u64),
                            id: s.get("id")?.as_u64()?,
                            parent: s.get("parent").and_then(Value::as_u64),
                            name: s.get("name")?.as_str()?.to_owned(),
                            start_us: s.get("start_us").and_then(Value::as_u64).unwrap_or(0),
                            dur_us: s.get("dur_us").and_then(Value::as_u64).unwrap_or(0),
                            fields: match s.get("fields") {
                                Some(Value::Obj(fields)) => fields
                                    .iter()
                                    .filter_map(|(k, v)| Some((k.clone(), v.as_str()?.to_owned())))
                                    .collect(),
                                _ => Vec::new(),
                            },
                        })
                    })
                    .collect(),
                _ => Vec::new(),
            };
            Some(TraceTree {
                trace_id,
                notable: t.get("notable").and_then(Value::as_bool).unwrap_or(false),
                spans,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::JobResult;

    #[test]
    fn parses_minimal_submit() {
        let req =
            parse_request(r#"{"op":"submit","id":"j1","a":"ACGT","b":"ACG","c":"AGT"}"#).unwrap();
        match req {
            Request::Submit(r) => {
                assert_eq!(r.tag, "j1");
                assert_eq!(r.seqs[0].residues(), b"ACGT");
                assert_eq!(r.algorithm, Algorithm::Auto);
                assert!(!r.score_only);
                assert!(r.deadline.is_none());
                assert!(r.client.is_empty());
            }
            other => panic!("expected submit, got {other:?}"),
        }
    }

    #[test]
    fn client_field_parses_and_validates() {
        let line =
            r#"{"op":"submit","id":"j1","client":"tenant-a","a":"ACGT","b":"ACG","c":"AGT"}"#;
        match parse_request(line).unwrap() {
            Request::Submit(r) => assert_eq!(r.client, "tenant-a"),
            other => panic!("expected submit, got {other:?}"),
        }
        let err = parse_request(r#"{"op":"submit","id":"j2","client":7,"a":"A","b":"C","c":"G"}"#)
            .unwrap_err();
        assert_eq!(err.id.as_deref(), Some("j2"));
        assert!(err.message.contains("client"));
    }

    #[test]
    fn parses_full_submit() {
        let line = r#"{"op":"submit","id":"x","a":"ACGT","b":"ACG","c":"AGT",
            "scoring":"unit","algorithm":"wavefront","deadline_ms":250,"score_only":true}"#;
        match parse_request(line).unwrap() {
            Request::Submit(r) => {
                assert_eq!(r.algorithm, Algorithm::Wavefront);
                assert!(r.score_only);
                assert_eq!(r.deadline, Some(Duration::from_millis(250)));
            }
            other => panic!("expected submit, got {other:?}"),
        }
    }

    #[test]
    fn kernel_field_parses_and_validates() {
        for (name, want) in [
            ("scalar", SimdKernel::Scalar),
            ("auto", SimdKernel::Auto),
            ("sse2", SimdKernel::Sse2),
            ("avx2", SimdKernel::Avx2),
            ("sse2-i16", SimdKernel::Sse2I16),
            ("avx2-i16", SimdKernel::Avx2I16),
        ] {
            let line = format!(
                r#"{{"op":"submit","id":"k","a":"ACGT","b":"ACG","c":"AGT","kernel":"{name}"}}"#
            );
            match parse_request(&line).unwrap() {
                Request::Submit(r) => assert_eq!(r.kernel, want, "{name}"),
                other => panic!("expected submit, got {other:?}"),
            }
        }
        // Absent field defaults to auto; junk is rejected with the id.
        match parse_request(r#"{"op":"submit","id":"d","a":"A","b":"C","c":"G"}"#).unwrap() {
            Request::Submit(r) => assert_eq!(r.kernel, SimdKernel::Auto),
            other => panic!("expected submit, got {other:?}"),
        }
        let err = parse_request(
            r#"{"op":"submit","id":"bad","a":"A","b":"C","c":"G","kernel":"avx512"}"#,
        )
        .unwrap_err();
        assert_eq!(err.id.as_deref(), Some("bad"));
        assert!(err.message.contains("avx512"));
    }

    #[test]
    fn protein_sequences_are_inferred() {
        let line =
            r#"{"op":"submit","id":"p","a":"MKWV","b":"MKW","c":"MWV","scoring":"blosum62"}"#;
        match parse_request(line).unwrap() {
            Request::Submit(r) => assert_eq!(r.seqs[0].alphabet(), Alphabet::Protein),
            other => panic!("expected submit, got {other:?}"),
        }
    }

    #[test]
    fn parses_stats_and_shutdown() {
        assert!(matches!(
            parse_request(r#"{"op":"stats"}"#).unwrap(),
            Request::Stats
        ));
        assert!(matches!(
            parse_request(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        ));
        assert!(matches!(
            parse_request(r#"{"op":"drain"}"#).unwrap(),
            Request::Drain
        ));
    }

    #[test]
    fn line_too_long_is_positioned_invalid_argument() {
        let err = ProtocolError::line_too_long(1024);
        assert_eq!(err.code, "invalid_argument");
        assert_eq!(err.position, Some(1024));
        let v = Value::parse(&render_protocol_error(&err)).unwrap();
        assert_eq!(v.get("error").unwrap().as_str(), Some("invalid_argument"));
        assert_eq!(v.get("position").unwrap().as_u64(), Some(1024));
        assert!(v.get("message").unwrap().as_str().unwrap().contains("1024"));
    }

    #[test]
    fn errors_echo_the_request_id() {
        let err = parse_request(r#"{"op":"submit","id":"j9","a":"ACGT","b":"ACG"}"#).unwrap_err();
        assert_eq!(err.id.as_deref(), Some("j9"));
        assert!(err.message.contains("'c'"));

        let err = parse_request(r#"{"op":"nope","id":"j2"}"#).unwrap_err();
        assert_eq!(err.id.as_deref(), Some("j2"));

        let err = parse_request("not json").unwrap_err();
        assert_eq!(err.id, None);
    }

    #[test]
    fn rejects_bad_fields() {
        for line in [
            r#"{"a":"ACGT","b":"ACG","c":"AGT"}"#,
            r#"{"op":"submit","a":"1234","b":"ACG","c":"AGT"}"#,
            r#"{"op":"submit","a":"ACGT","b":"ACG","c":"AGT","scoring":"nope"}"#,
            r#"{"op":"submit","a":"ACGT","b":"ACG","c":"AGT","algorithm":"nope"}"#,
            r#"{"op":"submit","a":"ACGT","b":"ACG","c":"AGT","deadline_ms":-5}"#,
            r#"{"op":"submit","a":"ACGT","b":"ACG","c":"AGT","score_only":"yes"}"#,
            r#"{"op":"submit","a":"ACGT","b":"ACG","c":"AGT","tile":0}"#,
        ] {
            assert!(parse_request(line).is_err(), "should reject: {line}");
        }
    }

    #[test]
    fn renders_done_outcome() {
        let done = CompletedJob {
            id: 3,
            tag: "j1".into(),
            trace_id: 0,
            outcome: JobOutcome::Done(JobResult {
                score: -7,
                rows: Some(["A-C".into(), "AGC".into(), "A-C".into()]),
                algorithm: Algorithm::Wavefront,
                degraded_from: None,
                cached: true,
                recovered: false,
                wait: Duration::from_micros(10),
                service: Duration::from_micros(20),
            }),
        };
        let line = render_outcome(&done);
        let v = Value::parse(&line).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("id").unwrap().as_str(), Some("j1"));
        assert_eq!(v.get("score").unwrap().as_i64(), Some(-7));
        assert_eq!(v.get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("algorithm").unwrap().as_str(), Some("wavefront"));
        assert!(v.get("degraded_from").is_none());
        assert!(
            v.get("recovered").is_none(),
            "recovered omitted unless true"
        );
        assert!(v.get("rows").is_some());
    }

    #[test]
    fn renders_recovered_outcome() {
        let done = CompletedJob {
            id: 5,
            tag: "r".into(),
            trace_id: 0,
            outcome: JobOutcome::Done(JobResult {
                score: 4,
                rows: None,
                algorithm: Algorithm::Wavefront,
                degraded_from: None,
                cached: true,
                recovered: true,
                wait: Duration::ZERO,
                service: Duration::ZERO,
            }),
        };
        let v = Value::parse(&render_outcome(&done)).unwrap();
        assert_eq!(v.get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("recovered").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn renders_degraded_outcome() {
        let done = CompletedJob {
            id: 4,
            tag: "g".into(),
            trace_id: 0,
            outcome: JobOutcome::Done(JobResult {
                score: 9,
                rows: None,
                algorithm: Algorithm::ParallelHirschberg,
                degraded_from: Some(Algorithm::Wavefront),
                cached: false,
                recovered: false,
                wait: Duration::ZERO,
                service: Duration::ZERO,
            }),
        };
        let v = Value::parse(&render_outcome(&done)).unwrap();
        assert_eq!(v.get("algorithm").unwrap().as_str(), Some("par-hirschberg"));
        assert_eq!(v.get("degraded_from").unwrap().as_str(), Some("wavefront"));
    }

    #[test]
    fn renders_deadline_and_errors() {
        let line = render_outcome(&CompletedJob {
            id: 1,
            tag: "d".into(),
            trace_id: 0,
            outcome: JobOutcome::DeadlineExceeded {
                stage: CancelStage::Queued,
                progress: None,
            },
        });
        let v = Value::parse(&line).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("status").unwrap().as_str(), Some("deadline"));
        assert_eq!(v.get("stage").unwrap().as_str(), Some("queued"));
        assert!(v.get("cells_done").is_none());

        let line = render_outcome(&CompletedJob {
            id: 2,
            tag: "k".into(),
            trace_id: 0,
            outcome: JobOutcome::DeadlineExceeded {
                stage: CancelStage::Kernel,
                progress: Some(tsa_core::CancelProgress {
                    cells_done: 120,
                    cells_total: 1000,
                }),
            },
        });
        let v = Value::parse(&line).unwrap();
        assert_eq!(v.get("stage").unwrap().as_str(), Some("kernel"));
        assert_eq!(v.get("cells_done").unwrap().as_u64(), Some(120));
        assert_eq!(v.get("cells_total").unwrap().as_u64(), Some(1000));

        let line = render_submit_error(
            "j3",
            &SubmitError::Overloaded {
                capacity: 4,
                retry_after_ms: 250,
                scope: "client-rate",
            },
        );
        let v = Value::parse(&line).unwrap();
        assert_eq!(v.get("error").unwrap().as_str(), Some("overloaded"));
        assert_eq!(v.get("capacity").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("scope").unwrap().as_str(), Some("client-rate"));
        assert_eq!(v.get("retry_after_ms").unwrap().as_u64(), Some(250));

        let line = render_submit_error(
            "j5",
            &SubmitError::ResourceExhausted {
                required: 4096,
                budget: 1024,
                limit: "memory-budget",
            },
        );
        let v = Value::parse(&line).unwrap();
        assert_eq!(v.get("error").unwrap().as_str(), Some("resource_exhausted"));
        assert_eq!(v.get("limit").unwrap().as_str(), Some("memory-budget"));
        assert_eq!(v.get("required").unwrap().as_u64(), Some(4096));
        assert_eq!(v.get("budget").unwrap().as_u64(), Some(1024));

        let line = render_protocol_error(&ProtocolError::new(Some("j4"), "missing 'a'"));
        let v = Value::parse(&line).unwrap();
        assert_eq!(v.get("error").unwrap().as_str(), Some("bad_request"));
        assert_eq!(v.get("id").unwrap().as_str(), Some("j4"));
        assert!(v.get("position").is_none());
    }

    #[test]
    fn declared_alphabet_is_validated_with_position() {
        // 'U' is RNA, not DNA: the declared alphabet must reject it even
        // though inference would happily call the string RNA.
        let err = parse_request(
            r#"{"op":"submit","id":"v1","alphabet":"dna","a":"ACGU","b":"ACG","c":"AGT"}"#,
        )
        .unwrap_err();
        assert_eq!(err.code, "invalid_argument");
        assert_eq!(err.position, Some(3));
        let v = Value::parse(&render_protocol_error(&err)).unwrap();
        assert_eq!(v.get("error").unwrap().as_str(), Some("invalid_argument"));
        assert_eq!(v.get("position").unwrap().as_u64(), Some(3));

        // A declared alphabet that matches passes.
        let ok = parse_request(
            r#"{"op":"submit","id":"v2","alphabet":"rna","a":"ACGU","b":"ACG","c":"AGU"}"#,
        );
        assert!(ok.is_ok());

        // Unknown alphabet names are malformed requests.
        let err = parse_request(
            r#"{"op":"submit","id":"v3","alphabet":"klingon","a":"ACGT","b":"ACG","c":"AGT"}"#,
        )
        .unwrap_err();
        assert_eq!(err.code, "bad_request");
    }

    #[test]
    fn undeclared_junk_sequence_reports_position() {
        let err = parse_request(r#"{"op":"submit","id":"v4","a":"AC!T","b":"ACG","c":"AGT"}"#)
            .unwrap_err();
        assert_eq!(err.code, "invalid_argument");
        assert_eq!(err.position, Some(2));
    }

    #[test]
    fn renders_stats() {
        let stats = StatsSnapshot {
            submitted: 5,
            completed: 3,
            rejected: 1,
            cancelled: 1,
            failed: 0,
            cache_hits: 2,
            cache_misses: 1,
            panics: 1,
            respawns: 1,
            downgraded: 2,
            recovered: 4,
            resumed: 1,
            restarted: 2,
            cache_recovered_hits: 3,
            simd_jobs: 2,
            shed: 4,
            integrity_quarantined: 1,
            lanes: Vec::new(),
            queue_depth: 0,
            latency_p50_us: 64,
            latency_p90_us: 128,
            latency_p95_us: 192,
            latency_p99_us: 256,
            queue_wait_p50_us: 8,
            queue_wait_p95_us: 12,
            queue_wait_p99_us: 16,
            kernel_p50_us: 32,
            kernel_p95_us: 64,
            kernel_p99_us: 128,
            latency_buckets: vec![0, 2, 1],
            queue_wait_buckets: vec![3],
            kernel_buckets: vec![],
        };
        let server = ServerInfo {
            version: "9.9.9",
            pid: 4242,
            uptime_ms: 1500,
        };
        let v = Value::parse(&render_stats(&stats, &server)).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("stats"));
        let srv = v.get("server").expect("server section present");
        assert_eq!(srv.get("version").unwrap().as_str(), Some("9.9.9"));
        assert_eq!(srv.get("pid").unwrap().as_u64(), Some(4242));
        assert_eq!(srv.get("uptime_ms").unwrap().as_u64(), Some(1500));
        assert_eq!(v.get("submitted").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("panics").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("respawns").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("downgraded").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("recovered").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("resumed").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("restarted").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("cache_recovered_hits").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("simd_jobs").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("shed").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("integrity_quarantined").unwrap().as_u64(), Some(1));
        assert!(v.get("lanes").is_none(), "empty lane set is not rendered");
        assert_eq!(v.get("latency_p95_us").unwrap().as_u64(), Some(192));
        assert_eq!(v.get("latency_p99_us").unwrap().as_u64(), Some(256));
        assert_eq!(v.get("queue_wait_p95_us").unwrap().as_u64(), Some(12));
        assert_eq!(v.get("kernel_p95_us").unwrap().as_u64(), Some(64));
        assert_eq!(v.get("queue_wait_p99_us").unwrap().as_u64(), Some(16));
        assert_eq!(v.get("kernel_p50_us").unwrap().as_u64(), Some(32));
        match v.get("latency_buckets").unwrap() {
            Value::Arr(items) => {
                let counts: Vec<u64> = items.iter().map(|i| i.as_u64().unwrap()).collect();
                assert_eq!(counts, vec![0, 2, 1]);
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert!(matches!(v.get("kernel_buckets"), Some(Value::Arr(a)) if a.is_empty()));
        let v = Value::parse(&render_shutdown(&stats)).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("shutdown"));
        let v = Value::parse(&render_drain(&stats)).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("drain"));
        assert_eq!(v.get("resumed").unwrap().as_u64(), Some(1));

        // With named lanes present, stats carry a per-client array.
        let mut stats = stats;
        stats.lanes = vec![crate::stats::LaneSnapshot {
            client: "tenant-a".to_owned(),
            queued: 2,
            in_flight: 1,
            submitted: 9,
            rejected: 3,
        }];
        let v = Value::parse(&render_stats(&stats, &server)).unwrap();
        match v.get("lanes").unwrap() {
            Value::Arr(items) => {
                assert_eq!(items.len(), 1);
                let lane = &items[0];
                assert_eq!(lane.get("client").unwrap().as_str(), Some("tenant-a"));
                assert_eq!(lane.get("queued").unwrap().as_u64(), Some(2));
                assert_eq!(lane.get("in_flight").unwrap().as_u64(), Some(1));
                assert_eq!(lane.get("submitted").unwrap().as_u64(), Some(9));
                assert_eq!(lane.get("rejected").unwrap().as_u64(), Some(3));
            }
            other => panic!("expected lanes array, got {other:?}"),
        }
    }

    #[test]
    fn parses_cluster_ops() {
        assert!(matches!(
            parse_request(r#"{"op":"shard_info"}"#).unwrap(),
            Request::ShardInfo
        ));
        assert!(matches!(
            parse_request(r#"{"op":"hello"}"#).unwrap(),
            Request::Hello
        ));
        assert!(matches!(
            parse_request(r#"{"op":"ping","seq":7}"#).unwrap(),
            Request::Ping { seq: Some(7) }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"ping"}"#).unwrap(),
            Request::Ping { seq: None }
        ));
    }

    #[test]
    fn renders_cluster_op_responses() {
        let server = ServerInfo {
            version: "1.2.3",
            pid: 99,
            uptime_ms: 12,
        };
        let v = Value::parse(&render_shard_info(Some(3), Some("/tmp/s3"), &server)).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("shard_info"));
        assert_eq!(v.get("shard").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("state_dir").unwrap().as_str(), Some("/tmp/s3"));
        assert_eq!(
            v.get("server").unwrap().get("pid").unwrap().as_u64(),
            Some(99)
        );

        let v = Value::parse(&render_shard_info(None, None, &server)).unwrap();
        assert!(v.get("shard").is_none());
        assert!(v.get("state_dir").is_none());

        let v = Value::parse(&render_hello(Some(1), &server)).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("hello"));
        assert_eq!(v.get("proto").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("shard").unwrap().as_u64(), Some(1));

        let v = Value::parse(&render_pong(Some(41), &server)).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("pong"));
        assert_eq!(v.get("seq").unwrap().as_u64(), Some(41));
        assert_eq!(v.get("uptime_ms").unwrap().as_u64(), Some(12));
    }

    #[test]
    fn submit_round_trips_through_render() {
        let line = r#"{"op":"submit","id":"rt#1","client":"tenant-a","alphabet":"dna",
            "a":"ACGT","b":"ACG","c":"AGT",
            "scoring":"unit","algorithm":"wavefront","kernel":"scalar",
            "deadline_ms":250,"score_only":true}"#;
        let Request::Submit(req) = parse_request(line).unwrap() else {
            panic!("expected submit");
        };
        let rendered = render_submit(&req).expect("wire request re-renders");
        let Request::Submit(again) = parse_request(&rendered).unwrap() else {
            panic!("expected submit");
        };
        assert_eq!(again.tag, req.tag);
        assert_eq!(again.seqs[0].residues(), req.seqs[0].residues());
        assert_eq!(again.algorithm, req.algorithm);
        assert_eq!(again.kernel, req.kernel);
        assert_eq!(again.score_only, req.score_only);
        assert_eq!(again.deadline, req.deadline);
        assert_eq!(again.client, "tenant-a");
        assert_eq!(
            crate::durability::job_uid(&again),
            crate::durability::job_uid(&req),
            "identity is preserved across the round trip"
        );

        // Blocked algorithms carry their tile through the round trip.
        let line = r#"{"op":"submit","id":"t","a":"ACGT","b":"ACG","c":"AGT",
            "algorithm":"blocked","tile":8}"#;
        let Request::Submit(req) = parse_request(line).unwrap() else {
            panic!("expected submit");
        };
        let Request::Submit(again) = parse_request(&render_submit(&req).unwrap()).unwrap() else {
            panic!("expected submit");
        };
        assert_eq!(again.algorithm, Algorithm::Blocked { tile: 8 });

        // So do tile-wavefront jobs.
        let line = r#"{"op":"submit","id":"tw","a":"ACGT","b":"ACG","c":"AGT",
            "algorithm":"tile-wavefront","tile":16,"kernel":"avx2-i16"}"#;
        let Request::Submit(req) = parse_request(line).unwrap() else {
            panic!("expected submit");
        };
        let Request::Submit(again) = parse_request(&render_submit(&req).unwrap()).unwrap() else {
            panic!("expected submit");
        };
        assert_eq!(again.algorithm, Algorithm::TileWavefront { tile: 16 });
        assert_eq!(again.kernel, SimdKernel::Avx2I16);

        // A custom matrix cannot be expressed on the wire: no render.
        let custom = AlignRequest::new(
            "c",
            Seq::dna("ACGT").unwrap(),
            Seq::dna("ACG").unwrap(),
            Seq::dna("AGT").unwrap(),
        )
        .scoring(Scoring::new(
            tsa_scoring::SubstMatrix::match_mismatch("house-rules", 3, -3),
            tsa_scoring::GapModel::linear(-4),
        ));
        assert!(render_submit(&custom).is_none());
    }

    #[test]
    fn renders_metrics_as_parseable_json() {
        let exposition = "# HELP tsa_jobs_submitted_total Submissions.\n# TYPE tsa_jobs_submitted_total counter\ntsa_jobs_submitted_total 3\n";
        let line = render_metrics(exposition);
        assert!(!line.contains('\n'), "metrics response stays one line");
        let v = Value::parse(&line).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("op").unwrap().as_str(), Some("metrics"));
        assert_eq!(v.get("format").unwrap().as_str(), Some("prometheus"));
        assert_eq!(v.get("body").unwrap().as_str(), Some(exposition));
    }
}
