//! Sharded LRU cache of alignment results.
//!
//! Keyed by the content of the three sequences (two independent 64-bit
//! FNV-1a digests each, plus lengths — a 128-bit fingerprint per
//! sequence, so storing the sequences themselves is unnecessary), the
//! scoring scheme, the *resolved* algorithm, and whether the job was
//! score-only. Sharding by key hash keeps lock contention low under a
//! many-worker pool; each shard is an independent LRU evicting by
//! least-recently-used tick.

use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use tsa_core::Algorithm;
use tsa_scoring::Scoring;
use tsa_seq::Seq;

/// FNV-1a with a selectable offset basis, so two independent digests make
/// sequence-content collisions astronomically unlikely.
fn fnv1a(basis: u64, bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = basis;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn seq_fingerprint(seq: &Seq) -> [u64; 2] {
    let content = || {
        seq.alphabet()
            .name()
            .bytes()
            .chain(std::iter::once(0))
            .chain(seq.residues().iter().copied())
    };
    [
        fnv1a(0xCBF2_9CE4_8422_2325, content()),
        fnv1a(0x6C62_272E_07BB_0142, content()),
    ]
}

/// What identifies a cachable unit of work.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    seqs: [[u64; 2]; 3],
    lens: [usize; 3],
    matrix: &'static str,
    /// `(0, g, 0)` for linear gap `g`; `(1, open, extend)` for affine.
    gap: (u8, i32, i32),
    /// Canonical name of the algorithm that actually ran (post-`Auto`).
    algorithm: &'static str,
    score_only: bool,
}

impl CacheKey {
    /// Build the key for a request. `resolved` must be the post-`Auto`
    /// algorithm so that an `auto` submission and an explicit submission
    /// of the same work share an entry.
    pub fn new(
        a: &Seq,
        b: &Seq,
        c: &Seq,
        scoring: &Scoring,
        resolved: Algorithm,
        score_only: bool,
    ) -> Self {
        let gap = match scoring.gap.linear_penalty() {
            Some(g) => (0, g, 0),
            None => (1, scoring.gap.open_penalty(), scoring.gap.extend_penalty()),
        };
        CacheKey {
            seqs: [seq_fingerprint(a), seq_fingerprint(b), seq_fingerprint(c)],
            lens: [a.len(), b.len(), c.len()],
            matrix: scoring.matrix.name(),
            gap,
            algorithm: resolved.name(),
            score_only,
        }
    }

    fn shard_of(&self, shards: usize) -> usize {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        (h.finish() % shards as u64) as usize
    }
}

/// Content checksum of an alignment result: a double-separated FNV-1a
/// fold over the score, the resolved algorithm name, and the gapped rows
/// (with an explicit present/absent marker so a score-only entry can
/// never alias a full alignment). Stored alongside every cache entry and
/// journal `done` record; verified before any cached or recovered result
/// is served, so a flipped bit anywhere in the payload quarantines the
/// entry instead of reaching a client.
pub fn result_checksum(score: i32, rows: Option<&[String; 3]>, algorithm: Algorithm) -> u64 {
    let mut h = fnv1a(0xCBF2_9CE4_8422_2325, score.to_le_bytes());
    h = fnv1a(h, algorithm.name().bytes().chain(std::iter::once(0)));
    match rows {
        None => fnv1a(h, [0u8]),
        Some(rows) => {
            h = fnv1a(h, [1u8]);
            for row in rows {
                h = fnv1a(h, row.bytes().chain(std::iter::once(0)));
            }
            h
        }
    }
}

/// A cached alignment outcome.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// Alignment score.
    pub score: i32,
    /// Aligned rows, absent for score-only entries.
    pub rows: Option<[String; 3]>,
    /// The algorithm that produced the entry.
    pub algorithm: Algorithm,
    /// Whether the entry was preloaded from the crash journal on startup
    /// rather than computed by this process.
    pub recovered: bool,
    /// [`result_checksum`] of the payload, computed when the entry was
    /// stored. A hit whose recomputed checksum disagrees is corrupt and
    /// must be quarantined (removed and recomputed), never served.
    pub checksum: u64,
}

impl CachedResult {
    /// True when the stored checksum still matches the payload.
    pub fn verify(&self) -> bool {
        self.checksum == result_checksum(self.score, self.rows.as_ref(), self.algorithm)
    }
}

#[derive(Debug)]
struct Entry {
    value: CachedResult,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<CacheKey, Entry>,
}

/// The sharded LRU store. Capacity 0 disables caching entirely.
#[derive(Debug)]
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    tick: AtomicU64,
}

impl ResultCache {
    /// A cache holding about `capacity` entries across `shards` shards
    /// (each shard gets `ceil(capacity / shards)`).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        ResultCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity: capacity.div_ceil(shards),
            tick: AtomicU64::new(0),
        }
    }

    /// Whether caching is enabled.
    pub fn enabled(&self) -> bool {
        self.shard_capacity > 0
    }

    /// Look up a key, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<CachedResult> {
        if !self.enabled() {
            return None;
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shards[key.shard_of(self.shards.len())].lock();
        let entry = shard.map.get_mut(key)?;
        entry.last_used = tick;
        Some(entry.value.clone())
    }

    /// Insert (or refresh) an entry, evicting the least-recently-used
    /// entry of the target shard when it is full.
    pub fn put(&self, key: CacheKey, value: CachedResult) {
        if !self.enabled() {
            return;
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shards[key.shard_of(self.shards.len())].lock();
        if shard.map.len() >= self.shard_capacity && !shard.map.contains_key(&key) {
            if let Some(evict) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                shard.map.remove(&evict);
            }
        }
        shard.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
    }

    /// Drop an entry (integrity quarantine: a corrupt value must not be
    /// served to the next hit). Returns whether an entry was present.
    pub fn remove(&self, key: &CacheKey) -> bool {
        if !self.enabled() {
            return false;
        }
        let mut shard = self.shards[key.shard_of(self.shards.len())].lock();
        shard.map.remove(key).is_some()
    }

    /// Total entries currently stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsa_scoring::GapModel;

    fn key(seq: &str, alg: Algorithm) -> CacheKey {
        let s = Seq::dna(seq).unwrap();
        CacheKey::new(&s, &s, &s, &Scoring::dna_default(), alg, false)
    }

    fn result(score: i32) -> CachedResult {
        CachedResult {
            score,
            rows: None,
            algorithm: Algorithm::Wavefront,
            recovered: false,
            checksum: result_checksum(score, None, Algorithm::Wavefront),
        }
    }

    #[test]
    fn same_content_same_key_different_content_different_key() {
        assert_eq!(
            key("ACGT", Algorithm::Wavefront),
            key("ACGT", Algorithm::Wavefront)
        );
        assert_ne!(
            key("ACGT", Algorithm::Wavefront),
            key("ACGA", Algorithm::Wavefront)
        );
        assert_ne!(
            key("ACGT", Algorithm::Wavefront),
            key("ACGT", Algorithm::FullDp)
        );
    }

    #[test]
    fn scoring_is_part_of_the_key() {
        let s = Seq::dna("ACGT").unwrap();
        let linear = Scoring::dna_default();
        let affine = Scoring::dna_default().with_gap(GapModel::affine(-4, -1));
        let unit = Scoring::unit();
        let k1 = CacheKey::new(&s, &s, &s, &linear, Algorithm::Wavefront, false);
        let k2 = CacheKey::new(&s, &s, &s, &affine, Algorithm::Wavefront, false);
        let k3 = CacheKey::new(&s, &s, &s, &unit, Algorithm::Wavefront, false);
        let k4 = CacheKey::new(&s, &s, &s, &linear, Algorithm::Wavefront, true);
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
        assert_ne!(k1, k4);
    }

    #[test]
    fn alphabet_distinguishes_identical_letters() {
        let d = Seq::dna("ACGG").unwrap();
        let p = Seq::protein("ACGG").unwrap();
        let sc = Scoring::unit();
        assert_ne!(
            CacheKey::new(&d, &d, &d, &sc, Algorithm::FullDp, false),
            CacheKey::new(&p, &p, &p, &sc, Algorithm::FullDp, false)
        );
    }

    #[test]
    fn get_put_round_trip() {
        let cache = ResultCache::new(8, 2);
        let k = key("ACGT", Algorithm::Wavefront);
        assert!(cache.get(&k).is_none());
        cache.put(k.clone(), result(42));
        assert_eq!(cache.get(&k).unwrap().score, 42);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = ResultCache::new(0, 4);
        assert!(!cache.enabled());
        let k = key("ACGT", Algorithm::Wavefront);
        cache.put(k.clone(), result(1));
        assert!(cache.get(&k).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        // Single shard so eviction order is fully observable.
        let cache = ResultCache::new(2, 1);
        let ka = key("AAAA", Algorithm::Wavefront);
        let kb = key("CCCC", Algorithm::Wavefront);
        let kc = key("GGGG", Algorithm::Wavefront);
        cache.put(ka.clone(), result(1));
        cache.put(kb.clone(), result(2));
        // Touch A so B is the LRU entry, then insert C.
        assert!(cache.get(&ka).is_some());
        cache.put(kc.clone(), result(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&ka).is_some(), "recently used survives");
        assert!(cache.get(&kb).is_none(), "LRU entry evicted");
        assert!(cache.get(&kc).is_some());
    }

    #[test]
    fn checksum_separates_payload_shapes() {
        let rows = [
            "AC-GT".to_string(),
            "ACG-T".to_string(),
            "ACGT-".to_string(),
        ];
        let full = result_checksum(7, Some(&rows), Algorithm::Wavefront);
        assert_eq!(full, result_checksum(7, Some(&rows), Algorithm::Wavefront));
        assert_ne!(full, result_checksum(8, Some(&rows), Algorithm::Wavefront));
        assert_ne!(full, result_checksum(7, None, Algorithm::Wavefront));
        assert_ne!(full, result_checksum(7, Some(&rows), Algorithm::FullDp));
        let shifted = [
            "AC-GTA".to_string(),
            "CG-T".to_string(),
            "ACGT-".to_string(),
        ];
        assert_ne!(
            full,
            result_checksum(7, Some(&shifted), Algorithm::Wavefront),
            "row boundaries are part of the digest"
        );
    }

    #[test]
    fn verify_catches_a_flipped_payload() {
        let mut r = result(42);
        assert!(r.verify());
        r.score ^= 1;
        assert!(!r.verify(), "score flip breaks the checksum");
        let mut r = result(42);
        r.rows = Some(["A".into(), "A".into(), "A".into()]);
        assert!(!r.verify(), "rows appearing breaks a score-only checksum");
    }

    #[test]
    fn remove_quarantines_an_entry() {
        let cache = ResultCache::new(8, 2);
        let k = key("ACGT", Algorithm::Wavefront);
        cache.put(k.clone(), result(1));
        assert!(cache.remove(&k));
        assert!(cache.get(&k).is_none());
        assert!(!cache.remove(&k), "second remove finds nothing");
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let cache = ResultCache::new(2, 1);
        let ka = key("AAAA", Algorithm::Wavefront);
        let kb = key("CCCC", Algorithm::Wavefront);
        cache.put(ka.clone(), result(1));
        cache.put(kb.clone(), result(2));
        cache.put(ka.clone(), result(9));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&ka).unwrap().score, 9);
        assert!(cache.get(&kb).is_some());
    }
}
