//! Crash-safe durability: a fsync'd append-only NDJSON job journal plus a
//! per-job checkpoint store, giving `tsa serve --state-dir` restartable
//! semantics.
//!
//! ## Journal invariants
//!
//! The journal at `<state-dir>/journal.ndjson` is append-only while the
//! engine runs; each record is one JSON object terminated by `\n` and
//! fsync'd before the operation it describes is acknowledged:
//!
//! * `{"ev":"job", ...}` — a job was admitted. The record carries the
//!   full request (sequences, scoring, algorithm, score-only flag) so a
//!   restarted process can resubmit it verbatim.
//! * `{"ev":"done", ...}` — the job produced a result (score and, for
//!   alignment jobs, the gapped rows). Recovery preloads these into the
//!   result cache.
//! * `{"ev":"gone", ...}` — the job resolved without a reusable result
//!   (cancelled, failed, deadline, worker death). Recovery drops it.
//!
//! Records are keyed by a content `uid` (two independent FNV-1a digests
//! over the request). A `job` with neither `done` nor `gone` is
//! *in-flight*: recovery resubmits it, resuming from its checkpoint
//! snapshot when one exists and validates. A torn trailing line (the
//! process died mid-append) is ignored; on startup the journal is
//! compacted — resolved noise is dropped and only live records are
//! rewritten — then reopened for appending.
//!
//! ## Checkpoint store
//!
//! Durable kernels stream [`FrontierSnapshot`]s through a [`FileSink`]
//! at `<state-dir>/checkpoints/<uid>.ckpt`. Writes go to a temp file,
//! fsync, then rename, so a crash mid-write never corrupts the previous
//! snapshot. Snapshots are checksummed and carry the job fingerprint;
//! recovery re-verifies both before resuming (the `resumed` rung) and
//! falls back to a clean re-run otherwise (the `restarted` rung).

use crate::cache::result_checksum;
use crate::engine::AlignRequest;
use crate::error::JobResult;
use crate::json::{JsonObject, Value};
use parking_lot::Mutex;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use tsa_core::{Algorithm, CheckpointPolicy, CheckpointSink, FrontierSnapshot};
use tsa_scoring::{GapModel, Scoring};
use tsa_seq::{Alphabet, Seq};

/// Layout of a `--state-dir`: the journal file plus a checkpoint
/// directory.
#[derive(Debug)]
pub(crate) struct StateDir {
    root: PathBuf,
}

impl StateDir {
    fn create(root: &Path) -> io::Result<StateDir> {
        fs::create_dir_all(root.join("checkpoints"))?;
        Ok(StateDir { root: root.into() })
    }

    fn journal_path(&self) -> PathBuf {
        self.root.join("journal.ndjson")
    }

    fn checkpoint_path(&self, uid: &str) -> PathBuf {
        self.root.join("checkpoints").join(format!("{uid}.ckpt"))
    }
}

/// A [`CheckpointSink`] persisting snapshots to one file, atomically:
/// temp file → fsync → rename.
#[derive(Debug)]
pub(crate) struct FileSink {
    path: PathBuf,
}

impl CheckpointSink for FileSink {
    fn store(&self, snapshot: &FrontierSnapshot) -> io::Result<()> {
        let tmp = self.path.with_extension("ckpt.tmp");
        let mut f = File::create(&tmp)?;
        f.write_all(&snapshot.encode())?;
        f.sync_all()?;
        fs::rename(&tmp, &self.path)
    }
}

/// FNV-1a with a selectable offset basis (same construction as the
/// result cache's fingerprints).
fn fnv1a(basis: u64, bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = basis;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

pub(crate) fn gap_tuple(scoring: &Scoring) -> (u8, i32, i32) {
    match scoring.gap.linear_penalty() {
        Some(g) => (0, g, 0),
        None => (1, scoring.gap.open_penalty(), scoring.gap.extend_penalty()),
    }
}

fn uid_digest(req: &AlignRequest, include_tag: bool) -> String {
    let content = || {
        let mut bytes: Vec<u8> = Vec::new();
        if include_tag {
            bytes.extend_from_slice(req.tag.as_bytes());
            bytes.push(0xFF);
        }
        for seq in &req.seqs {
            bytes.extend_from_slice(seq.alphabet().name().as_bytes());
            bytes.push(0);
            bytes.extend_from_slice(seq.residues());
            bytes.push(0xFF);
        }
        bytes.extend_from_slice(req.scoring.matrix.name().as_bytes());
        bytes.push(0);
        let (kind, open, extend) = gap_tuple(&req.scoring);
        bytes.push(kind);
        bytes.extend_from_slice(&open.to_le_bytes());
        bytes.extend_from_slice(&extend.to_le_bytes());
        bytes.extend_from_slice(req.algorithm.name().as_bytes());
        bytes.push(req.score_only as u8);
        bytes
    };
    format!(
        "{:016x}{:016x}",
        fnv1a(0xCBF2_9CE4_8422_2325, content()),
        fnv1a(0x6C62_272E_07BB_0142, content())
    )
}

/// Content identity of a journaled job: 32 hex chars from two
/// independent FNV-1a digests over the full request, tag included.
pub(crate) fn job_uid(req: &AlignRequest) -> String {
    uid_digest(req, true)
}

/// Tag-independent content identity: the same digest with the client's
/// id excluded, so resubmissions of the same sequences/scoring/algorithm
/// under different ids collapse to one value. This is what the cluster
/// coordinator routes by — it follows the result cache's content-only
/// keying, so every repeat lands on the shard whose cache is warm.
pub fn content_uid(req: &AlignRequest) -> String {
    uid_digest(req, false)
}

/// The `Scoring::by_name` key this scoring's matrix journals under, if
/// any. Preset display names differ in case from their lookup keys
/// (`"BLOSUM62"` vs `"blosum62"`), so the key is the lowercased display
/// name — accepted only when the tables actually agree, so a *custom*
/// matrix that merely reuses a preset's name is not mis-recovered as
/// the preset.
pub(crate) fn preset_key(scoring: &Scoring) -> Option<String> {
    let key = scoring.matrix.name().to_ascii_lowercase();
    let preset = Scoring::by_name(&key)?;
    let same_table = (0..=255u8)
        .all(|a| (0..=255u8).all(|b| preset.matrix.sub(a, b) == scoring.matrix.sub(a, b)));
    same_table.then_some(key)
}

/// Whether a request can round-trip through the journal: the scoring
/// must come from a named preset (plus any gap override) and every
/// field must be reconstructible. Custom matrices are served normally
/// but not journaled.
pub(crate) fn journalable(req: &AlignRequest) -> bool {
    preset_key(&req.scoring).is_some()
}

/// The fsync'd append-only journal.
#[derive(Debug)]
struct Journal {
    file: Mutex<File>,
}

impl Journal {
    fn open_append(path: &Path) -> io::Result<Journal> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal {
            file: Mutex::new(file),
        })
    }

    fn append(&self, line: &str) -> io::Result<()> {
        let mut f = self.file.lock();
        f.write_all(line.as_bytes())?;
        f.write_all(b"\n")?;
        f.sync_data()
    }

    fn sync(&self) -> io::Result<()> {
        self.file.lock().sync_all()
    }
}

/// An unresolved job replayed from the journal.
#[derive(Debug)]
pub(crate) struct RecoveredJob {
    pub uid: String,
    pub req: AlignRequest,
}

/// A completed job replayed from the journal, ready for cache preload.
#[derive(Debug)]
pub(crate) struct RecoveredDone {
    pub req: AlignRequest,
    pub score: i32,
    pub rows: Option<[String; 3]>,
    pub algorithm: Algorithm,
}

/// Everything the startup replay learned from the journal.
#[derive(Debug, Default)]
pub(crate) struct Replay {
    pub completed: Vec<RecoveredDone>,
    pub inflight: Vec<RecoveredJob>,
    /// `done` records refused during replay because their content
    /// checksum was missing or wrong — each job falls back to in-flight
    /// (re-run) instead of preloading a possibly corrupt result.
    /// Cumulative across this journal's generations: compaction writes
    /// the tally into the rewritten journal so a later restart still
    /// reports quarantines it can no longer see.
    pub quarantined: u64,
    /// Corrupt checkpoint snapshots deleted by the scrub at open.
    pub scrubbed: u64,
}

fn parse_alphabet(name: &str) -> Option<Alphabet> {
    match name {
        "DNA" => Some(Alphabet::Dna),
        "RNA" => Some(Alphabet::Rna),
        "protein" => Some(Alphabet::Protein),
        _ => None,
    }
}

fn parse_algorithm(name: &str) -> Option<Algorithm> {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    Algorithm::by_name(name, 16, threads)
}

fn job_record(uid: &str, req: &AlignRequest) -> String {
    let (gap_kind, gap_open, gap_extend) = gap_tuple(&req.scoring);
    let mut obj = JsonObject::new()
        .str("ev", "job")
        .str("uid", uid)
        .str("tag", &req.tag);
    for (field, alpha_field, seq) in [
        ("a", "alpha_a", &req.seqs[0]),
        ("b", "alpha_b", &req.seqs[1]),
        ("c", "alpha_c", &req.seqs[2]),
    ] {
        obj = obj
            .str(field, seq.as_str())
            .str(alpha_field, seq.alphabet().name());
    }
    // `journalable` gating guarantees the lowercased name is a preset
    // key whose table matches this matrix.
    obj.str("matrix", &req.scoring.matrix.name().to_ascii_lowercase())
        .u64("gap_kind", gap_kind as u64)
        .i64("gap_open", gap_open as i64)
        .i64("gap_extend", gap_extend as i64)
        .str("algorithm", req.algorithm.name())
        .bool("score_only", req.score_only)
        .finish()
}

/// Render one `done` line. The `ck` field is the payload's
/// [`result_checksum`] in hex; replay refuses to preload any record
/// whose stored checksum is missing or disagrees with a recomputation,
/// so a bit flipped on disk quarantines the record instead of serving a
/// wrong score.
fn done_line(uid: &str, score: i32, rows: Option<&[String; 3]>, algorithm: Algorithm) -> String {
    let ck = result_checksum(score, rows, algorithm);
    let obj = JsonObject::new()
        .str("ev", "done")
        .str("uid", uid)
        .i64("score", score as i64)
        .str("algorithm", algorithm.name())
        .str("ck", &format!("{ck:016x}"));
    match rows {
        Some(rows) => obj.str_array("rows", rows.as_slice()).finish(),
        None => obj.finish(),
    }
}

fn done_record(uid: &str, result: &JobResult) -> String {
    done_line(uid, result.score, result.rows.as_ref(), result.algorithm)
}

fn gone_record(uid: &str) -> String {
    JsonObject::new().str("ev", "gone").str("uid", uid).finish()
}

/// Render the cumulative-quarantine meta record compaction carries
/// forward, so the count survives journal rewrites and process
/// restarts.
fn quarantined_record(n: u64) -> String {
    JsonObject::new()
        .str("ev", "quarantined")
        .u64("n", n)
        .finish()
}

fn parse_job_record(v: &Value) -> Option<AlignRequest> {
    let text = |field: &str| v.get(field).and_then(Value::as_str);
    let mut seqs = Vec::with_capacity(3);
    for (field, alpha_field) in [("a", "alpha_a"), ("b", "alpha_b"), ("c", "alpha_c")] {
        let alphabet = parse_alphabet(text(alpha_field)?)?;
        seqs.push(Seq::new(field, alphabet, text(field)?.as_bytes()).ok()?);
    }
    let scoring = Scoring::by_name(text("matrix")?)?;
    let gap = match v.get("gap_kind").and_then(Value::as_u64)? {
        0 => GapModel::linear(v.get("gap_open").and_then(Value::as_i64)? as i32),
        1 => GapModel::affine(
            v.get("gap_open").and_then(Value::as_i64)? as i32,
            v.get("gap_extend").and_then(Value::as_i64)? as i32,
        ),
        _ => return None,
    };
    let [a, b, c]: [Seq; 3] = seqs.try_into().ok()?;
    let mut req = AlignRequest::new(text("tag")?, a, b, c)
        .scoring(scoring.with_gap(gap))
        .algorithm(parse_algorithm(text("algorithm")?)?);
    req.score_only = v.get("score_only").and_then(Value::as_bool)?;
    Some(req)
}

#[derive(Debug)]
struct DoneInfo {
    score: i32,
    rows: Option<[String; 3]>,
    algorithm: Algorithm,
}

fn parse_done_record(v: &Value) -> Option<DoneInfo> {
    let rows = match v.get("rows") {
        None => None,
        Some(Value::Arr(items)) if items.len() == 3 => {
            let mut rows: Vec<String> = Vec::with_capacity(3);
            for item in items {
                rows.push(item.as_str()?.to_owned());
            }
            Some([rows.remove(0), rows.remove(0), rows.remove(0)])
        }
        Some(_) => return None,
    };
    Some(DoneInfo {
        score: v.get("score").and_then(Value::as_i64)? as i32,
        rows,
        algorithm: parse_algorithm(v.get("algorithm").and_then(Value::as_str)?)?,
    })
}

/// True when the record's stored `ck` matches a recomputation over its
/// payload. Records without a `ck` (pre-checksum journals, or a flip
/// that mangled the field itself) fail closed: they are quarantined and
/// the job re-runs rather than trusting an unverifiable result.
fn done_record_verified(v: &Value, info: &DoneInfo) -> bool {
    v.get("ck")
        .and_then(Value::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .is_some_and(|ck| ck == result_checksum(info.score, info.rows.as_ref(), info.algorithm))
}

/// Replay the journal, tolerating a torn (or otherwise malformed)
/// trailing line: bad lines are skipped, later records win.
fn replay_journal(path: &Path) -> io::Result<Replay> {
    #[derive(Default)]
    struct Slot {
        req: Option<AlignRequest>,
        done: Option<DoneInfo>,
        gone: bool,
    }
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Replay::default()),
        Err(e) => return Err(e),
    };
    let mut order: Vec<String> = Vec::new();
    let mut quarantined = 0u64;
    let mut slots: std::collections::HashMap<String, Slot> = std::collections::HashMap::new();
    for line in BufReader::new(file).split(b'\n') {
        let line = line?;
        let Ok(text) = std::str::from_utf8(&line) else {
            continue;
        };
        if text.trim().is_empty() {
            continue;
        }
        let Ok(v) = Value::parse(text) else {
            continue;
        };
        let Some(ev) = v.get("ev").and_then(Value::as_str) else {
            continue;
        };
        // The carried-forward quarantine tally from earlier generations
        // of this journal (written by compaction). Without it a respawn
        // after the respawn that *did* the quarantining would reset the
        // count to zero — the corrupt records are gone from the clean
        // compacted journal — and `integrity_quarantined` would
        // under-report across restarts.
        if ev == "quarantined" {
            quarantined += v.get("n").and_then(Value::as_u64).unwrap_or(0);
            continue;
        }
        let Some(uid) = v.get("uid").and_then(Value::as_str) else {
            continue;
        };
        let slot = slots.entry(uid.to_owned()).or_insert_with(|| {
            order.push(uid.to_owned());
            Slot::default()
        });
        match ev {
            "job" => {
                if let Some(req) = parse_job_record(&v) {
                    // A resubmission after completion re-opens the slot.
                    slot.req = Some(req);
                    slot.gone = false;
                }
            }
            "done" => match parse_done_record(&v) {
                Some(done) if done_record_verified(&v, &done) => {
                    slot.done = Some(done);
                    slot.gone = false;
                }
                // Structurally broken or checksum-failed: quarantine.
                // The slot keeps its `job` record, so the work re-runs
                // instead of a corrupt result being preloaded.
                _ => quarantined += 1,
            },
            "gone" => slot.gone = true,
            _ => {}
        }
    }
    let mut replay = Replay {
        quarantined,
        ..Replay::default()
    };
    for uid in order {
        let slot = slots.remove(&uid).expect("slot recorded");
        if slot.gone {
            continue;
        }
        match (slot.req, slot.done) {
            (Some(req), Some(done)) => replay.completed.push(RecoveredDone {
                req,
                score: done.score,
                rows: done.rows,
                algorithm: done.algorithm,
            }),
            (Some(req), None) => replay.inflight.push(RecoveredJob { uid, req }),
            // A `done` whose `job` record was lost cannot rebuild a cache
            // key; drop it.
            _ => {}
        }
    }
    Ok(replay)
}

/// The engine's durability handle: state directory, journal, the drain
/// flag every durable kernel polls, and the checkpoint pacing policy.
#[derive(Debug)]
pub(crate) struct Durability {
    state: StateDir,
    journal: Journal,
    pub(crate) drain: AtomicBool,
    pub(crate) policy: CheckpointPolicy,
}

impl Durability {
    /// Open (or create) a state directory: replay the journal, compact it
    /// down to the still-live records (keeping at most `keep_completed`
    /// most-recent completed jobs), and reopen it for appending.
    pub(crate) fn open(
        root: &Path,
        policy: CheckpointPolicy,
        keep_completed: usize,
    ) -> io::Result<(Durability, Replay)> {
        let state = StateDir::create(root)?;
        let journal_path = state.journal_path();
        let mut replay = replay_journal(&journal_path)?;
        // Scrub the checkpoint store before anything resumes from it:
        // snapshots that no longer decode (bad magic, version, or
        // checksum) are deleted so recovery deterministically takes the
        // clean re-run rung instead of tripping over them later.
        replay.scrubbed = tsa_core::scrub_snapshot_dir(&root.join("checkpoints"))?.removed as u64;
        let dropped = replay.completed.len().saturating_sub(keep_completed);
        replay.completed.drain(..dropped);
        // Compact: rewrite only the live records, atomically.
        let tmp = journal_path.with_extension("ndjson.tmp");
        {
            let mut f = File::create(&tmp)?;
            // Quarantines are cumulative across generations: the corrupt
            // records themselves are dropped by this rewrite, so the
            // tally is the only trace they ever existed.
            if replay.quarantined > 0 {
                writeln!(f, "{}", quarantined_record(replay.quarantined))?;
            }
            for done in &replay.completed {
                let uid = job_uid(&done.req);
                writeln!(f, "{}", job_record(&uid, &done.req))?;
                writeln!(
                    f,
                    "{}",
                    done_line(&uid, done.score, done.rows.as_ref(), done.algorithm)
                )?;
            }
            for job in &replay.inflight {
                writeln!(f, "{}", job_record(&job.uid, &job.req))?;
            }
            f.sync_all()?;
        }
        fs::rename(&tmp, &journal_path)?;
        let journal = Journal::open_append(&journal_path)?;
        Ok((
            Durability {
                state,
                journal,
                drain: AtomicBool::new(false),
                policy,
            },
            replay,
        ))
    }

    /// True once a drain was requested; durable kernels and workers poll
    /// this cooperatively.
    pub(crate) fn drain_requested(&self) -> bool {
        self.drain.load(Ordering::Relaxed)
    }

    /// Stop admitting durable work: queued jobs short-circuit (staying
    /// in-flight in the journal) and running durable kernels store a
    /// final snapshot and stop.
    pub(crate) fn request_drain(&self) {
        self.drain.store(true, Ordering::SeqCst);
    }

    /// Flush the journal to stable storage.
    pub(crate) fn sync(&self) -> io::Result<()> {
        self.journal.sync()
    }

    /// The checkpoint sink for one job.
    pub(crate) fn sink_for(&self, uid: &str) -> FileSink {
        FileSink {
            path: self.state.checkpoint_path(uid),
        }
    }

    /// Load a job's snapshot, if one exists and decodes (checksum, magic,
    /// version). Fingerprint validation is the caller's job.
    pub(crate) fn load_snapshot(&self, uid: &str) -> Option<FrontierSnapshot> {
        let bytes = fs::read(self.state.checkpoint_path(uid)).ok()?;
        FrontierSnapshot::decode(&bytes).ok()
    }

    /// Delete a job's snapshot (done, failed, or invalid).
    pub(crate) fn remove_checkpoint(&self, uid: &str) {
        let _ = fs::remove_file(self.state.checkpoint_path(uid));
    }

    /// Journal a job admission. Best-effort: an unwritable journal
    /// degrades durability, never the job itself.
    pub(crate) fn record_job(&self, uid: &str, req: &AlignRequest) {
        let _ = self.journal.append(&job_record(uid, req));
    }

    /// Journal a completion with its reusable result.
    pub(crate) fn record_done(&self, uid: &str, result: &JobResult) {
        let _ = self.journal.append(&done_record(uid, result));
    }

    /// Journal a terminal resolution without a reusable result.
    pub(crate) fn record_gone(&self, uid: &str) {
        let _ = self.journal.append(&gone_record(uid));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{SystemTime, UNIX_EPOCH};

    fn tmp_dir(label: &str) -> PathBuf {
        let nonce = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let dir = std::env::temp_dir().join(format!(
            "tsa-durability-{label}-{}-{nonce}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn request(tag: &str, text: &str, score_only: bool) -> AlignRequest {
        let seq = || Seq::dna(text).unwrap();
        let mut req = AlignRequest::new(tag, seq(), seq(), seq());
        req.score_only = score_only;
        req
    }

    fn policy() -> CheckpointPolicy {
        CheckpointPolicy {
            every_planes: 1,
            every: None,
        }
    }

    #[test]
    fn uid_is_stable_and_content_sensitive() {
        let r1 = request("t", "GATTACA", false);
        assert_eq!(job_uid(&r1), job_uid(&request("t", "GATTACA", false)));
        assert_ne!(job_uid(&r1), job_uid(&request("t2", "GATTACA", false)));
        assert_ne!(job_uid(&r1), job_uid(&request("t", "GATTACC", false)));
        assert_ne!(job_uid(&r1), job_uid(&request("t", "GATTACA", true)));
        let scored = request("t", "GATTACA", false).scoring(Scoring::unit());
        assert_ne!(job_uid(&r1), job_uid(&scored));
        assert_eq!(job_uid(&r1).len(), 32);
        assert!(job_uid(&r1).bytes().all(|b| b.is_ascii_hexdigit()));
    }

    #[test]
    fn content_uid_ignores_the_tag_but_tracks_content() {
        let r1 = request("t", "GATTACA", false);
        assert_eq!(
            content_uid(&r1),
            content_uid(&request("t2", "GATTACA", false))
        );
        assert_ne!(
            content_uid(&r1),
            content_uid(&request("t", "GATTACC", false))
        );
        assert_ne!(
            content_uid(&r1),
            content_uid(&request("t", "GATTACA", true))
        );
        assert_eq!(content_uid(&r1).len(), 32);
    }

    #[test]
    fn preset_scorings_are_journalable_custom_matrices_are_not() {
        assert!(journalable(&request("t", "ACGT", false)));
        let custom = request("t", "ACGT", false).scoring(Scoring::new(
            tsa_scoring::SubstMatrix::match_mismatch("house-rules", 3, -2),
            GapModel::linear(-1),
        ));
        assert!(!journalable(&custom));
        // Display names differ in case from lookup keys ("BLOSUM62" vs
        // "blosum62"); the mapping must still hold.
        assert!(journalable(
            &request("t", "ACGT", false).scoring(Scoring::blosum62())
        ));
        // A custom matrix squatting on a preset's name must not be
        // recovered as the preset.
        let spoofed = request("t", "ACGT", false).scoring(Scoring::new(
            tsa_scoring::SubstMatrix::match_mismatch("dna", 5, -4),
            GapModel::linear(-2),
        ));
        assert!(!journalable(&spoofed));
        // A gap override on a preset matrix still round-trips.
        let overridden = request("t", "ACGT", false)
            .scoring(Scoring::dna_default().with_gap(GapModel::linear(-7)));
        assert!(journalable(&overridden));
    }

    #[test]
    fn job_record_round_trips() {
        let mut req = request("job-1", "GATTACA", true);
        req = req
            .scoring(Scoring::blosum62().with_gap(GapModel::affine(-11, -1)))
            .algorithm(Algorithm::Hirschberg);
        let line = job_record("u1", &req);
        let v = Value::parse(&line).unwrap();
        let back = parse_job_record(&v).expect("round trip");
        assert_eq!(back.tag, "job-1");
        assert_eq!(back.seqs[0].residues(), req.seqs[0].residues());
        assert_eq!(back.scoring.matrix.name(), "BLOSUM62");
        assert_eq!(back.scoring.gap.open_penalty(), -11);
        assert_eq!(back.algorithm, Algorithm::Hirschberg);
        assert!(back.score_only);
    }

    #[test]
    fn replay_classifies_done_gone_and_inflight() {
        let dir = tmp_dir("replay");
        let (d, replay) = Durability::open(&dir, policy(), 64).unwrap();
        assert!(replay.completed.is_empty() && replay.inflight.is_empty());
        let finished = request("f", "GATTACA", true);
        let cancelled = request("x", "ACGTACGT", true);
        let running = request("r", "GTTACA", true);
        let (uid_f, uid_x, uid_r) = (job_uid(&finished), job_uid(&cancelled), job_uid(&running));
        d.record_job(&uid_f, &finished);
        d.record_job(&uid_x, &cancelled);
        d.record_job(&uid_r, &running);
        d.record_done(
            &uid_f,
            &JobResult {
                score: -3,
                rows: None,
                algorithm: Algorithm::Wavefront,
                degraded_from: None,
                cached: false,
                recovered: false,
                wait: Default::default(),
                service: Default::default(),
            },
        );
        d.record_gone(&uid_x);
        drop(d);

        let (_, replay) = Durability::open(&dir, policy(), 64).unwrap();
        assert_eq!(replay.completed.len(), 1);
        assert_eq!(replay.completed[0].score, -3);
        assert_eq!(replay.completed[0].req.tag, "f");
        assert_eq!(replay.inflight.len(), 1);
        assert_eq!(replay.inflight[0].uid, uid_r);
        assert_eq!(replay.inflight[0].req.tag, "r");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_trailing_line_is_tolerated() {
        let dir = tmp_dir("torn");
        let (d, _) = Durability::open(&dir, policy(), 64).unwrap();
        let req = request("whole", "GATTACA", true);
        d.record_job(&job_uid(&req), &req);
        drop(d);
        // Simulate a crash mid-append: valid record followed by a torn one.
        let journal = dir.join("journal.ndjson");
        let mut f = OpenOptions::new().append(true).open(&journal).unwrap();
        f.write_all(b"{\"ev\":\"job\",\"uid\":\"dead\",\"ta")
            .unwrap();
        drop(f);
        let (_, replay) = Durability::open(&dir, policy(), 64).unwrap();
        assert_eq!(replay.inflight.len(), 1);
        assert_eq!(replay.inflight[0].req.tag, "whole");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_drops_resolved_records_and_caps_completed() {
        let dir = tmp_dir("compact");
        let (d, _) = Durability::open(&dir, policy(), 64).unwrap();
        for i in 0..4 {
            let req = request(&format!("j{i}"), "GATTACA", true);
            let uid = job_uid(&req);
            d.record_job(&uid, &req);
            d.record_done(
                &uid,
                &JobResult {
                    score: i,
                    rows: None,
                    algorithm: Algorithm::Wavefront,
                    degraded_from: None,
                    cached: false,
                    recovered: false,
                    wait: Default::default(),
                    service: Default::default(),
                },
            );
        }
        let gone = request("gone", "ACGT", true);
        d.record_job(&job_uid(&gone), &gone);
        d.record_gone(&job_uid(&gone));
        drop(d);

        // keep_completed=2 retains only the most recent completions.
        let (_, replay) = Durability::open(&dir, policy(), 2).unwrap();
        assert_eq!(replay.completed.len(), 2);
        assert_eq!(replay.completed[0].req.tag, "j2");
        assert_eq!(replay.completed[1].req.tag, "j3");
        // The compacted file replays identically.
        let (_, replay) = Durability::open(&dir, policy(), 64).unwrap();
        assert_eq!(replay.completed.len(), 2);
        assert!(replay.inflight.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    fn done_result(score: i32) -> JobResult {
        JobResult {
            score,
            rows: None,
            algorithm: Algorithm::Wavefront,
            degraded_from: None,
            cached: false,
            recovered: false,
            wait: Default::default(),
            service: Default::default(),
        }
    }

    #[test]
    fn done_records_carry_a_verifying_checksum() {
        let line = done_line("u1", -7, None, Algorithm::Wavefront);
        let v = Value::parse(&line).unwrap();
        let info = parse_done_record(&v).unwrap();
        assert!(done_record_verified(&v, &info));
        assert_eq!(
            v.get("ck").unwrap().as_str().unwrap().len(),
            16,
            "ck is a fixed-width hex digest"
        );
        // A record without ck (legacy journal) fails closed.
        let bare = JsonObject::new()
            .str("ev", "done")
            .str("uid", "u1")
            .i64("score", -7)
            .str("algorithm", Algorithm::Wavefront.name())
            .finish();
        let bare = Value::parse(&bare).unwrap();
        let info = parse_done_record(&bare).unwrap();
        assert!(!done_record_verified(&bare, &info));
    }

    #[test]
    fn corrupt_done_record_is_quarantined_and_re_run() {
        let dir = tmp_dir("quarantine");
        let (d, _) = Durability::open(&dir, policy(), 64).unwrap();
        let req = request("q", "GATTACA", true);
        let uid = job_uid(&req);
        d.record_job(&uid, &req);
        d.record_done(&uid, &done_result(-3));
        drop(d);
        // Flip one score digit in place, keeping the line valid JSON —
        // exactly what the chaos harness's bit-flip injector does.
        let journal = dir.join("journal.ndjson");
        let text = fs::read_to_string(&journal).unwrap();
        let needle = "\"score\":-3";
        let flipped = text.replace(needle, "\"score\":-2");
        assert_ne!(text, flipped, "corruption target present");
        fs::write(&journal, flipped).unwrap();

        let (_, replay) = Durability::open(&dir, policy(), 64).unwrap();
        assert_eq!(replay.quarantined, 1, "the flip is counted");
        assert!(replay.completed.is_empty(), "never preloaded");
        assert_eq!(replay.inflight.len(), 1, "the job re-runs instead");
        assert_eq!(replay.inflight[0].uid, uid);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_tally_survives_compaction_and_later_restarts() {
        let dir = tmp_dir("quarantine-carry");
        let (d, _) = Durability::open(&dir, policy(), 64).unwrap();
        let req = request("qc", "GATTACA", true);
        let uid = job_uid(&req);
        d.record_job(&uid, &req);
        d.record_done(&uid, &done_result(-3));
        drop(d);
        let journal = dir.join("journal.ndjson");
        let text = fs::read_to_string(&journal).unwrap();
        fs::write(&journal, text.replace("\"score\":-3", "\"score\":-2")).unwrap();

        // The reopen quarantines the flip and compacts it away; the
        // rewritten journal must carry the tally forward so restarts
        // that never saw the corrupt record still report it.
        let (_, replay) = Durability::open(&dir, policy(), 64).unwrap();
        assert_eq!(replay.quarantined, 1);
        let compacted = fs::read_to_string(&journal).unwrap();
        assert!(compacted.contains("\"ev\":\"quarantined\""), "{compacted}");
        assert!(
            !compacted.contains("\"score\":-2"),
            "corrupt record dropped"
        );

        let (_, replay) = Durability::open(&dir, policy(), 64).unwrap();
        assert_eq!(replay.quarantined, 1, "carried across a clean restart");
        let (_, replay) = Durability::open(&dir, policy(), 64).unwrap();
        assert_eq!(replay.quarantined, 1, "no double counting");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compacted_done_records_still_verify() {
        let dir = tmp_dir("compact-ck");
        let (d, _) = Durability::open(&dir, policy(), 64).unwrap();
        let req = request("c", "GATTACA", true);
        let uid = job_uid(&req);
        d.record_job(&uid, &req);
        d.record_done(&uid, &done_result(5));
        drop(d);
        // First reopen compacts (rewrites the done line); the second
        // reopen must still verify and preload it.
        let (_, replay) = Durability::open(&dir, policy(), 64).unwrap();
        assert_eq!(replay.completed.len(), 1);
        assert_eq!(replay.quarantined, 0);
        let (_, replay) = Durability::open(&dir, policy(), 64).unwrap();
        assert_eq!(replay.completed.len(), 1);
        assert_eq!(replay.completed[0].score, 5);
        assert_eq!(replay.quarantined, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_scrubs_corrupt_checkpoints() {
        let dir = tmp_dir("scrub");
        let (d, _) = Durability::open(&dir, policy(), 64).unwrap();
        let snap = FrontierSnapshot {
            fingerprint: 7,
            kind: 0,
            next_index: 1,
            cells_done: 5,
            buffers: vec![vec![0; 8]],
        };
        d.sink_for("good").store(&snap).unwrap();
        d.sink_for("bad").store(&snap).unwrap();
        let bad = dir.join("checkpoints").join("bad.ckpt");
        let mut bytes = fs::read(&bad).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&bad, &bytes).unwrap();
        // A stale temp file from a crash mid-store is swept too.
        fs::write(dir.join("checkpoints").join("stale.ckpt.tmp"), b"junk").unwrap();
        drop(d);

        let (d, replay) = Durability::open(&dir, policy(), 64).unwrap();
        assert_eq!(replay.scrubbed, 1, "one corrupt snapshot deleted");
        assert!(!bad.exists());
        assert!(!dir.join("checkpoints").join("stale.ckpt.tmp").exists());
        assert_eq!(d.load_snapshot("good").unwrap(), snap, "valid one kept");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_sink_snapshot_round_trips_and_survives_overwrite() {
        let dir = tmp_dir("sink");
        let (d, _) = Durability::open(&dir, policy(), 64).unwrap();
        let sink = d.sink_for("u1");
        let snap = FrontierSnapshot {
            fingerprint: 7,
            kind: 1,
            next_index: 3,
            cells_done: 99,
            buffers: vec![vec![1, 2, 3]],
        };
        sink.store(&snap).unwrap();
        assert_eq!(d.load_snapshot("u1").unwrap(), snap);
        let newer = FrontierSnapshot {
            next_index: 4,
            ..snap.clone()
        };
        sink.store(&newer).unwrap();
        assert_eq!(d.load_snapshot("u1").unwrap(), newer);
        d.remove_checkpoint("u1");
        assert!(d.load_snapshot("u1").is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_fails_to_load() {
        let dir = tmp_dir("corrupt");
        let (d, _) = Durability::open(&dir, policy(), 64).unwrap();
        let sink = d.sink_for("u1");
        sink.store(&FrontierSnapshot {
            fingerprint: 7,
            kind: 0,
            next_index: 1,
            cells_done: 5,
            buffers: vec![vec![0; 8]],
        })
        .unwrap();
        let path = dir.join("checkpoints").join("u1.ckpt");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(d.load_snapshot("u1").is_none(), "checksum rejects the flip");
        let _ = fs::remove_dir_all(&dir);
    }
}
