//! Tag-driven fault injection for resilience testing.
//!
//! Compiled to no-ops unless the crate is built with the `faults`
//! feature (`cargo test -p tsa-service --features faults`). With the
//! feature on, a job opts into a fault by embedding a directive in its
//! *tag* — no API surface changes, so the same injection works through
//! the library, the NDJSON protocol, and the `tsa serve` binary:
//!
//! | tag contains | effect |
//! |---|---|
//! | `#fault-panic` | panic inside the kernel region (caught → `Failed`) |
//! | `#fault-abort` | panic *outside* the catch region (worker dies; supervisor respawns) |
//! | `#fault-delay=N` | sleep `N` ms inside the kernel region, honoring cancellation |
//! | `#fault-inflate=N` | multiply the governor's byte estimate by `N` |
//! | `#fault-flap=N` | fail the first `N` kernel attempts for this tag, then succeed |
//! | `#fault-disk-slow=N` | stall the job's journal resolution `N` ms (slow-disk chaos) |
//!
//! Directives are inert without the feature: production builds carry a
//! handful of `#[inline]` functions that constant-fold to `false`/`None`.

/// `true` when the tag asks for a caught in-kernel panic.
#[inline]
pub fn wants_panic(tag: &str) -> bool {
    #[cfg(feature = "faults")]
    {
        tag.contains("#fault-panic")
    }
    #[cfg(not(feature = "faults"))]
    {
        let _ = tag;
        false
    }
}

/// `true` when the tag asks to kill the worker thread (panic outside the
/// isolation boundary).
#[inline]
pub fn wants_abort(tag: &str) -> bool {
    #[cfg(feature = "faults")]
    {
        tag.contains("#fault-abort")
    }
    #[cfg(not(feature = "faults"))]
    {
        let _ = tag;
        false
    }
}

/// Artificial in-kernel delay requested by the tag, if any.
#[inline]
pub fn delay_of(tag: &str) -> Option<std::time::Duration> {
    #[cfg(feature = "faults")]
    {
        directive_value(tag, "#fault-delay=").map(std::time::Duration::from_millis)
    }
    #[cfg(not(feature = "faults"))]
    {
        let _ = tag;
        None
    }
}

/// Artificial stall applied to the job's durable resolution (journal
/// append + checkpoint removal), simulating a slow or saturated disk.
#[inline]
pub fn disk_delay_of(tag: &str) -> Option<std::time::Duration> {
    #[cfg(feature = "faults")]
    {
        directive_value(tag, "#fault-disk-slow=").map(std::time::Duration::from_millis)
    }
    #[cfg(not(feature = "faults"))]
    {
        let _ = tag;
        None
    }
}

/// Multiplier applied to the governor's byte estimate (default 1).
#[inline]
pub fn inflate_factor(tag: &str) -> u64 {
    #[cfg(feature = "faults")]
    {
        directive_value(tag, "#fault-inflate=").unwrap_or(1).max(1)
    }
    #[cfg(not(feature = "faults"))]
    {
        let _ = tag;
        1
    }
}

/// `true` while the tag's `#fault-flap=N` budget is unspent: the first
/// `N` kernel attempts carrying this exact tag fail (injected panic,
/// caught and reported as `Failed`), and every later attempt succeeds.
/// The per-tag counter is process-global, so a retried submission that
/// reuses its tag observes the fault clearing deterministically —
/// exactly the shape retry/backoff e2e tests need.
#[inline]
pub fn flap_now(tag: &str) -> bool {
    #[cfg(feature = "faults")]
    {
        let budget = match directive_value(tag, "#fault-flap=") {
            Some(n) => n,
            None => return false,
        };
        use std::collections::HashMap;
        use std::sync::OnceLock;
        static SEEN: OnceLock<parking_lot::Mutex<HashMap<String, u64>>> = OnceLock::new();
        let mut seen = SEEN
            .get_or_init(|| parking_lot::Mutex::new(HashMap::new()))
            .lock();
        let count = seen.entry(tag.to_owned()).or_insert(0);
        if *count < budget {
            *count += 1;
            true
        } else {
            false
        }
    }
    #[cfg(not(feature = "faults"))]
    {
        let _ = tag;
        false
    }
}

/// Parse the decimal value following `key` in `tag` (`#fault-delay=250`).
#[cfg(feature = "faults")]
fn directive_value(tag: &str, key: &str) -> Option<u64> {
    let rest = &tag[tag.find(key)? + key.len()..];
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

#[cfg(all(test, feature = "faults"))]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn directives_parse_from_tags() {
        assert!(wants_panic("job-7#fault-panic"));
        assert!(!wants_panic("job-7"));
        assert!(wants_abort("x#fault-abort"));
        assert_eq!(
            delay_of("t#fault-delay=250"),
            Some(Duration::from_millis(250))
        );
        assert_eq!(delay_of("t"), None);
        assert_eq!(
            disk_delay_of("t#fault-disk-slow=40"),
            Some(Duration::from_millis(40))
        );
        assert_eq!(disk_delay_of("t#fault-delay=40"), None);
        assert_eq!(inflate_factor("t#fault-inflate=100"), 100);
        assert_eq!(inflate_factor("t"), 1);
        assert_eq!(inflate_factor("t#fault-inflate=0"), 1);
    }

    #[test]
    fn flap_clears_after_its_budget() {
        assert!(!flap_now("steady"), "no directive, no flap");
        // Each tag gets its own budget; these tags are unique to this test.
        assert!(flap_now("flap-test-a#fault-flap=2"));
        assert!(flap_now("flap-test-a#fault-flap=2"));
        assert!(!flap_now("flap-test-a#fault-flap=2"), "budget spent");
        assert!(!flap_now("flap-test-a#fault-flap=2"), "stays clear");
        assert!(flap_now("flap-test-b#fault-flap=1"), "independent counter");
        assert!(!flap_now("flap-test-b#fault-flap=1"));
        assert!(
            !flap_now("flap-test-c#fault-flap=0"),
            "zero budget never fails"
        );
    }
}

#[cfg(all(test, not(feature = "faults")))]
mod tests {
    use super::*;

    #[test]
    fn directives_are_inert_without_the_feature() {
        assert!(!wants_panic("job#fault-panic"));
        assert!(!wants_abort("job#fault-abort"));
        assert_eq!(delay_of("job#fault-delay=250"), None);
        assert_eq!(disk_delay_of("job#fault-disk-slow=250"), None);
        assert_eq!(inflate_factor("job#fault-inflate=100"), 1);
        assert!(!flap_now("job#fault-flap=3"));
    }
}
