//! The service engine: configuration, submission, and lifecycle.

use crate::cache::ResultCache;
use crate::error::{JobOutcome, SubmitError};
use crate::faults;
use crate::governor::{self, MemoryGate, Reservation};
use crate::queue::{job_queue, JobQueue, JobReceiver, PushError};
use crate::stats::{ServiceStats, StatsSnapshot};
use crate::worker::{worker_loop, CompletedJob, Job, JobTrace, Responder};
use crossbeam::channel::{self, Receiver};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tsa_core::{Algorithm, Aligner, CancelToken};
use tsa_obs::Tracer;
use tsa_scoring::Scoring;
use tsa_seq::Seq;

/// Engine sizing and policy knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads; 0 means one per available hardware thread.
    pub workers: usize,
    /// Bounded queue capacity — jobs beyond this are rejected with
    /// [`SubmitError::Overloaded`].
    pub queue_capacity: usize,
    /// Result-cache entries across all shards; 0 disables caching.
    pub cache_capacity: usize,
    /// Deadline applied to jobs that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Per-job cap on estimated DP cell updates (a time bound in
    /// disguise); `None` disables the check.
    pub max_cells: Option<u64>,
    /// Cap on estimated peak kernel bytes — applied per job *and*, summed
    /// over in-flight reservations, globally; `None` disables both.
    pub memory_budget: Option<u64>,
    /// When set, every job emits a span tree (`job` root with `queued`,
    /// `cache_lookup`, `kernel`, `traceback`, `respond` stage children)
    /// to this tracer's sink; refused submissions emit an annotated
    /// zero-stage `job` span. `None` disables tracing entirely.
    pub tracer: Option<Tracer>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            queue_capacity: 64,
            cache_capacity: 1024,
            default_deadline: None,
            max_cells: None,
            memory_budget: None,
            tracer: None,
        }
    }
}

/// One alignment job to submit.
#[derive(Debug, Clone)]
pub struct AlignRequest {
    /// Caller-chosen tag echoed back with the outcome.
    pub tag: String,
    /// The three sequences.
    pub seqs: [Seq; 3],
    /// Scoring scheme.
    pub scoring: Scoring,
    /// Requested algorithm (usually `Auto`).
    pub algorithm: Algorithm,
    /// Skip traceback and return only the score.
    pub score_only: bool,
    /// Per-job deadline, overriding the engine default.
    pub deadline: Option<Duration>,
}

impl AlignRequest {
    /// A request with DNA-default scoring, automatic algorithm selection,
    /// full traceback, and no deadline.
    pub fn new(tag: impl Into<String>, a: Seq, b: Seq, c: Seq) -> Self {
        AlignRequest {
            tag: tag.into(),
            seqs: [a, b, c],
            scoring: Scoring::dna_default(),
            algorithm: Algorithm::Auto,
            score_only: false,
            deadline: None,
        }
    }

    /// Set the scoring scheme.
    pub fn scoring(mut self, scoring: Scoring) -> Self {
        self.scoring = scoring;
        self
    }

    /// Pin the algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Request only the score (cheaper: no traceback).
    pub fn score_only(mut self, yes: bool) -> Self {
        self.score_only = yes;
        self
    }

    /// Set a per-job deadline.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Waits for one accepted job. Dropping the handle detaches the job (it
/// still runs and still counts in the stats).
#[derive(Debug)]
pub struct JobHandle {
    /// Engine-assigned id (unique per engine instance, monotonic).
    pub id: u64,
    cancel: CancelToken,
    rx: Receiver<CompletedJob>,
}

impl JobHandle {
    /// Block until the job resolves. Returns [`JobOutcome::Cancelled`] if
    /// the engine was torn down before the job could run.
    pub fn wait(self) -> JobOutcome {
        match self.rx.recv() {
            Ok(done) => done.outcome,
            // The engine dropped the job without responding (only possible
            // on abnormal teardown); surface it as a cancellation.
            Err(_) => JobOutcome::Cancelled { progress: None },
        }
    }

    /// Request cooperative cancellation of this job.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }
}

/// A multi-threaded batch alignment service.
///
/// ```
/// use tsa_service::{AlignRequest, Engine, ServiceConfig};
/// use tsa_seq::Seq;
///
/// let engine = Engine::start(ServiceConfig::default());
/// let a = Seq::dna("GATTACA").unwrap();
/// let b = Seq::dna("GATACA").unwrap();
/// let c = Seq::dna("GTTACA").unwrap();
/// let handle = engine.submit(AlignRequest::new("demo", a, b, c)).unwrap();
/// let outcome = handle.wait();
/// assert!(outcome.result().is_some());
/// let stats = engine.shutdown();
/// assert_eq!(stats.completed, 1);
/// ```
#[derive(Debug)]
pub struct Engine {
    /// The single producer slot. `None` after shutdown; taking it drops
    /// the last sender, which disconnects the channel and drains workers.
    producer: Mutex<Option<JobQueue<Job>>>,
    /// Receiver clone kept only for depth observation (never popped).
    observer: JobReceiver<Job>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
    /// Cleared at the start of shutdown; stops the supervisor respawning.
    running: Arc<AtomicBool>,
    /// Present when `memory_budget` is configured.
    gate: Option<Arc<MemoryGate>>,
    stats: Arc<ServiceStats>,
    cache: Arc<ResultCache>,
    next_id: AtomicU64,
    config: ServiceConfig,
}

impl Engine {
    /// Spawn the worker pool (plus its supervisor) and return a running
    /// engine.
    pub fn start(config: ServiceConfig) -> Engine {
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.workers
        };
        let (queue, rx) = job_queue::<Job>(config.queue_capacity);
        let stats = Arc::new(ServiceStats::default());
        let shards = workers.next_power_of_two().min(16);
        let cache = Arc::new(ResultCache::new(config.cache_capacity, shards));
        let handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                let cache = Arc::clone(&cache);
                let stats = Arc::clone(&stats);
                std::thread::Builder::new()
                    .name(format!("tsa-worker-{i}"))
                    .spawn(move || worker_loop(rx, cache, stats))
                    .expect("spawn worker thread")
            })
            .collect();
        let workers = Arc::new(Mutex::new(handles));
        let running = Arc::new(AtomicBool::new(true));
        let supervisor = {
            let workers = Arc::clone(&workers);
            let running = Arc::clone(&running);
            let rx = rx.clone();
            let cache = Arc::clone(&cache);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("tsa-supervisor".into())
                .spawn(move || supervise(&workers, &running, rx, cache, stats))
                .expect("spawn supervisor thread")
        };
        Engine {
            producer: Mutex::new(Some(queue)),
            observer: rx,
            workers,
            supervisor: Mutex::new(Some(supervisor)),
            running,
            gate: config.memory_budget.map(MemoryGate::new),
            stats,
            cache,
            next_id: AtomicU64::new(1),
            config,
        }
    }

    /// Admission-time resource governor: estimate the job's footprint for
    /// its *resolved* algorithm, enforce the configured limits (walking an
    /// `Auto` request down the degradation ladder instead of rejecting),
    /// and take the job's share of the global memory budget.
    fn govern(
        &self,
        req: &mut AlignRequest,
        blocking: bool,
    ) -> Result<(Option<Algorithm>, Option<Reservation>), SubmitError> {
        if self.config.max_cells.is_none() && self.config.memory_budget.is_none() {
            return Ok((None, None));
        }
        let (n1, n2, n3) = (req.seqs[0].len(), req.seqs[1].len(), req.seqs[2].len());
        let resolved = Aligner::auto(req.scoring.clone())
            .algorithm(req.algorithm)
            .resolve(n1, n2, n3);
        let inflate = faults::inflate_factor(&req.tag);
        let estimate_of = |alg| {
            let mut est = governor::estimate(alg, req.score_only, n1, n2, n3);
            est.peak_bytes = est.peak_bytes.saturating_mul(inflate);
            est
        };
        let (chosen, est) = if req.algorithm == Algorithm::Auto {
            let mut admitted = None;
            let mut last_refusal = None;
            for candidate in governor::ladder(resolved) {
                let est = estimate_of(candidate);
                match governor::check(est, self.config.max_cells, self.config.memory_budget) {
                    Ok(()) => {
                        admitted = Some((candidate, est));
                        break;
                    }
                    Err(e) => last_refusal = Some(e),
                }
            }
            match admitted {
                Some(pick) => pick,
                None => return Err(self.refuse(last_refusal.expect("ladder is non-empty"))),
            }
        } else {
            let est = estimate_of(resolved);
            governor::check(est, self.config.max_cells, self.config.memory_budget)
                .map_err(|e| self.refuse(e))?;
            (resolved, est)
        };
        let reservation = match &self.gate {
            Some(gate) if blocking => Some(gate.reserve_blocking(est.peak_bytes)),
            Some(gate) => match gate.try_reserve(est.peak_bytes) {
                Some(r) => Some(r),
                // Fits the budget alone, but not alongside the current
                // in-flight jobs — non-blocking submitters get an error.
                None => {
                    return Err(self.refuse(SubmitError::ResourceExhausted {
                        required: est.peak_bytes,
                        budget: self.config.memory_budget.unwrap_or(0),
                        limit: "memory-budget",
                    }))
                }
            },
            None => None,
        };
        let degraded_from = if chosen == resolved {
            None
        } else {
            req.algorithm = chosen;
            self.stats.downgraded.inc();
            Some(resolved)
        };
        Ok((degraded_from, reservation))
    }

    /// Count a governor refusal in the submission tallies.
    fn refuse(&self, e: SubmitError) -> SubmitError {
        self.stats.submitted.inc();
        self.stats.rejected.inc();
        e
    }

    /// A refused submission still leaves a trace: one `job` span with the
    /// rejection reason and no stage children.
    fn trace_rejection(&self, tag: &str, err: &SubmitError) {
        if let Some(tracer) = &self.config.tracer {
            tracer
                .span("job")
                .with("tag", tag)
                .with("rejected", err.to_string())
                .end();
        }
    }

    fn make_job(
        &self,
        req: AlignRequest,
        responder: Responder,
        degraded_from: Option<Algorithm>,
        reservation: Option<Reservation>,
    ) -> (u64, CancelToken, Job) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let deadline = req
            .deadline
            .or(self.config.default_deadline)
            .map(|d| Instant::now() + d);
        let cancel = CancelToken::new(deadline);
        let trace = self.config.tracer.as_ref().map(|tracer| {
            let mut root = tracer
                .span("job")
                .with("job_id", id)
                .with("tag", req.tag.as_str())
                .with("algorithm", req.algorithm.name());
            if let Some(from) = degraded_from {
                root.annotate("degraded_from", from.name());
            }
            let queued = root.child("queued");
            JobTrace {
                root,
                queued: Some(queued),
            }
        });
        let [a, b, c] = req.seqs;
        let job = Job {
            id,
            tag: req.tag,
            a,
            b,
            c,
            scoring: req.scoring,
            algorithm: req.algorithm,
            score_only: req.score_only,
            cancel: cancel.clone(),
            submitted: Instant::now(),
            responder: Some(responder),
            degraded_from,
            reservation,
            trace,
        };
        (id, cancel, job)
    }

    fn admit(&self, mut job: Job, blocking: bool) -> Result<(), SubmitError> {
        self.stats.submitted.inc();
        // Clone the producer out of the slot so a blocking push does not
        // hold the lock (shutdown must stay callable concurrently).
        let Some(queue) = self.producer.lock().clone() else {
            self.stats.rejected.inc();
            job.reject("shutting_down");
            return Err(SubmitError::ShuttingDown);
        };
        let pushed = if blocking {
            queue.push_blocking(job)
        } else {
            queue.try_push(job)
        };
        match pushed {
            Ok(()) => Ok(()),
            Err(PushError::Full(mut job)) => {
                self.stats.rejected.inc();
                job.reject("overloaded");
                Err(SubmitError::Overloaded {
                    capacity: queue.capacity(),
                })
            }
            Err(PushError::Closed(mut job)) => {
                self.stats.rejected.inc();
                job.reject("shutting_down");
                Err(SubmitError::ShuttingDown)
            }
        }
    }

    /// Submit with backpressure: a full queue rejects immediately with
    /// [`SubmitError::Overloaded`].
    pub fn submit(&self, req: AlignRequest) -> Result<JobHandle, SubmitError> {
        self.submit_inner(req, false)
    }

    /// Submit, waiting for queue space instead of rejecting. For batch
    /// drivers that want throttling rather than errors.
    pub fn submit_blocking(&self, req: AlignRequest) -> Result<JobHandle, SubmitError> {
        self.submit_inner(req, true)
    }

    fn submit_inner(
        &self,
        mut req: AlignRequest,
        blocking: bool,
    ) -> Result<JobHandle, SubmitError> {
        let (degraded_from, reservation) = self
            .govern(&mut req, blocking)
            .inspect_err(|e| self.trace_rejection(&req.tag, e))?;
        let (tx, rx) = channel::bounded(1);
        let (id, cancel, job) =
            self.make_job(req, Responder::Channel(tx), degraded_from, reservation);
        self.admit(job, blocking)?;
        Ok(JobHandle { id, cancel, rx })
    }

    /// Submit with a completion callback instead of a handle. The callback
    /// runs on the worker thread that resolved the job; keep it short.
    /// Returns the engine-assigned job id and its cancellation token.
    pub fn submit_with(
        &self,
        mut req: AlignRequest,
        callback: impl FnOnce(CompletedJob) + Send + 'static,
    ) -> Result<(u64, CancelToken), SubmitError> {
        let (degraded_from, reservation) = self
            .govern(&mut req, false)
            .inspect_err(|e| self.trace_rejection(&req.tag, e))?;
        let (id, cancel, job) = self.make_job(
            req,
            Responder::Callback(Box::new(callback)),
            degraded_from,
            reservation,
        );
        self.admit(job, false)?;
        Ok((id, cancel))
    }

    /// Point-in-time counters, including the live queue depth.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot(self.observer.depth())
    }

    /// Prometheus-style text exposition of every service metric,
    /// including the stage-latency histograms and the live queue depth.
    pub fn metrics_text(&self) -> String {
        self.stats.expose(self.observer.depth())
    }

    /// Jobs currently queued.
    pub fn queue_depth(&self) -> usize {
        self.observer.depth()
    }

    /// Entries currently in the result cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// The configuration the engine was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// False once [`Engine::shutdown`] has begun; new submissions are
    /// refused from that point.
    pub fn is_running(&self) -> bool {
        self.producer.lock().is_some()
    }

    /// Estimated bytes currently reserved by in-flight jobs (0 when no
    /// memory budget is configured).
    pub fn memory_in_flight(&self) -> u64 {
        self.gate.as_ref().map_or(0, |g| g.in_flight())
    }

    /// Graceful shutdown: stop admitting new jobs, let the workers drain
    /// everything already queued, join them (supervisor first, so nothing
    /// respawns during teardown), and return the final counters.
    /// Idempotent; callable through an `Arc<Engine>`.
    pub fn shutdown(&self) -> StatsSnapshot {
        self.running.store(false, Ordering::SeqCst);
        drop(self.producer.lock().take());
        if let Some(handle) = self.supervisor.lock().take() {
            let _ = handle.join();
        }
        let workers = std::mem::take(&mut *self.workers.lock());
        for handle in workers {
            let _ = handle.join();
        }
        self.stats.snapshot(self.observer.depth())
    }
}

/// The pool supervisor: while the engine runs, replace any worker thread
/// that died (a panic that escaped the kernel isolation boundary) so the
/// pool stays at full strength. Runs on its own thread; polling is cheap
/// (`JoinHandle::is_finished` is a flag load).
fn supervise(
    workers: &Mutex<Vec<JoinHandle<()>>>,
    running: &AtomicBool,
    rx: JobReceiver<Job>,
    cache: Arc<ResultCache>,
    stats: Arc<ServiceStats>,
) {
    let mut respawned = 0usize;
    while running.load(Ordering::SeqCst) {
        {
            let mut pool = workers.lock();
            for slot in pool.iter_mut() {
                if !slot.is_finished() {
                    continue;
                }
                let fresh = {
                    let (rx, cache, stats) = (rx.clone(), Arc::clone(&cache), Arc::clone(&stats));
                    std::thread::Builder::new()
                        .name(format!("tsa-worker-r{respawned}"))
                        .spawn(move || worker_loop(rx, cache, stats))
                        .expect("respawn worker thread")
                };
                respawned += 1;
                let dead = std::mem::replace(slot, fresh);
                let _ = dead.join();
                stats.respawns.inc();
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CancelStage;

    fn triple(text: &str) -> (Seq, Seq, Seq) {
        (
            Seq::dna(text).unwrap(),
            Seq::dna(text).unwrap(),
            Seq::dna(text).unwrap(),
        )
    }

    fn small_config() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 32,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn submit_and_wait_round_trip() {
        let engine = Engine::start(small_config());
        let (a, b, c) = triple("GATTACA");
        let handle = engine.submit(AlignRequest::new("t", a, b, c)).unwrap();
        let outcome = handle.wait();
        let result = outcome.result().expect("job completes");
        assert!(!result.cached);
        assert_eq!(result.algorithm, Algorithm::Wavefront);
        assert!(result.rows.is_some());
        let stats = engine.shutdown();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn identical_resubmission_hits_the_cache() {
        let engine = Engine::start(small_config());
        let (a, b, c) = triple("GATTACAGATTACA");
        let first = engine
            .submit(AlignRequest::new("1", a.clone(), b.clone(), c.clone()))
            .unwrap()
            .wait();
        let second = engine
            .submit(AlignRequest::new("2", a, b, c))
            .unwrap()
            .wait();
        let (r1, r2) = (first.result().unwrap(), second.result().unwrap());
        assert!(!r1.cached);
        assert!(r2.cached, "second identical job is a cache hit");
        assert_eq!(r1.score, r2.score);
        assert_eq!(r1.rows, r2.rows);
        let stats = engine.shutdown();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
    }

    #[test]
    fn zero_deadline_cancels_while_queued() {
        let engine = Engine::start(small_config());
        let (a, b, c) = triple("GATTACA");
        let outcome = engine
            .submit(AlignRequest::new("d", a, b, c).deadline(Duration::ZERO))
            .unwrap()
            .wait();
        assert!(matches!(
            outcome,
            JobOutcome::DeadlineExceeded {
                stage: CancelStage::Queued,
                ..
            }
        ));
        let stats = engine.shutdown();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn explicit_cancel_before_run() {
        // One worker pinned on a slow job guarantees the second job is
        // still queued when we cancel it.
        let engine = Engine::start(ServiceConfig {
            workers: 1,
            ..small_config()
        });
        let slow = Seq::dna("ACGTACGTAC".repeat(12)).unwrap();
        let blocker = engine
            .submit(AlignRequest::new("slow", slow.clone(), slow.clone(), slow))
            .unwrap();
        let (a, b, c) = triple("GATTACA");
        let victim = engine.submit(AlignRequest::new("v", a, b, c)).unwrap();
        victim.cancel();
        assert!(matches!(victim.wait(), JobOutcome::Cancelled { .. }));
        assert!(blocker.wait().result().is_some());
        engine.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        let engine = Engine::start(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            cache_capacity: 0,
            ..ServiceConfig::default()
        });
        let slow = Seq::dna("ACGTACGTAC".repeat(12)).unwrap();
        // First job occupies the worker; second fills the queue; the
        // third must bounce.
        let h1 = engine
            .submit(AlignRequest::new(
                "1",
                slow.clone(),
                slow.clone(),
                slow.clone(),
            ))
            .unwrap();
        let mut held = Vec::new();
        let mut rejected = None;
        for i in 0..10 {
            let (a, b, c) = triple("GATTACA");
            match engine.submit(AlignRequest::new(format!("j{i}"), a, b, c)) {
                Ok(h) => held.push(h),
                Err(e) => {
                    rejected = Some(e);
                    break;
                }
            }
        }
        assert_eq!(rejected, Some(SubmitError::Overloaded { capacity: 1 }));
        assert!(h1.wait().result().is_some());
        for h in held {
            assert!(h.wait().result().is_some());
        }
        let stats = engine.shutdown();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.resolved(), stats.submitted);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let engine = Engine::start(small_config());
        engine.shutdown();
        let (a, b, c) = triple("ACGT");
        assert_eq!(
            engine.submit(AlignRequest::new("x", a, b, c)).unwrap_err(),
            SubmitError::ShuttingDown
        );
        // Idempotent.
        let stats = engine.shutdown();
        assert_eq!(stats.rejected, 1);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let engine = Engine::start(ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            cache_capacity: 0,
            ..ServiceConfig::default()
        });
        let handles: Vec<JobHandle> = (0..10)
            .map(|i| {
                let (a, b, c) = triple("GATTACAGA");
                engine
                    .submit(AlignRequest::new(format!("{i}"), a, b, c))
                    .unwrap()
            })
            .collect();
        let stats = engine.shutdown();
        assert_eq!(stats.completed, 10, "graceful shutdown runs queued jobs");
        for h in handles {
            assert!(h.wait().result().is_some());
        }
    }

    #[test]
    fn failed_configuration_reports_failed() {
        let engine = Engine::start(small_config());
        let (a, b, c) = triple("GATTACAGATTACA");
        let outcome = engine
            .submit(
                AlignRequest::new("f", a, b, c)
                    .scoring(Scoring::dna_default().with_gap(tsa_scoring::GapModel::affine(-4, -1)))
                    .algorithm(Algorithm::FullDp),
            )
            .unwrap()
            .wait();
        assert!(matches!(outcome, JobOutcome::Failed(_)));
        let stats = engine.shutdown();
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn score_only_jobs_carry_no_rows() {
        let engine = Engine::start(small_config());
        let (a, b, c) = triple("GATTACA");
        let outcome = engine
            .submit(AlignRequest::new("s", a, b, c).score_only(true))
            .unwrap()
            .wait();
        let result = outcome.result().unwrap();
        assert!(result.rows.is_none());
        engine.shutdown();
    }

    #[test]
    fn governor_rejects_pinned_overbudget_algorithm() {
        let engine = Engine::start(ServiceConfig {
            memory_budget: Some(64 * 1024),
            ..small_config()
        });
        // 160³ full lattice ≈ 16.7 MB, far over the 64 KiB budget.
        let long = Seq::dna("ACGTACGTGA".repeat(16)).unwrap();
        let err = engine
            .submit(
                AlignRequest::new("big", long.clone(), long.clone(), long)
                    .algorithm(Algorithm::FullDp),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            SubmitError::ResourceExhausted {
                limit: "memory-budget",
                ..
            }
        ));
        let stats = engine.shutdown();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.resolved(), stats.submitted);
    }

    #[test]
    fn governor_enforces_max_cells() {
        let engine = Engine::start(ServiceConfig {
            max_cells: Some(1_000_000),
            ..small_config()
        });
        let long = Seq::dna("ACGTACGTGA".repeat(16)).unwrap();
        let err = engine
            .submit(
                AlignRequest::new("slow", long.clone(), long.clone(), long)
                    .algorithm(Algorithm::FullDp),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            SubmitError::ResourceExhausted {
                limit: "max-cells",
                ..
            }
        ));
        // Small jobs still pass.
        let (a, b, c) = triple("GATTACA");
        assert!(engine.submit(AlignRequest::new("ok", a, b, c)).is_ok());
        engine.shutdown();
    }

    #[test]
    fn governor_downgrades_auto_to_fit_budget() {
        let engine = Engine::start(ServiceConfig {
            memory_budget: Some(1024 * 1024),
            ..small_config()
        });
        // Auto resolves to Wavefront (full lattice, ≈16.7 MB — over the
        // 1 MiB budget); the ladder lands on ParallelHirschberg (≈0.6 MB).
        let long = Seq::dna("ACGTACGTGA".repeat(16)).unwrap();
        let outcome = engine
            .submit(AlignRequest::new("auto", long.clone(), long.clone(), long))
            .unwrap()
            .wait();
        let result = outcome.result().expect("degraded job still completes");
        assert_eq!(result.algorithm, Algorithm::ParallelHirschberg);
        assert_eq!(result.degraded_from, Some(Algorithm::Wavefront));
        let stats = engine.shutdown();
        assert_eq!(stats.downgraded, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn memory_reservations_drain_to_zero() {
        let engine = Engine::start(ServiceConfig {
            memory_budget: Some(64 * 1024 * 1024),
            ..small_config()
        });
        let handles: Vec<JobHandle> = (0..6)
            .map(|i| {
                let (a, b, c) = triple("GATTACAGATTACA");
                engine
                    .submit(AlignRequest::new(format!("{i}"), a, b, c))
                    .unwrap()
            })
            .collect();
        for h in handles {
            assert!(h.wait().result().is_some());
        }
        // All jobs resolved, so every reservation must be back.
        assert_eq!(engine.memory_in_flight(), 0);
        engine.shutdown();
    }

    #[test]
    fn callback_submission_fires_exactly_once() {
        let engine = Engine::start(small_config());
        let (tx, rx) = channel::unbounded();
        let (a, b, c) = triple("GATTACA");
        let (id, _cancel) = engine
            .submit_with(AlignRequest::new("cb", a, b, c), move |done| {
                tx.send(done).unwrap();
            })
            .unwrap();
        let done = rx.recv().unwrap();
        assert_eq!(done.id, id);
        assert_eq!(done.tag, "cb");
        assert!(done.outcome.result().is_some());
        assert!(rx.recv_timeout(Duration::from_millis(50)).is_err());
        engine.shutdown();
    }
}
