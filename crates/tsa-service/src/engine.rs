//! The service engine: configuration, submission, and lifecycle.

use crate::cache::{result_checksum, CacheKey, CachedResult, ResultCache};
use crate::durability::{self, Durability, Replay};
use crate::error::{JobOutcome, SubmitError};
use crate::faults;
use crate::governor::{self, MemoryGate, Reservation};
use crate::queue::PushError;
use crate::sched::{fair_queue, FairQueue, FairReceiver};
use crate::stats::{LaneSnapshot, ServiceStats, StatsSnapshot};
use crate::worker::{worker_loop, CompletedJob, DurableJob, Job, JobTrace, Responder};
use crossbeam::channel::{self, Receiver};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tsa_core::{
    job_fingerprint, Algorithm, Aligner, CancelToken, CheckpointPolicy, FrontierSnapshot,
    SimdKernel,
};
use tsa_obs::{FlightRecorder, TraceContext, Tracer};
use tsa_scoring::Scoring;
use tsa_seq::Seq;

/// Engine sizing and policy knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads; 0 means one per available hardware thread.
    pub workers: usize,
    /// Bounded queue capacity — jobs beyond this are rejected with
    /// [`SubmitError::Overloaded`].
    pub queue_capacity: usize,
    /// Result-cache entries across all shards; 0 disables caching.
    pub cache_capacity: usize,
    /// Deadline applied to jobs that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Per-job cap on estimated DP cell updates (a time bound in
    /// disguise); `None` disables the check.
    pub max_cells: Option<u64>,
    /// Cap on estimated peak kernel bytes — applied per job *and*, summed
    /// over in-flight reservations, globally; `None` disables both.
    pub memory_budget: Option<u64>,
    /// When set, every job emits a span tree (`job` root with `queued`,
    /// `cache_lookup`, `kernel`, `traceback`, `respond` stage children)
    /// to this tracer's sink; refused submissions emit an annotated
    /// zero-stage `job` span. `None` disables tracing entirely.
    pub tracer: Option<Tracer>,
    /// When set (alongside `tracer`, whose sink must feed it), every job
    /// runs under a distributed trace: propagated contexts
    /// ([`AlignRequest::trace`]) are honored, purely local submissions
    /// mint a fresh trace id, and completed trees land in this flight
    /// recorder, queryable via the protocol's `trace` op. `None` (the
    /// default) changes nothing.
    pub recorder: Option<Arc<FlightRecorder>>,
    /// When set, the engine keeps a crash-safe job journal and per-job
    /// checkpoint snapshots under this directory and replays them on
    /// startup (see [`Engine::drain`] and the `durability` module docs).
    pub state_dir: Option<PathBuf>,
    /// Checkpoint cadence for durable kernels: snapshot the frontier
    /// every N planes/slabs (clamped to ≥ 1). Only meaningful with
    /// `state_dir`.
    pub checkpoint_every_planes: usize,
    /// Optional time-based checkpoint cadence (milliseconds); fires in
    /// addition to the plane cadence. Only meaningful with `state_dir`.
    pub checkpoint_every_millis: Option<u64>,
    /// SIMD kernel applied to jobs that do not pin one themselves (their
    /// `kernel` field is `Auto`). Scores are bit-identical across kernels,
    /// so this only affects throughput.
    pub default_kernel: SimdKernel,
    /// Per-client token-bucket rate limit, jobs per second (burst = one
    /// second's worth, at least 1). Applies only to *named* clients
    /// ([`AlignRequest::client`]); anonymous traffic is never limited.
    /// `None` (the default) disables rate limiting.
    pub client_rate: Option<f64>,
    /// Per-client cap on jobs admitted but not yet resolved. Like
    /// `client_rate`, it governs only named clients; `None` (the
    /// default) disables the quota.
    pub max_in_flight_per_client: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            queue_capacity: 64,
            cache_capacity: 1024,
            default_deadline: None,
            max_cells: None,
            memory_budget: None,
            tracer: None,
            recorder: None,
            state_dir: None,
            checkpoint_every_planes: 32,
            checkpoint_every_millis: None,
            default_kernel: SimdKernel::Auto,
            client_rate: None,
            max_in_flight_per_client: None,
        }
    }
}

/// Retry hint reported when the earliest viable resubmission time is not
/// computable (queue or quota pressure, as opposed to a token-bucket
/// refill, whose hint is exact).
pub(crate) const RETRY_HINT_MS: u64 = 100;

/// Per-client admission control: a token bucket (rate limiting), an
/// in-flight quota, and per-lane tallies for the `stats` lanes section.
/// Both limits govern *named* clients only — anonymous submissions (an
/// empty [`AlignRequest::client`]) bypass this entirely, so single-tenant
/// deployments pay nothing and observe no behavior change.
#[derive(Debug)]
struct ClientGovernor {
    /// Tokens per second; `None` disables rate limiting.
    rate: Option<f64>,
    /// In-flight cap per client; `None` disables the quota.
    max_in_flight: Option<usize>,
    lanes: Mutex<HashMap<String, ClientLane>>,
}

#[derive(Debug, Default)]
struct ClientLane {
    tokens: f64,
    /// Last refill instant; `None` until the first sighting (which
    /// starts the bucket full).
    refilled: Option<Instant>,
    in_flight: usize,
    submitted: u64,
    rejected: u64,
}

impl ClientGovernor {
    /// Admit one submission from `client`, consuming a token and (when a
    /// quota is configured) an in-flight slot. The returned slot must be
    /// dropped when the job resolves.
    fn admit(self: &Arc<Self>, client: &str) -> Result<Option<ClientSlot>, SubmitError> {
        if client.is_empty() {
            return Ok(None);
        }
        let mut lanes = self.lanes.lock();
        let lane = lanes.entry(client.to_owned()).or_default();
        lane.submitted += 1;
        if let Some(rate) = self.rate {
            let burst = rate.max(1.0);
            let now = Instant::now();
            match lane.refilled {
                None => lane.tokens = burst,
                Some(last) => {
                    lane.tokens =
                        (lane.tokens + now.duration_since(last).as_secs_f64() * rate).min(burst);
                }
            }
            lane.refilled = Some(now);
            if lane.tokens < 1.0 {
                lane.rejected += 1;
                let wait_s = (1.0 - lane.tokens) / rate;
                return Err(SubmitError::Overloaded {
                    capacity: burst as usize,
                    retry_after_ms: ((wait_s * 1000.0).ceil() as u64).max(1),
                    scope: "client-rate",
                });
            }
            lane.tokens -= 1.0;
        }
        match self.max_in_flight {
            None => Ok(None),
            Some(quota) if lane.in_flight >= quota => {
                lane.rejected += 1;
                Err(SubmitError::Overloaded {
                    capacity: quota,
                    retry_after_ms: RETRY_HINT_MS,
                    scope: "in-flight",
                })
            }
            Some(_) => {
                lane.in_flight += 1;
                Ok(Some(ClientSlot {
                    governor: Arc::clone(self),
                    client: client.to_owned(),
                }))
            }
        }
    }
}

/// RAII share of a client's in-flight quota, held by the job and
/// released when it resolves (or is dropped on any teardown path).
#[derive(Debug)]
pub(crate) struct ClientSlot {
    governor: Arc<ClientGovernor>,
    client: String,
}

impl Drop for ClientSlot {
    fn drop(&mut self) {
        let mut lanes = self.governor.lanes.lock();
        if let Some(lane) = lanes.get_mut(&self.client) {
            lane.in_flight = lane.in_flight.saturating_sub(1);
        }
    }
}

/// One alignment job to submit.
#[derive(Debug, Clone)]
pub struct AlignRequest {
    /// Caller-chosen tag echoed back with the outcome.
    pub tag: String,
    /// The three sequences.
    pub seqs: [Seq; 3],
    /// Scoring scheme.
    pub scoring: Scoring,
    /// Requested algorithm (usually `Auto`).
    pub algorithm: Algorithm,
    /// Skip traceback and return only the score.
    pub score_only: bool,
    /// Per-job deadline, overriding the engine default.
    pub deadline: Option<Duration>,
    /// SIMD kernel for the score inner loops; `Auto` defers to the
    /// engine's [`ServiceConfig::default_kernel`].
    pub kernel: SimdKernel,
    /// Client lane for multi-tenant fairness: the scheduler round-robins
    /// across lanes (FIFO within one), and the per-client rate limit and
    /// in-flight quota key on this. Empty (the default) is the shared
    /// anonymous lane, which is never limited.
    pub client: String,
    /// Distributed trace context propagated by an upstream coordinator:
    /// the job's `job` span joins this trace, parented under the
    /// sender's span. `None` (the default) leaves the span tree local
    /// (or mints a fresh trace when a flight recorder is configured).
    pub trace: Option<TraceContext>,
}

impl AlignRequest {
    /// A request with DNA-default scoring, automatic algorithm selection,
    /// full traceback, and no deadline.
    pub fn new(tag: impl Into<String>, a: Seq, b: Seq, c: Seq) -> Self {
        AlignRequest {
            tag: tag.into(),
            seqs: [a, b, c],
            scoring: Scoring::dna_default(),
            algorithm: Algorithm::Auto,
            score_only: false,
            deadline: None,
            kernel: SimdKernel::Auto,
            client: String::new(),
            trace: None,
        }
    }

    /// Set the scoring scheme.
    pub fn scoring(mut self, scoring: Scoring) -> Self {
        self.scoring = scoring;
        self
    }

    /// Pin the algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Request only the score (cheaper: no traceback).
    pub fn score_only(mut self, yes: bool) -> Self {
        self.score_only = yes;
        self
    }

    /// Set a per-job deadline.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Pin the SIMD kernel for this job's score inner loops.
    pub fn kernel(mut self, kernel: SimdKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Attribute this request to a client lane (see
    /// [`AlignRequest::client`] the field).
    pub fn client(mut self, client: impl Into<String>) -> Self {
        self.client = client.into();
        self
    }
}

/// Waits for one accepted job. Dropping the handle detaches the job (it
/// still runs and still counts in the stats).
#[derive(Debug)]
pub struct JobHandle {
    /// Engine-assigned id (unique per engine instance, monotonic).
    pub id: u64,
    cancel: CancelToken,
    rx: Receiver<CompletedJob>,
}

impl JobHandle {
    /// Block until the job resolves. Returns [`JobOutcome::Cancelled`] if
    /// the engine was torn down before the job could run.
    pub fn wait(self) -> JobOutcome {
        match self.rx.recv() {
            Ok(done) => done.outcome,
            // The engine dropped the job without responding (only possible
            // on abnormal teardown); surface it as a cancellation.
            Err(_) => JobOutcome::Cancelled { progress: None },
        }
    }

    /// Like [`JobHandle::wait`], but returns the full completion record
    /// — tag, distributed trace id, outcome — instead of just the
    /// outcome. `None` only on abnormal engine teardown.
    pub fn wait_completed(self) -> Option<CompletedJob> {
        self.rx.recv().ok()
    }

    /// Request cooperative cancellation of this job.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }
}

/// A multi-threaded batch alignment service.
///
/// ```
/// use tsa_service::{AlignRequest, Engine, ServiceConfig};
/// use tsa_seq::Seq;
///
/// let engine = Engine::start(ServiceConfig::default());
/// let a = Seq::dna("GATTACA").unwrap();
/// let b = Seq::dna("GATACA").unwrap();
/// let c = Seq::dna("GTTACA").unwrap();
/// let handle = engine.submit(AlignRequest::new("demo", a, b, c)).unwrap();
/// let outcome = handle.wait();
/// assert!(outcome.result().is_some());
/// let stats = engine.shutdown();
/// assert_eq!(stats.completed, 1);
/// ```
#[derive(Debug)]
pub struct Engine {
    /// The single producer slot. `None` after shutdown; taking it drops
    /// the last sender, which disconnects the channel and drains workers.
    producer: Mutex<Option<FairQueue<Job>>>,
    /// Receiver clone kept only for depth observation (never popped).
    observer: FairReceiver<Job>,
    /// Per-client rate limiting, in-flight quotas, and lane tallies.
    clients: Arc<ClientGovernor>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
    /// Cleared at the start of shutdown; stops the supervisor respawning.
    running: Arc<AtomicBool>,
    /// Present when `memory_budget` is configured.
    gate: Option<Arc<MemoryGate>>,
    stats: Arc<ServiceStats>,
    cache: Arc<ResultCache>,
    /// Present when `state_dir` is configured and usable.
    durability: Option<Arc<Durability>>,
    next_id: AtomicU64,
    config: ServiceConfig,
    /// When this engine was started; reported as `uptime_ms` in the
    /// protocol's `server` stats section.
    started: Instant,
}

impl Engine {
    /// Spawn the worker pool (plus its supervisor) and return a running
    /// engine.
    pub fn start(config: ServiceConfig) -> Engine {
        let opened = config.state_dir.as_ref().and_then(|dir| {
            let policy = CheckpointPolicy {
                every_planes: config.checkpoint_every_planes.max(1),
                every: config.checkpoint_every_millis.map(Duration::from_millis),
            };
            match Durability::open(dir, policy, config.cache_capacity.max(64)) {
                Ok((d, replay)) => Some((Arc::new(d), replay)),
                Err(e) => {
                    eprintln!(
                        "tsa-service: state dir {} unusable, durability disabled: {e}",
                        dir.display()
                    );
                    None
                }
            }
        });
        let (durability, replay) = match opened {
            Some((d, replay)) => (Some(d), Some(replay)),
            None => (None, None),
        };
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.workers
        };
        let (queue, rx) = fair_queue::<Job>(config.queue_capacity);
        let stats = Arc::new(ServiceStats::default());
        let shards = workers.next_power_of_two().min(16);
        let cache = Arc::new(ResultCache::new(config.cache_capacity, shards));
        let handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                let cache = Arc::clone(&cache);
                let stats = Arc::clone(&stats);
                std::thread::Builder::new()
                    .name(format!("tsa-worker-{i}"))
                    .spawn(move || worker_loop(rx, cache, stats))
                    .expect("spawn worker thread")
            })
            .collect();
        let workers = Arc::new(Mutex::new(handles));
        let running = Arc::new(AtomicBool::new(true));
        let supervisor = {
            let workers = Arc::clone(&workers);
            let running = Arc::clone(&running);
            let rx = rx.clone();
            let cache = Arc::clone(&cache);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("tsa-supervisor".into())
                .spawn(move || supervise(&workers, &running, rx, cache, stats))
                .expect("spawn supervisor thread")
        };
        let clients = Arc::new(ClientGovernor {
            rate: config.client_rate.filter(|&r| r > 0.0),
            max_in_flight: config.max_in_flight_per_client.filter(|&q| q > 0),
            lanes: Mutex::new(HashMap::new()),
        });
        let engine = Engine {
            producer: Mutex::new(Some(queue)),
            observer: rx,
            clients,
            workers,
            supervisor: Mutex::new(Some(supervisor)),
            running,
            gate: config.memory_budget.map(MemoryGate::new),
            stats,
            cache,
            durability,
            next_id: AtomicU64::new(1),
            config,
            started: Instant::now(),
        };
        if let Some(replay) = replay {
            engine.recover(replay);
        }
        engine
    }

    /// Replay the journal: preload completed jobs into the cache
    /// (`recovered`), resubmit in-flight jobs — resuming from their
    /// checkpoint snapshot when it decodes and its fingerprint matches
    /// (`resumed`), re-running cleanly otherwise (`restarted`).
    fn recover(&self, replay: Replay) {
        let d = Arc::clone(
            self.durability
                .as_ref()
                .expect("recover requires durability"),
        );
        let mut recovered = 0u64;
        for done in replay.completed {
            let req = &done.req;
            let (n1, n2, n3) = (req.seqs[0].len(), req.seqs[1].len(), req.seqs[2].len());
            let resolved = Aligner::auto(req.scoring.clone())
                .algorithm(req.algorithm)
                .resolve(n1, n2, n3);
            let key = CacheKey::new(
                &req.seqs[0],
                &req.seqs[1],
                &req.seqs[2],
                &req.scoring,
                resolved,
                req.score_only,
            );
            // The record's journal checksum was verified during replay;
            // re-derive the in-memory checksum so cache-hit verification
            // guards the entry from here on.
            let checksum = result_checksum(done.score, done.rows.as_ref(), done.algorithm);
            self.cache.put(
                key,
                CachedResult {
                    score: done.score,
                    rows: done.rows,
                    algorithm: done.algorithm,
                    recovered: true,
                    checksum,
                },
            );
            recovered += 1;
        }
        self.stats.recovered.add(recovered);
        // Journal records refused by the replay checksum check: counted
        // here so `integrity_quarantined` spans both quarantine sites
        // (replay preload and live cache hits).
        self.stats.integrity_quarantined.add(replay.quarantined);
        let (mut resumed, mut restarted) = (0u64, 0u64);
        for job in replay.inflight {
            let req = job.req;
            // The snapshot is usable only if it decodes (checksummed), was
            // produced by the kernel kind this request resolves to, and
            // fingerprints the same sequences and scoring.
            let resume = if req.score_only {
                d.load_snapshot(&job.uid).filter(|snap| {
                    let (n1, n2, n3) = (req.seqs[0].len(), req.seqs[1].len(), req.seqs[2].len());
                    Aligner::auto(req.scoring.clone())
                        .algorithm(req.algorithm)
                        .durable_kind(n1, n2, n3)
                        .is_some_and(|kind| {
                            snap.kind == kind.code()
                                && snap.fingerprint
                                    == job_fingerprint(
                                        &req.seqs[0],
                                        &req.seqs[1],
                                        &req.seqs[2],
                                        &req.scoring,
                                        kind,
                                    )
                        })
                })
            } else {
                None
            };
            if resume.is_some() {
                resumed += 1;
            } else {
                restarted += 1;
                d.remove_checkpoint(&job.uid);
            }
            self.resubmit_recovered(req, job.uid, resume);
        }
        self.stats.resumed.add(resumed);
        self.stats.restarted.add(restarted);
        if let Some(tracer) = &self.config.tracer {
            tracer
                .span("recovery")
                .with("recovered", recovered)
                .with("resumed", resumed)
                .with("restarted", restarted)
                .with("quarantined", replay.quarantined)
                .with("scrubbed_checkpoints", replay.scrubbed)
                .end();
        }
    }

    /// Resubmit one journal-replayed in-flight job, detached. Its `job`
    /// record is already in the (compacted) journal, so admission does
    /// not append another; any failure to re-admit resolves it as gone.
    fn resubmit_recovered(
        &self,
        mut req: AlignRequest,
        uid: String,
        resume: Option<FrontierSnapshot>,
    ) {
        let d = Arc::clone(self.durability.as_ref().expect("durability"));
        let drop_job = |uid: &str| {
            d.record_gone(uid);
            d.remove_checkpoint(uid);
        };
        let (degraded_from, reservation) = match self.govern(&mut req, true) {
            Ok(parts) => parts,
            Err(e) => {
                self.trace_rejection(&req, &e);
                drop_job(&uid);
                return;
            }
        };
        let (_id, _cancel, mut job) = self.make_job(
            req,
            Responder::Callback(Box::new(|_| {})),
            degraded_from,
            reservation,
        );
        job.durable = Some(DurableJob {
            uid: uid.clone(),
            resume,
            handle: Arc::clone(&d),
        });
        if self.admit(job, true).is_err() {
            drop_job(&uid);
        }
    }

    /// Admission-time resource governor: estimate the job's footprint for
    /// its *resolved* algorithm, enforce the configured limits (walking an
    /// `Auto` request down the degradation ladder instead of rejecting),
    /// and take the job's share of the global memory budget.
    fn govern(
        &self,
        req: &mut AlignRequest,
        blocking: bool,
    ) -> Result<(Option<Algorithm>, Option<Reservation>), SubmitError> {
        if self.config.max_cells.is_none() && self.config.memory_budget.is_none() {
            return Ok((None, None));
        }
        let (n1, n2, n3) = (req.seqs[0].len(), req.seqs[1].len(), req.seqs[2].len());
        let resolved = Aligner::auto(req.scoring.clone())
            .algorithm(req.algorithm)
            .resolve(n1, n2, n3);
        let inflate = faults::inflate_factor(&req.tag);
        let estimate_of = |alg| {
            let mut est = governor::estimate(alg, req.score_only, n1, n2, n3);
            est.peak_bytes = est.peak_bytes.saturating_mul(inflate);
            est
        };
        let (chosen, est) = if req.algorithm == Algorithm::Auto {
            let mut admitted = None;
            let mut last_refusal = None;
            for candidate in governor::ladder(resolved) {
                let est = estimate_of(candidate);
                match governor::check(est, self.config.max_cells, self.config.memory_budget) {
                    Ok(()) => {
                        admitted = Some((candidate, est));
                        break;
                    }
                    Err(e) => last_refusal = Some(e),
                }
            }
            match admitted {
                Some(pick) => pick,
                None => return Err(self.refuse(last_refusal.expect("ladder is non-empty"))),
            }
        } else {
            let est = estimate_of(resolved);
            governor::check(est, self.config.max_cells, self.config.memory_budget)
                .map_err(|e| self.refuse(e))?;
            (resolved, est)
        };
        let reservation = match &self.gate {
            Some(gate) if blocking => Some(gate.reserve_blocking(est.peak_bytes)),
            Some(gate) => match gate.try_reserve(est.peak_bytes) {
                Some(r) => Some(r),
                // Fits the budget alone, but not alongside the current
                // in-flight jobs — non-blocking submitters get an error.
                None => {
                    return Err(self.refuse(SubmitError::ResourceExhausted {
                        required: est.peak_bytes,
                        budget: self.config.memory_budget.unwrap_or(0),
                        limit: "memory-budget",
                    }))
                }
            },
            None => None,
        };
        let degraded_from = if chosen == resolved {
            None
        } else {
            req.algorithm = chosen;
            self.stats.downgraded.inc();
            Some(resolved)
        };
        Ok((degraded_from, reservation))
    }

    /// Count a governor refusal in the submission tallies.
    fn refuse(&self, e: SubmitError) -> SubmitError {
        self.stats.submitted.inc();
        self.stats.rejected.inc();
        e
    }

    /// A refused submission still leaves a trace: one `job` span with the
    /// rejection reason and no stage children. Carries the request's
    /// distributed context (or a freshly minted one when the flight
    /// recorder is on) so sheds show up in stitched trees too.
    fn trace_rejection(&self, req: &AlignRequest, err: &SubmitError) {
        if let Some(tracer) = &self.config.tracer {
            let span = match self.trace_context(req, tracer) {
                Some(ctx) => tracer.span_in("job", ctx),
                None => tracer.span("job"),
            };
            span.with("tag", req.tag.as_str())
                .with("rejected", err.to_string())
                .end();
        }
    }

    /// The distributed context a job's `job` span starts under: the
    /// propagated context when the request carries one; a freshly minted
    /// trace when the flight recorder is on (so purely local traffic is
    /// recorded too); `None` otherwise (plain local span, byte-identical
    /// to the pre-recorder behavior).
    fn trace_context(&self, req: &AlignRequest, tracer: &Tracer) -> Option<TraceContext> {
        req.trace.or_else(|| {
            self.config.recorder.as_ref().map(|_| TraceContext {
                trace_id: tracer.mint_trace_id(),
                parent_span: 0,
            })
        })
    }

    fn make_job(
        &self,
        req: AlignRequest,
        responder: Responder,
        degraded_from: Option<Algorithm>,
        reservation: Option<Reservation>,
    ) -> (u64, CancelToken, Job) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let deadline = req
            .deadline
            .or(self.config.default_deadline)
            .map(|d| Instant::now() + d);
        let cancel = CancelToken::new(deadline);
        let trace = self.config.tracer.as_ref().map(|tracer| {
            let root = match self.trace_context(&req, tracer) {
                Some(ctx) => tracer.span_in("job", ctx),
                None => tracer.span("job"),
            };
            let mut root = root
                .with("job_id", id)
                .with("tag", req.tag.as_str())
                .with("algorithm", req.algorithm.name());
            if let Some(from) = degraded_from {
                root.annotate("degraded_from", from.name());
            }
            let queued = root.child("queued");
            JobTrace {
                root,
                queued: Some(queued),
            }
        });
        let [a, b, c] = req.seqs;
        let kernel = match req.kernel {
            SimdKernel::Auto => self.config.default_kernel,
            pinned => pinned,
        };
        let job = Job {
            id,
            tag: req.tag,
            client: req.client,
            a,
            b,
            c,
            scoring: req.scoring,
            algorithm: req.algorithm,
            score_only: req.score_only,
            kernel,
            cancel: cancel.clone(),
            submitted: Instant::now(),
            responder: Some(responder),
            degraded_from,
            reservation,
            trace,
            durable: None,
            client_slot: None,
        };
        (id, cancel, job)
    }

    /// Journal a fresh admission when durability is on and the request
    /// can round-trip (preset scoring); returns the job's attachment.
    fn journal_admission(&self, req: &AlignRequest) -> Option<DurableJob> {
        let d = self.durability.as_ref()?;
        if !durability::journalable(req) {
            return None;
        }
        let uid = durability::job_uid(req);
        d.record_job(&uid, req);
        Some(DurableJob {
            uid,
            resume: None,
            handle: Arc::clone(d),
        })
    }

    fn admit(&self, mut job: Job, blocking: bool) -> Result<(), SubmitError> {
        self.stats.submitted.inc();
        // A draining engine refuses admission even before the producer
        // slot is taken, so queued work stops growing the moment the
        // drain is requested.
        if self
            .durability
            .as_ref()
            .is_some_and(|d| d.drain_requested())
        {
            self.stats.rejected.inc();
            job.reject("shutting_down");
            return Err(SubmitError::ShuttingDown);
        }
        // Clone the producer out of the slot so a blocking push does not
        // hold the lock (shutdown must stay callable concurrently).
        let Some(queue) = self.producer.lock().clone() else {
            self.stats.rejected.inc();
            job.reject("shutting_down");
            return Err(SubmitError::ShuttingDown);
        };
        let lane = job.client.clone();
        let pushed = if blocking {
            queue.push_blocking(&lane, job)
        } else {
            queue.try_push(&lane, job)
        };
        match pushed {
            Ok(()) => Ok(()),
            Err(PushError::Full(mut job)) => {
                self.stats.rejected.inc();
                job.reject("overloaded");
                Err(SubmitError::Overloaded {
                    capacity: queue.capacity(),
                    retry_after_ms: RETRY_HINT_MS,
                    scope: "queue",
                })
            }
            Err(PushError::Closed(mut job)) => {
                self.stats.rejected.inc();
                job.reject("shutting_down");
                Err(SubmitError::ShuttingDown)
            }
        }
    }

    /// Submit with backpressure: a full queue rejects immediately with
    /// [`SubmitError::Overloaded`].
    pub fn submit(&self, req: AlignRequest) -> Result<JobHandle, SubmitError> {
        self.submit_inner(req, false)
    }

    /// Submit, waiting for queue space instead of rejecting. For batch
    /// drivers that want throttling rather than errors.
    pub fn submit_blocking(&self, req: AlignRequest) -> Result<JobHandle, SubmitError> {
        self.submit_inner(req, true)
    }

    /// Per-client admission: the token-bucket rate limit and in-flight
    /// quota for named clients, tallied like any other refusal.
    fn admit_client(&self, req: &AlignRequest) -> Result<Option<ClientSlot>, SubmitError> {
        self.clients.admit(&req.client).map_err(|e| {
            self.stats.submitted.inc();
            self.stats.rejected.inc();
            self.stats.shed.inc();
            self.trace_rejection(req, &e);
            e
        })
    }

    fn submit_inner(
        &self,
        mut req: AlignRequest,
        blocking: bool,
    ) -> Result<JobHandle, SubmitError> {
        let slot = self.admit_client(&req)?;
        let (degraded_from, reservation) = self
            .govern(&mut req, blocking)
            // `map_err`, not `inspect_err`: MSRV 1.75 predates the latter.
            .map_err(|e| {
                self.trace_rejection(&req, &e);
                e
            })?;
        let durable = self.journal_admission(&req);
        let (tx, rx) = channel::bounded(1);
        let (id, cancel, mut job) =
            self.make_job(req, Responder::Channel(tx), degraded_from, reservation);
        job.durable = durable;
        job.client_slot = slot;
        let journaled = job
            .durable
            .as_ref()
            .map(|dj| (dj.uid.clone(), Arc::clone(&dj.handle)));
        if let Err(e) = self.admit(job, blocking) {
            if let Some((uid, d)) = journaled {
                d.record_gone(&uid);
            }
            return Err(e);
        }
        Ok(JobHandle { id, cancel, rx })
    }

    /// Submit with a completion callback instead of a handle. The callback
    /// runs on the worker thread that resolved the job; keep it short.
    /// Returns the engine-assigned job id and its cancellation token.
    pub fn submit_with(
        &self,
        mut req: AlignRequest,
        callback: impl FnOnce(CompletedJob) + Send + 'static,
    ) -> Result<(u64, CancelToken), SubmitError> {
        let slot = self.admit_client(&req)?;
        let (degraded_from, reservation) = self.govern(&mut req, false).map_err(|e| {
            self.trace_rejection(&req, &e);
            e
        })?;
        let durable = self.journal_admission(&req);
        let (id, cancel, mut job) = self.make_job(
            req,
            Responder::Callback(Box::new(callback)),
            degraded_from,
            reservation,
        );
        job.durable = durable;
        job.client_slot = slot;
        let journaled = job
            .durable
            .as_ref()
            .map(|dj| (dj.uid.clone(), Arc::clone(&dj.handle)));
        if let Err(e) = self.admit(job, false) {
            if let Some((uid, d)) = journaled {
                d.record_gone(&uid);
            }
            return Err(e);
        }
        Ok((id, cancel))
    }

    /// Point-in-time counters, including the live queue depth and (once
    /// any named client has been seen) the per-client lane rows.
    pub fn stats(&self) -> StatsSnapshot {
        let mut snap = self.stats.snapshot(self.observer.depth());
        snap.lanes = self.lane_snapshots();
        snap
    }

    /// Per-client lane rows: the fair scheduler's live depths joined with
    /// the client governor's tallies. Empty while only the anonymous
    /// default lane has ever been seen, so single-tenant `stats`
    /// responses are unchanged.
    fn lane_snapshots(&self) -> Vec<LaneSnapshot> {
        let depths = self.observer.lane_depths();
        let lanes = self.clients.lanes.lock();
        if lanes.is_empty() && depths.iter().all(|(client, _)| client.is_empty()) {
            return Vec::new();
        }
        // Scheduler lanes first (first-seen order), then governor-only
        // lanes (clients shed before ever enqueueing) alphabetically.
        let mut rows: Vec<LaneSnapshot> = depths
            .into_iter()
            .map(|(client, queued)| {
                let mut row = LaneSnapshot {
                    client,
                    queued,
                    ..LaneSnapshot::default()
                };
                if let Some(lane) = lanes.get(&row.client) {
                    row.in_flight = lane.in_flight as u64;
                    row.submitted = lane.submitted;
                    row.rejected = lane.rejected;
                }
                row
            })
            .collect();
        let mut extra: Vec<(&String, &ClientLane)> = lanes
            .iter()
            .filter(|(client, _)| !rows.iter().any(|row| &&row.client == client))
            .collect();
        extra.sort_by(|a, b| a.0.cmp(b.0));
        for (client, lane) in extra {
            rows.push(LaneSnapshot {
                client: client.clone(),
                queued: 0,
                in_flight: lane.in_flight as u64,
                submitted: lane.submitted,
                rejected: lane.rejected,
            });
        }
        rows
    }

    /// Prometheus-style text exposition of every service metric,
    /// including the stage-latency histograms and the live queue depth.
    /// Once any named client has been seen, a labeled
    /// `tsa_lane_queue_depth{client="..."}` gauge family is appended.
    pub fn metrics_text(&self) -> String {
        let mut text = self.stats.expose(self.observer.depth());
        let lanes = self.lane_snapshots();
        if !lanes.is_empty() {
            text.push_str("# HELP tsa_lane_queue_depth Jobs currently queued per client lane.\n");
            text.push_str("# TYPE tsa_lane_queue_depth gauge\n");
            for lane in &lanes {
                let label = lane
                    .client
                    .replace('\\', "\\\\")
                    .replace('"', "\\\"")
                    .replace('\n', "\\n");
                text.push_str(&format!(
                    "tsa_lane_queue_depth{{client=\"{label}\"}} {}\n",
                    lane.queued
                ));
            }
        }
        if let Some(recorder) = &self.config.recorder {
            let rs = recorder.stats();
            let families: [(&str, &str, &str, u64); 5] = [
                (
                    "tsa_recorder_traces_total",
                    "counter",
                    "Distributed traces completed (root span recorded).",
                    rs.completed,
                ),
                (
                    "tsa_recorder_retained_total",
                    "counter",
                    "Completed traces admitted to the flight-recorder ring.",
                    rs.retained,
                ),
                (
                    "tsa_recorder_sampled_out_total",
                    "counter",
                    "Clean traces dropped by probabilistic sampling.",
                    rs.sampled_out,
                ),
                (
                    "tsa_recorder_evicted_total",
                    "counter",
                    "Traces pushed out of the ring or pending buffer by the bound.",
                    rs.evicted,
                ),
                (
                    "tsa_recorder_pending_traces",
                    "gauge",
                    "Traces buffered awaiting their root span.",
                    rs.pending,
                ),
            ];
            for (name, kind, help, value) in families {
                text.push_str(&format!(
                    "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
                ));
            }
        }
        text
    }

    /// The flight recorder, when one is configured (the protocol's
    /// `trace` op queries through this).
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.config.recorder.as_ref()
    }

    /// Dump every retained trace tree as text to
    /// `<state_dir>/traces-dump.txt` (the SIGUSR1 path). `Ok(None)` when
    /// the recorder or the state dir is not configured. The write is
    /// atomic (temp file → fsync → rename, like snapshot files), so a
    /// crash mid-dump never leaves a torn file over a previous dump.
    pub fn dump_traces(&self) -> std::io::Result<Option<PathBuf>> {
        let (recorder, dir) = match (&self.config.recorder, &self.config.state_dir) {
            (Some(r), Some(d)) => (r, d),
            _ => return Ok(None),
        };
        std::fs::create_dir_all(dir)?;
        let path = dir.join("traces-dump.txt");
        let tmp = dir.join("traces-dump.txt.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            use std::io::Write as _;
            f.write_all(recorder.dump_text().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        Ok(Some(path))
    }

    /// Jobs currently queued.
    pub fn queue_depth(&self) -> usize {
        self.observer.depth()
    }

    /// Entries currently in the result cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// The configuration the engine was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// How long this engine has been running.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// False once [`Engine::shutdown`] has begun; new submissions are
    /// refused from that point.
    pub fn is_running(&self) -> bool {
        self.producer.lock().is_some()
    }

    /// Estimated bytes currently reserved by in-flight jobs (0 when no
    /// memory budget is configured).
    pub fn memory_in_flight(&self) -> u64 {
        self.gate.as_ref().map_or(0, |g| g.in_flight())
    }

    /// Graceful shutdown: stop admitting new jobs, let the workers drain
    /// everything already queued, join them (supervisor first, so nothing
    /// respawns during teardown), and return the final counters.
    /// Idempotent; callable through an `Arc<Engine>`.
    pub fn shutdown(&self) -> StatsSnapshot {
        self.running.store(false, Ordering::SeqCst);
        drop(self.producer.lock().take());
        if let Some(handle) = self.supervisor.lock().take() {
            let _ = handle.join();
        }
        let workers = std::mem::take(&mut *self.workers.lock());
        for handle in workers {
            let _ = handle.join();
        }
        let mut snap = self.stats.snapshot(self.observer.depth());
        snap.lanes = self.lane_snapshots();
        snap
    }

    /// Graceful *drain*: like [`Engine::shutdown`], but durable work is
    /// preserved instead of completed — admission stops, queued durable
    /// jobs short-circuit (staying in-flight in the journal), running
    /// durable kernels store a final checkpoint snapshot at the next
    /// plane boundary and stop, and the journal is flushed to stable
    /// storage. A subsequent [`Engine::start`] with the same `state_dir`
    /// resumes the preserved jobs. Without a `state_dir` this is exactly
    /// `shutdown`. Idempotent.
    pub fn drain(&self) -> StatsSnapshot {
        if let Some(d) = &self.durability {
            d.request_drain();
        }
        let snap = self.shutdown();
        if let Some(d) = &self.durability {
            let _ = d.sync();
        }
        snap
    }
}

/// The pool supervisor: while the engine runs, replace any worker thread
/// that died (a panic that escaped the kernel isolation boundary) so the
/// pool stays at full strength. Runs on its own thread; polling is cheap
/// (`JoinHandle::is_finished` is a flag load).
fn supervise(
    workers: &Mutex<Vec<JoinHandle<()>>>,
    running: &AtomicBool,
    rx: FairReceiver<Job>,
    cache: Arc<ResultCache>,
    stats: Arc<ServiceStats>,
) {
    let mut respawned = 0usize;
    while running.load(Ordering::SeqCst) {
        {
            let mut pool = workers.lock();
            for slot in pool.iter_mut() {
                if !slot.is_finished() {
                    continue;
                }
                let fresh = {
                    let (rx, cache, stats) = (rx.clone(), Arc::clone(&cache), Arc::clone(&stats));
                    std::thread::Builder::new()
                        .name(format!("tsa-worker-r{respawned}"))
                        .spawn(move || worker_loop(rx, cache, stats))
                        .expect("respawn worker thread")
                };
                respawned += 1;
                let dead = std::mem::replace(slot, fresh);
                let _ = dead.join();
                stats.respawns.inc();
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CancelStage;

    fn triple(text: &str) -> (Seq, Seq, Seq) {
        (
            Seq::dna(text).unwrap(),
            Seq::dna(text).unwrap(),
            Seq::dna(text).unwrap(),
        )
    }

    fn small_config() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 32,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn submit_and_wait_round_trip() {
        let engine = Engine::start(small_config());
        let (a, b, c) = triple("GATTACA");
        let handle = engine.submit(AlignRequest::new("t", a, b, c)).unwrap();
        let outcome = handle.wait();
        let result = outcome.result().expect("job completes");
        assert!(!result.cached);
        assert_eq!(result.algorithm, Algorithm::Wavefront);
        assert!(result.rows.is_some());
        let stats = engine.shutdown();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn identical_resubmission_hits_the_cache() {
        let engine = Engine::start(small_config());
        let (a, b, c) = triple("GATTACAGATTACA");
        let first = engine
            .submit(AlignRequest::new("1", a.clone(), b.clone(), c.clone()))
            .unwrap()
            .wait();
        let second = engine
            .submit(AlignRequest::new("2", a, b, c))
            .unwrap()
            .wait();
        let (r1, r2) = (first.result().unwrap(), second.result().unwrap());
        assert!(!r1.cached);
        assert!(r2.cached, "second identical job is a cache hit");
        assert_eq!(r1.score, r2.score);
        assert_eq!(r1.rows, r2.rows);
        let stats = engine.shutdown();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
    }

    #[test]
    fn zero_deadline_cancels_while_queued() {
        let engine = Engine::start(small_config());
        let (a, b, c) = triple("GATTACA");
        let outcome = engine
            .submit(AlignRequest::new("d", a, b, c).deadline(Duration::ZERO))
            .unwrap()
            .wait();
        assert!(matches!(
            outcome,
            JobOutcome::DeadlineExceeded {
                stage: CancelStage::Queued,
                ..
            }
        ));
        let stats = engine.shutdown();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn explicit_cancel_before_run() {
        // One worker pinned on a slow job guarantees the second job is
        // still queued when we cancel it.
        let engine = Engine::start(ServiceConfig {
            workers: 1,
            ..small_config()
        });
        let slow = Seq::dna("ACGTACGTAC".repeat(12)).unwrap();
        let blocker = engine
            .submit(AlignRequest::new("slow", slow.clone(), slow.clone(), slow))
            .unwrap();
        let (a, b, c) = triple("GATTACA");
        let victim = engine.submit(AlignRequest::new("v", a, b, c)).unwrap();
        victim.cancel();
        assert!(matches!(victim.wait(), JobOutcome::Cancelled { .. }));
        assert!(blocker.wait().result().is_some());
        engine.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        let engine = Engine::start(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            cache_capacity: 0,
            ..ServiceConfig::default()
        });
        let slow = Seq::dna("ACGTACGTAC".repeat(12)).unwrap();
        // First job occupies the worker; second fills the queue; the
        // third must bounce.
        let h1 = engine
            .submit(AlignRequest::new(
                "1",
                slow.clone(),
                slow.clone(),
                slow.clone(),
            ))
            .unwrap();
        let mut held = Vec::new();
        let mut rejected = None;
        for i in 0..10 {
            let (a, b, c) = triple("GATTACA");
            match engine.submit(AlignRequest::new(format!("j{i}"), a, b, c)) {
                Ok(h) => held.push(h),
                Err(e) => {
                    rejected = Some(e);
                    break;
                }
            }
        }
        assert_eq!(
            rejected,
            Some(SubmitError::Overloaded {
                capacity: 1,
                retry_after_ms: RETRY_HINT_MS,
                scope: "queue",
            })
        );
        assert!(h1.wait().result().is_some());
        for h in held {
            assert!(h.wait().result().is_some());
        }
        let stats = engine.shutdown();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.resolved(), stats.submitted);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn client_rate_limit_sheds_with_retry_hint() {
        let engine = Engine::start(ServiceConfig {
            client_rate: Some(1.0), // burst of 1: the second submit sheds
            ..small_config()
        });
        let (a, b, c) = triple("GATTACA");
        let first = engine
            .submit(AlignRequest::new("r1", a.clone(), b.clone(), c.clone()).client("tenant-a"));
        assert!(first.is_ok(), "a full bucket admits");
        let err = engine
            .submit(AlignRequest::new("r2", a.clone(), b.clone(), c.clone()).client("tenant-a"))
            .unwrap_err();
        match err {
            SubmitError::Overloaded {
                scope,
                retry_after_ms,
                capacity,
            } => {
                assert_eq!(scope, "client-rate");
                assert!(retry_after_ms > 0, "refill time is a concrete hint");
                assert_eq!(capacity, 1);
            }
            other => panic!("expected client-rate shed, got {other:?}"),
        }
        // Anonymous traffic is never rate limited.
        for i in 0..4 {
            let (a, b, c) = triple("GATTACA");
            assert!(engine
                .submit(AlignRequest::new(format!("anon{i}"), a, b, c))
                .is_ok());
        }
        let stats = engine.shutdown();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.resolved(), stats.submitted);
        let lane = stats
            .lanes
            .iter()
            .find(|l| l.client == "tenant-a")
            .expect("named client gets a lane row");
        assert_eq!(lane.submitted, 2);
        assert_eq!(lane.rejected, 1);
    }

    #[test]
    fn client_in_flight_quota_rejects_and_releases() {
        let engine = Engine::start(ServiceConfig {
            workers: 1,
            max_in_flight_per_client: Some(1),
            ..small_config()
        });
        // Pin the single worker with a slow anonymous job so tenant-a's
        // first job is guaranteed still in flight for the second.
        let slow = Seq::dna("ACGTACGTAC".repeat(12)).unwrap();
        let blocker = engine
            .submit(AlignRequest::new("slow", slow.clone(), slow.clone(), slow))
            .unwrap();
        let (a, b, c) = triple("GATTACA");
        let held = engine
            .submit(AlignRequest::new("q1", a.clone(), b.clone(), c.clone()).client("tenant-a"))
            .unwrap();
        let err = engine
            .submit(AlignRequest::new("q2", a.clone(), b.clone(), c.clone()).client("tenant-a"))
            .unwrap_err();
        assert!(matches!(
            err,
            SubmitError::Overloaded {
                scope: "in-flight",
                capacity: 1,
                retry_after_ms: RETRY_HINT_MS,
            }
        ));
        // Another client has its own quota.
        let other = engine
            .submit(AlignRequest::new("q3", a.clone(), b.clone(), c.clone()).client("tenant-b"))
            .unwrap();
        assert!(blocker.wait().result().is_some());
        assert!(held.wait().result().is_some());
        assert!(other.wait().result().is_some());
        // The slot came back: tenant-a can submit again.
        assert!(engine
            .submit(AlignRequest::new("q4", a, b, c).client("tenant-a"))
            .is_ok());
        let stats = engine.shutdown();
        assert_eq!(stats.shed, 1);
        let lane = stats.lanes.iter().find(|l| l.client == "tenant-a").unwrap();
        assert_eq!(lane.in_flight, 0, "slots drain to zero");
        assert_eq!(lane.rejected, 1);
    }

    #[test]
    fn scheduler_interleaves_client_lanes() {
        // One worker => completion order is dequeue order. A blocker pins
        // the worker while both lanes fill; DRR then alternates them even
        // though "heavy" enqueued all its jobs first.
        let engine = Engine::start(ServiceConfig {
            workers: 1,
            queue_capacity: 32,
            cache_capacity: 0,
            ..ServiceConfig::default()
        });
        let order = Arc::new(Mutex::new(Vec::<String>::new()));
        let slow = Seq::dna("ACGTACGTAC".repeat(12)).unwrap();
        let submit = |tag: &str, client: &str, seq: &Seq| {
            let order = Arc::clone(&order);
            engine
                .submit_with(
                    AlignRequest::new(tag, seq.clone(), seq.clone(), seq.clone()).client(client),
                    move |done| order.lock().push(done.tag),
                )
                .unwrap();
        };
        submit("blocker", "", &slow);
        let (tiny, _, _) = triple("GATTACA");
        for i in 0..6 {
            submit(&format!("h{i}"), "heavy", &tiny);
        }
        for i in 0..2 {
            submit(&format!("l{i}"), "light", &tiny);
        }
        engine.shutdown();
        let order: Vec<String> = order.lock().clone();
        assert_eq!(order.len(), 9);
        let pos = |tag: &str| order.iter().position(|t| t == tag).unwrap();
        // Fairness: light's two jobs are served within the first two DRR
        // rotations, not behind heavy's whole backlog.
        assert!(pos("l0") < pos("h2"), "order was {order:?}");
        assert!(pos("l1") < pos("h3"), "order was {order:?}");
        // FIFO within each lane.
        for i in 0..5 {
            assert!(pos(&format!("h{i}")) < pos(&format!("h{}", i + 1)));
        }
    }

    #[test]
    fn heavy_client_cannot_starve_light_client() {
        // The overload-isolation contract: with an in-flight quota below
        // the queue capacity, a flooding tenant saturates its own quota
        // while the other tenant's submissions are admitted and complete.
        let engine = Engine::start(ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 0,
            max_in_flight_per_client: Some(4),
            ..ServiceConfig::default()
        });
        let slow = Seq::dna("ACGTACGTAC".repeat(8)).unwrap();
        let mut flood_rejected = 0u64;
        for i in 0..40 {
            let req = AlignRequest::new(format!("a{i}"), slow.clone(), slow.clone(), slow.clone())
                .client("heavy")
                .score_only(true);
            if engine.submit(req).is_err() {
                flood_rejected += 1;
            }
        }
        assert!(flood_rejected > 0, "the flood exceeds the quota");
        for i in 0..10 {
            let (a, b, c) = triple("GATTACA");
            let outcome = engine
                .submit(AlignRequest::new(format!("b{i}"), a, b, c).client("light"))
                .expect("light client is never rejected")
                .wait();
            assert!(outcome.result().is_some(), "light job {i} completes");
        }
        let stats = engine.shutdown();
        assert_eq!(stats.resolved(), stats.submitted);
        let heavy = stats.lanes.iter().find(|l| l.client == "heavy").unwrap();
        let light = stats.lanes.iter().find(|l| l.client == "light").unwrap();
        assert_eq!(heavy.rejected, flood_rejected);
        assert_eq!(light.rejected, 0);
        assert_eq!(light.submitted, 10);
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let engine = Engine::start(small_config());
        engine.shutdown();
        let (a, b, c) = triple("ACGT");
        assert_eq!(
            engine.submit(AlignRequest::new("x", a, b, c)).unwrap_err(),
            SubmitError::ShuttingDown
        );
        // Idempotent.
        let stats = engine.shutdown();
        assert_eq!(stats.rejected, 1);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let engine = Engine::start(ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            cache_capacity: 0,
            ..ServiceConfig::default()
        });
        let handles: Vec<JobHandle> = (0..10)
            .map(|i| {
                let (a, b, c) = triple("GATTACAGA");
                engine
                    .submit(AlignRequest::new(format!("{i}"), a, b, c))
                    .unwrap()
            })
            .collect();
        let stats = engine.shutdown();
        assert_eq!(stats.completed, 10, "graceful shutdown runs queued jobs");
        for h in handles {
            assert!(h.wait().result().is_some());
        }
    }

    #[test]
    fn failed_configuration_reports_failed() {
        let engine = Engine::start(small_config());
        let (a, b, c) = triple("GATTACAGATTACA");
        let outcome = engine
            .submit(
                AlignRequest::new("f", a, b, c)
                    .scoring(Scoring::dna_default().with_gap(tsa_scoring::GapModel::affine(-4, -1)))
                    .algorithm(Algorithm::FullDp),
            )
            .unwrap()
            .wait();
        assert!(matches!(outcome, JobOutcome::Failed(_)));
        let stats = engine.shutdown();
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn score_only_jobs_carry_no_rows() {
        let engine = Engine::start(small_config());
        let (a, b, c) = triple("GATTACA");
        let outcome = engine
            .submit(AlignRequest::new("s", a, b, c).score_only(true))
            .unwrap()
            .wait();
        let result = outcome.result().unwrap();
        assert!(result.rows.is_none());
        engine.shutdown();
    }

    #[test]
    fn governor_rejects_pinned_overbudget_algorithm() {
        let engine = Engine::start(ServiceConfig {
            memory_budget: Some(64 * 1024),
            ..small_config()
        });
        // 160³ full lattice ≈ 16.7 MB, far over the 64 KiB budget.
        let long = Seq::dna("ACGTACGTGA".repeat(16)).unwrap();
        let err = engine
            .submit(
                AlignRequest::new("big", long.clone(), long.clone(), long)
                    .algorithm(Algorithm::FullDp),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            SubmitError::ResourceExhausted {
                limit: "memory-budget",
                ..
            }
        ));
        let stats = engine.shutdown();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.resolved(), stats.submitted);
    }

    #[test]
    fn governor_enforces_max_cells() {
        let engine = Engine::start(ServiceConfig {
            max_cells: Some(1_000_000),
            ..small_config()
        });
        let long = Seq::dna("ACGTACGTGA".repeat(16)).unwrap();
        let err = engine
            .submit(
                AlignRequest::new("slow", long.clone(), long.clone(), long)
                    .algorithm(Algorithm::FullDp),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            SubmitError::ResourceExhausted {
                limit: "max-cells",
                ..
            }
        ));
        // Small jobs still pass.
        let (a, b, c) = triple("GATTACA");
        assert!(engine.submit(AlignRequest::new("ok", a, b, c)).is_ok());
        engine.shutdown();
    }

    #[test]
    fn governor_downgrades_auto_to_fit_budget() {
        let engine = Engine::start(ServiceConfig {
            memory_budget: Some(1024 * 1024),
            ..small_config()
        });
        // Auto resolves to Wavefront (full lattice, ≈16.7 MB — over the
        // 1 MiB budget); the ladder lands on ParallelHirschberg (≈0.6 MB).
        let long = Seq::dna("ACGTACGTGA".repeat(16)).unwrap();
        let outcome = engine
            .submit(AlignRequest::new("auto", long.clone(), long.clone(), long))
            .unwrap()
            .wait();
        let result = outcome.result().expect("degraded job still completes");
        assert_eq!(result.algorithm, Algorithm::ParallelHirschberg);
        assert_eq!(result.degraded_from, Some(Algorithm::Wavefront));
        let stats = engine.shutdown();
        assert_eq!(stats.downgraded, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn memory_reservations_drain_to_zero() {
        let engine = Engine::start(ServiceConfig {
            memory_budget: Some(64 * 1024 * 1024),
            ..small_config()
        });
        let handles: Vec<JobHandle> = (0..6)
            .map(|i| {
                let (a, b, c) = triple("GATTACAGATTACA");
                engine
                    .submit(AlignRequest::new(format!("{i}"), a, b, c))
                    .unwrap()
            })
            .collect();
        for h in handles {
            assert!(h.wait().result().is_some());
        }
        // All jobs resolved, so every reservation must be back.
        assert_eq!(engine.memory_in_flight(), 0);
        engine.shutdown();
    }

    #[test]
    fn callback_submission_fires_exactly_once() {
        let engine = Engine::start(small_config());
        let (tx, rx) = channel::unbounded();
        let (a, b, c) = triple("GATTACA");
        let (id, _cancel) = engine
            .submit_with(AlignRequest::new("cb", a, b, c), move |done| {
                tx.send(done).unwrap();
            })
            .unwrap();
        let done = rx.recv().unwrap();
        assert_eq!(done.id, id);
        assert_eq!(done.tag, "cb");
        assert!(done.outcome.result().is_some());
        assert!(rx.recv_timeout(Duration::from_millis(50)).is_err());
        engine.shutdown();
    }

    fn state_dir(tag: &str) -> std::path::PathBuf {
        let mut dir = std::env::temp_dir();
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        dir.push(format!("tsa-engine-{tag}-{}-{nanos}", std::process::id()));
        dir
    }

    fn durable_config(dir: &std::path::Path) -> ServiceConfig {
        ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 32,
            state_dir: Some(dir.to_path_buf()),
            checkpoint_every_planes: 1,
            ..ServiceConfig::default()
        }
    }

    fn await_completed(engine: &Engine, want: u64) {
        let deadline = Instant::now() + Duration::from_secs(20);
        while engine.stats().completed < want {
            assert!(
                Instant::now() < deadline,
                "recovered jobs complete within the deadline"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn completed_jobs_recover_into_cache_across_restart() {
        let dir = state_dir("recover");
        let (a, b, c) = triple("GATTACAGATTACA");
        let first_score = {
            let engine = Engine::start(durable_config(&dir));
            let outcome = engine
                .submit(AlignRequest::new("r1", a.clone(), b.clone(), c.clone()))
                .unwrap()
                .wait();
            let score = outcome.result().expect("first run completes").score;
            engine.shutdown();
            score
        };
        let engine = Engine::start(durable_config(&dir));
        let stats = engine.stats();
        assert_eq!(stats.recovered, 1, "done record preloads the cache");
        assert_eq!(stats.resumed + stats.restarted, 0);
        let outcome = engine
            .submit(AlignRequest::new("r2", a, b, c))
            .unwrap()
            .wait();
        let result = outcome.result().expect("replayed result serves");
        assert!(result.cached);
        assert!(result.recovered, "hit is marked as journal-recovered");
        assert_eq!(result.score, first_score);
        let stats = engine.shutdown();
        assert_eq!(stats.cache_recovered_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inflight_job_without_snapshot_restarts_cleanly() {
        let dir = state_dir("restart");
        let (a, b, c) = triple("GATTACAGATTACA");
        let mut req = AlignRequest::new("inflight", a.clone(), b.clone(), c.clone());
        req.score_only = true;
        let expected = Aligner::auto(req.scoring.clone())
            .score3(&a, &b, &c)
            .unwrap();
        {
            // A journal holding a `job` record with no `done`: the crash
            // happened mid-run, and no checkpoint snapshot survived.
            let policy = CheckpointPolicy {
                every_planes: 1,
                every: None,
            };
            let (d, _replay) = Durability::open(&dir, policy, 64).unwrap();
            d.record_job(&durability::job_uid(&req), &req);
            d.sync().unwrap();
        }
        let engine = Engine::start(durable_config(&dir));
        let stats = engine.stats();
        assert_eq!(stats.restarted, 1, "no snapshot means a clean re-run");
        assert_eq!(stats.resumed, 0);
        await_completed(&engine, 1);
        let outcome = engine.submit(req).unwrap().wait();
        let result = outcome.result().expect("re-run result is served");
        assert!(result.cached, "recovered re-run populated the cache");
        assert_eq!(result.score, expected);
        engine.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_preserves_queued_durable_jobs_for_restart() {
        let dir = state_dir("drain");
        let engine = Engine::start(durable_config(&dir));
        // Occupy the single worker with a slow, non-journalable job
        // (custom matrix) so the durable jobs behind it are still queued
        // when the drain flag goes up.
        let blocker_text: String = "GATTACAGATCCTA".repeat(16);
        let (ba, bb, bc) = triple(&blocker_text);
        let blocker = AlignRequest::new("blocker", ba, bb, bc).scoring(Scoring::new(
            tsa_scoring::SubstMatrix::match_mismatch("blocker", 2, -3),
            tsa_scoring::GapModel::linear(-2),
        ));
        engine.submit(blocker).unwrap();
        let (a, b, c) = triple("GATTACAGATTACAGATTACA");
        for i in 0..3 {
            let mut req = AlignRequest::new(format!("d{i}"), a.clone(), b.clone(), c.clone());
            req.score_only = true;
            // Distinct scorings so the three jobs have distinct uids.
            req = req.scoring(Scoring::by_name(["dna", "unit", "edit"][i]).unwrap());
            engine.submit(req).unwrap();
        }
        let snap = engine.drain();
        assert_eq!(
            snap.submitted,
            snap.completed + snap.rejected + snap.cancelled + snap.failed,
            "accounting identity holds through drain"
        );
        let preserved = snap.cancelled;
        assert!(
            preserved >= 1,
            "at least one queued durable job was preserved, not completed"
        );
        let engine = Engine::start(durable_config(&dir));
        let stats = engine.stats();
        assert_eq!(
            stats.resumed + stats.restarted,
            preserved,
            "every drained job comes back in-flight"
        );
        assert_eq!(
            stats.recovered,
            3 - preserved,
            "durable jobs that did finish recover as cache entries"
        );
        await_completed(&engine, preserved);
        engine.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
