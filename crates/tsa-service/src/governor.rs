//! Admission-time resource governor.
//!
//! Before a job enters the queue the engine estimates, from the sequence
//! lengths and the *resolved* algorithm, how many DP cell updates it will
//! perform and how many bytes its kernel will peak at (via
//! [`tsa_perfmodel::memory`]). Two limits apply:
//!
//! * `max_cells` — a per-job cap on estimated cell updates (a time bound
//!   in disguise: cells/second is roughly constant per machine).
//! * `memory_budget` — both a per-job cap on estimated peak bytes and a
//!   global budget on the *sum* of in-flight estimates, enforced by
//!   [`MemoryGate`] as a semaphore-style reservation released when the
//!   job resolves.
//!
//! A pinned over-budget algorithm is rejected with
//! [`SubmitError::ResourceExhausted`]. An [`Algorithm::Auto`] request is
//! instead walked down a degradation ladder (resolved choice →
//! `ParallelHirschberg` → `Hirschberg`, all exact) and admitted with the
//! first variant that fits, recording the downgrade in the response.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Condvar, Mutex};

use tsa_core::Algorithm;
use tsa_perfmodel::memory;

use crate::error::SubmitError;

/// Estimated footprint of one job, in DP cell updates and peak bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceEstimate {
    /// Estimated DP cell updates the kernel performs.
    pub cells: u64,
    /// Estimated peak working-set bytes of the kernel.
    pub peak_bytes: u64,
}

/// Estimate the footprint of `algorithm` (already resolved — not `Auto`)
/// on sequences of lengths `n1 × n2 × n3`. Mirrors the dispatch in the
/// worker: score-only jobs use the rolling score passes where available.
pub fn estimate(
    algorithm: Algorithm,
    score_only: bool,
    n1: usize,
    n2: usize,
    n3: usize,
) -> ResourceEstimate {
    let cube = ((n1 + 1) as u64) * ((n2 + 1) as u64) * ((n3 + 1) as u64);
    let (cells, peak_bytes) = match algorithm {
        // Score-only jobs dispatch to the O(n²) rolling passes for the
        // algorithms that have them (see `Aligner::score3`).
        Algorithm::FullDp | Algorithm::Hirschberg if score_only => {
            (cube, memory::slab_score(n2, n3))
        }
        Algorithm::Wavefront | Algorithm::ParallelHirschberg if score_only => {
            (cube, memory::plane_score(n1, n2))
        }
        // Full-lattice traceback algorithms materialize the whole cube —
        // as does the tile-wavefront score grid.
        Algorithm::FullDp
        | Algorithm::Wavefront
        | Algorithm::Blocked { .. }
        | Algorithm::BlockedDataflow { .. }
        | Algorithm::TileWavefront { .. }
        | Algorithm::CarrilloLipman
        | Algorithm::BandedAdaptive => (cube, memory::full_lattice(n1, n2, n3)),
        // Divide and conquer: ≤2× the cell updates, quadratic space.
        Algorithm::Hirschberg | Algorithm::ParallelHirschberg => {
            (2 * cube, memory::hirschberg(n1, n2, n3))
        }
        // 7 gap states per lattice cell.
        Algorithm::AffineDp => (7 * cube, memory::affine_lattice(n1, n2, n3)),
        // Pairwise-driven heuristics: quadratic in both time and space.
        Algorithm::CenterStar | Algorithm::Anchored => {
            let pairwise = ((n1 + 1) * (n2 + 1) + (n1 + 1) * (n3 + 1) + (n2 + 1) * (n3 + 1)) as u64;
            (pairwise, memory::center_star(n1, n2, n3))
        }
        // `Auto` never reaches the estimator; resolve first.
        Algorithm::Auto => (cube, memory::full_lattice(n1, n2, n3)),
    };
    ResourceEstimate {
        cells,
        peak_bytes: peak_bytes as u64,
    }
}

/// The degradation ladder tried, in order, for an `Auto` request whose
/// resolved algorithm is over budget. Every rung is exact; the ladder
/// trades time (≤2×) for space (cubic → quadratic).
pub(crate) fn ladder(resolved: Algorithm) -> [Algorithm; 3] {
    [
        resolved,
        Algorithm::ParallelHirschberg,
        Algorithm::Hirschberg,
    ]
}

/// Check one candidate against the per-job limits.
pub(crate) fn check(
    est: ResourceEstimate,
    max_cells: Option<u64>,
    memory_budget: Option<u64>,
) -> Result<(), SubmitError> {
    if let Some(cap) = max_cells {
        if est.cells > cap {
            return Err(SubmitError::ResourceExhausted {
                required: est.cells,
                budget: cap,
                limit: "max-cells",
            });
        }
    }
    if let Some(budget) = memory_budget {
        if est.peak_bytes > budget {
            return Err(SubmitError::ResourceExhausted {
                required: est.peak_bytes,
                budget,
                limit: "memory-budget",
            });
        }
    }
    Ok(())
}

/// Semaphore-style gate over the global in-flight estimated-bytes budget.
/// Reservations are RAII: dropping a [`Reservation`] (job resolved, or
/// pushed back by a full queue) returns its bytes and wakes blocked
/// submitters.
#[derive(Debug)]
pub(crate) struct MemoryGate {
    budget: u64,
    reserved: Mutex<u64>,
    freed: Condvar,
    /// Observability only: current reservation total.
    in_flight: AtomicU64,
}

impl MemoryGate {
    pub(crate) fn new(budget: u64) -> Arc<MemoryGate> {
        Arc::new(MemoryGate {
            budget,
            reserved: Mutex::new(0),
            freed: Condvar::new(),
            in_flight: AtomicU64::new(0),
        })
    }

    /// Reserve `bytes` if they fit right now. The caller must have already
    /// checked `bytes <= budget` via [`check`]; a single over-budget job
    /// would otherwise block forever on the blocking path.
    pub(crate) fn try_reserve(self: &Arc<Self>, bytes: u64) -> Option<Reservation> {
        let mut reserved = self.reserved.lock().expect("memory gate poisoned");
        if *reserved + bytes > self.budget {
            return None;
        }
        *reserved += bytes;
        self.in_flight.store(*reserved, Ordering::Relaxed);
        Some(Reservation {
            gate: Arc::clone(self),
            bytes,
        })
    }

    /// Reserve `bytes`, waiting for in-flight jobs to release enough
    /// budget. Requires `bytes <= budget`.
    pub(crate) fn reserve_blocking(self: &Arc<Self>, bytes: u64) -> Reservation {
        let mut reserved = self.reserved.lock().expect("memory gate poisoned");
        while *reserved + bytes > self.budget {
            reserved = self.freed.wait(reserved).expect("memory gate poisoned");
        }
        *reserved += bytes;
        self.in_flight.store(*reserved, Ordering::Relaxed);
        Reservation {
            gate: Arc::clone(self),
            bytes,
        }
    }

    /// Estimated bytes currently reserved by queued + running jobs.
    pub(crate) fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    fn release(&self, bytes: u64) {
        let mut reserved = self.reserved.lock().expect("memory gate poisoned");
        *reserved = reserved.saturating_sub(bytes);
        self.in_flight.store(*reserved, Ordering::Relaxed);
        self.freed.notify_all();
    }
}

/// RAII share of the global memory budget, held by a job from admission
/// until it resolves (including resolution-by-worker-death).
#[derive(Debug)]
pub(crate) struct Reservation {
    gate: Arc<MemoryGate>,
    bytes: u64,
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.gate.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_only_estimates_are_quadratic() {
        let n = 200;
        let full = estimate(Algorithm::Wavefront, false, n, n, n);
        let score = estimate(Algorithm::Wavefront, false, n, n, n);
        assert_eq!(full.peak_bytes, score.peak_bytes);
        let score = estimate(Algorithm::Wavefront, true, n, n, n);
        assert!(score.peak_bytes < full.peak_bytes / 10);
        assert_eq!(score.cells, full.cells);
    }

    #[test]
    fn hirschberg_trades_cells_for_bytes() {
        let n = 100;
        let full = estimate(Algorithm::FullDp, false, n, n, n);
        let dc = estimate(Algorithm::ParallelHirschberg, false, n, n, n);
        assert_eq!(dc.cells, 2 * full.cells);
        assert!(dc.peak_bytes < full.peak_bytes / 10);
    }

    #[test]
    fn check_trips_the_right_limit() {
        let est = ResourceEstimate {
            cells: 1000,
            peak_bytes: 4000,
        };
        assert!(check(est, None, None).is_ok());
        assert!(check(est, Some(1000), Some(4000)).is_ok());
        match check(est, Some(999), None) {
            Err(SubmitError::ResourceExhausted { limit, .. }) => {
                assert_eq!(limit, "max-cells")
            }
            other => panic!("unexpected: {other:?}"),
        }
        match check(est, None, Some(3999)) {
            Err(SubmitError::ResourceExhausted {
                required, budget, ..
            }) => {
                assert_eq!((required, budget), (4000, 3999));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn gate_reserves_and_releases() {
        let gate = MemoryGate::new(100);
        let a = gate.try_reserve(60).expect("fits");
        assert_eq!(gate.in_flight(), 60);
        assert!(gate.try_reserve(50).is_none());
        let b = gate.try_reserve(40).expect("fits exactly");
        assert_eq!(gate.in_flight(), 100);
        drop(a);
        assert_eq!(gate.in_flight(), 40);
        drop(b);
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn blocking_reservation_waits_for_release() {
        let gate = MemoryGate::new(10);
        let held = gate.try_reserve(10).expect("fits");
        let gate2 = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || {
            let _r = gate2.reserve_blocking(5);
            gate2.in_flight()
        });
        // Give the waiter a moment to block, then free the budget.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(held);
        assert_eq!(waiter.join().expect("no panic"), 5);
    }

    #[test]
    fn ladder_starts_at_resolved_and_ends_quadratic() {
        let l = ladder(Algorithm::Wavefront);
        assert_eq!(l[0], Algorithm::Wavefront);
        assert_eq!(l[2], Algorithm::Hirschberg);
    }
}
