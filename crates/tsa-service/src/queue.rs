//! The bounded submission queue with admission control.
//!
//! A thin wrapper over a bounded MPMC channel that adds the two things
//! the engine needs on top of raw channel semantics:
//!
//! * **admission control** — [`JobQueue::try_push`] never blocks; a full
//!   queue is an explicit [`PushError::Full`] so callers can surface
//!   backpressure (`overloaded`) instead of buffering without bound;
//! * **depth accounting** — a gauge incremented before a successful push
//!   and decremented when a worker pops, so observers can watch the
//!   backlog and tests can assert it returns to zero at quiescence.

use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Why a push was refused.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity; the rejected item is handed back.
    Full(T),
    /// All receivers are gone (engine shut down); item handed back.
    Closed(T),
}

/// Producer half: admission-controlled handle the engine submits through.
#[derive(Debug)]
pub struct JobQueue<T> {
    tx: Sender<T>,
    depth: Arc<AtomicUsize>,
    capacity: usize,
}

// Manual impl: a derived Clone would demand `T: Clone`, but cloning the
// handle never clones queued items.
impl<T> Clone for JobQueue<T> {
    fn clone(&self) -> Self {
        JobQueue {
            tx: self.tx.clone(),
            depth: Arc::clone(&self.depth),
            capacity: self.capacity,
        }
    }
}

/// Consumer half: what each worker pops from. Cloneable (MPMC).
#[derive(Debug)]
pub struct JobReceiver<T> {
    rx: Receiver<T>,
    depth: Arc<AtomicUsize>,
}

impl<T> Clone for JobReceiver<T> {
    fn clone(&self) -> Self {
        JobReceiver {
            rx: self.rx.clone(),
            depth: Arc::clone(&self.depth),
        }
    }
}

/// Create a queue holding at most `capacity` waiting jobs.
pub fn job_queue<T>(capacity: usize) -> (JobQueue<T>, JobReceiver<T>) {
    let capacity = capacity.max(1);
    let (tx, rx) = channel::bounded(capacity);
    let depth = Arc::new(AtomicUsize::new(0));
    (
        JobQueue {
            tx,
            depth: Arc::clone(&depth),
            capacity,
        },
        JobReceiver { rx, depth },
    )
}

impl<T> JobQueue<T> {
    /// Non-blocking admission: enqueue or report backpressure immediately.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        // Increment first so depth never under-counts a queued item; undo
        // on refusal. Workers decrement only after a successful pop, which
        // can only observe items whose increment already happened.
        self.depth.fetch_add(1, Ordering::Relaxed);
        match self.tx.try_send(item) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(item)) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                Err(PushError::Full(item))
            }
            Err(TrySendError::Disconnected(item)) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                Err(PushError::Closed(item))
            }
        }
    }

    /// Blocking push: wait for space instead of rejecting. Used by batch
    /// mode, where the caller *is* the only producer and wants throttling,
    /// not errors.
    pub fn push_blocking(&self, item: T) -> Result<(), PushError<T>> {
        self.depth.fetch_add(1, Ordering::Relaxed);
        self.tx.send(item).map_err(|e| {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            PushError::Closed(e.0)
        })
    }

    /// Jobs currently queued (approximate under concurrency, exact at
    /// quiescence).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// The admission limit.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl<T> JobReceiver<T> {
    /// Pop the next job, blocking until one arrives; `None` once every
    /// producer is gone and the queue has drained.
    pub fn pop(&self) -> Option<T> {
        let item = self.rx.recv().ok()?;
        self.depth.fetch_sub(1, Ordering::Relaxed);
        Some(item)
    }

    /// Jobs currently queued (shared gauge with the producer half).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (q, r) = job_queue(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.depth(), 4);
        for want in 0..4 {
            assert_eq!(r.pop(), Some(want));
        }
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn overflow_is_reported_with_the_item() {
        let (q, _r) = job_queue(2);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        match q.try_push("c") {
            Err(PushError::Full("c")) => {}
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.depth(), 2, "rejected push leaves depth unchanged");
    }

    #[test]
    fn closed_queue_rejects() {
        let (q, r) = job_queue(2);
        drop(r);
        assert!(matches!(q.try_push(1), Err(PushError::Closed(1))));
        assert!(matches!(q.push_blocking(2), Err(PushError::Closed(2))));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn pop_returns_none_after_producers_drop() {
        let (q, r) = job_queue(2);
        q.try_push(7).unwrap();
        drop(q);
        assert_eq!(r.pop(), Some(7));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let (q, r) = job_queue(1);
        q.try_push(0).unwrap();
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.push_blocking(1).map_err(|_| ()));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(r.pop(), Some(0));
        h.join().unwrap().unwrap();
        assert_eq!(r.pop(), Some(1));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn depth_settles_to_zero_under_mpmc_load() {
        let (q, r) = job_queue(8);
        let consumed = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let r = r.clone();
            let consumed = Arc::clone(&consumed);
            handles.push(std::thread::spawn(move || {
                while r.pop().is_some() {
                    consumed.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut sent = 0;
                    for i in 0..200 {
                        if q.push_blocking(i).is_ok() {
                            sent += 1;
                        }
                    }
                    sent
                })
            })
            .collect();
        let sent: usize = producers.into_iter().map(|h| h.join().unwrap()).sum();
        drop(q);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sent, 800);
        assert_eq!(consumed.load(Ordering::Relaxed), 800);
        assert_eq!(r.pop(), None);
    }
}
