//! # tsa-service — embeddable batch alignment service engine
//!
//! The paper's setting is a dedicated PC cluster running one alignment at
//! a time over MPI. This crate transposes that deployment story to a
//! single shared-memory machine serving *many* alignments: a bounded
//! submission queue with explicit backpressure, a worker pool dispatching
//! to any [`tsa_core::Algorithm`] (auto-selected by problem size unless
//! pinned), a sharded LRU result cache, per-job deadlines with
//! cooperative cancellation, and live counters.
//!
//! ## Library use
//!
//! ```
//! use tsa_service::{AlignRequest, Engine, ServiceConfig};
//! use tsa_seq::Seq;
//!
//! let engine = Engine::start(ServiceConfig::default());
//! let req = AlignRequest::new(
//!     "job-1",
//!     Seq::dna("GATTACA").unwrap(),
//!     Seq::dna("GATACA").unwrap(),
//!     Seq::dna("GTTACA").unwrap(),
//! );
//! let outcome = engine.submit(req).unwrap().wait();
//! println!("score = {}", outcome.result().unwrap().score);
//! engine.shutdown();
//! ```
//!
//! ## Wire use
//!
//! [`serve_stdio`] / [`serve_tcp`] speak an NDJSON protocol (one JSON
//! object per line; see [`protocol`]), and [`run_batch`] drives a file of
//! requests through the pool at full parallelism. The `tsa serve` and
//! `tsa batch` CLI commands are thin wrappers over these.
//!
//! ## Semantics worth knowing
//!
//! * **Backpressure is an error, not a buffer.** A full queue refuses
//!   the job with [`SubmitError::Overloaded`]; the engine never queues
//!   beyond its configured capacity. Batch mode uses the blocking submit
//!   path instead, throttling the producer.
//! * **Deadlines reach into the kernel.** A job's deadline is checked
//!   when a worker picks it up, at cooperative checkpoints inside the DP
//!   (per anti-diagonal plane), and again after the kernel; a mid-kernel
//!   expiry reports [`JobOutcome::DeadlineExceeded`] with partial
//!   [`CancelProgress`], while a kernel that finishes late still writes
//!   its result to the cache first.
//! * **Admission is resource-governed.** With
//!   [`ServiceConfig::memory_budget`] / [`ServiceConfig::max_cells`] set,
//!   each job's cell count and peak bytes are estimated for its resolved
//!   algorithm before enqueue. Over-budget explicit requests are refused
//!   with [`SubmitError::ResourceExhausted`]; `Auto` requests degrade to
//!   a quadratic-space kernel that fits (recorded in
//!   [`JobResult::degraded_from`]). The memory budget also bounds the sum
//!   of in-flight estimates, semaphore-style.
//! * **Failures are values.** A panicking kernel is caught and reported
//!   as [`JobOutcome::Failed`]; a worker thread that dies still resolves
//!   its job through a drop guard and is respawned by the pool
//!   supervisor. A [`JobHandle`] never hangs.
//! * **The cache keys on content.** Sequences are fingerprinted (two
//!   independent FNV-1a digests plus length, per sequence), combined with
//!   the scoring scheme, the *resolved* algorithm, and the score-only
//!   flag — so an `auto` submission and an explicit one share an entry.

mod cache;
mod durability;
mod engine;
mod error;
pub mod faults;
mod governor;
pub mod json;
pub mod protocol;
mod queue;
mod sched;
mod server;
mod stats;
mod worker;

pub use cache::{result_checksum, CacheKey, CachedResult, ResultCache};
pub use durability::content_uid;
pub use engine::{AlignRequest, Engine, JobHandle, ServiceConfig};
pub use error::{CancelStage, JobOutcome, JobResult, SubmitError};
pub use governor::ResourceEstimate;
pub use queue::{job_queue, JobQueue, JobReceiver, PushError};
pub use sched::{fair_queue, FairQueue, FairReceiver};
pub use server::{
    run_all, run_batch, serve_listener, serve_listener_with, serve_session, serve_session_with,
    serve_stdio, serve_tcp, serve_tcp_with, BatchSummary, FlaggedJob, ServeOptions,
};
pub use stats::{LaneSnapshot, ServiceStats, StatsSnapshot};
pub use tsa_core::cancel::{CancelProgress, CancelToken};
pub use tsa_obs::{
    render_tree, FlightRecorder, JsonSink, MultiSink, RecorderConfig, RingSink, SpanRecord,
    SpanSink, TextSink, TraceContext, TraceTree, Tracer,
};
pub use worker::CompletedJob;
