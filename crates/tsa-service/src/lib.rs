//! # tsa-service — embeddable batch alignment service engine
//!
//! The paper's setting is a dedicated PC cluster running one alignment at
//! a time over MPI. This crate transposes that deployment story to a
//! single shared-memory machine serving *many* alignments: a bounded
//! submission queue with explicit backpressure, a worker pool dispatching
//! to any [`tsa_core::Algorithm`] (auto-selected by problem size unless
//! pinned), a sharded LRU result cache, per-job deadlines with
//! cooperative cancellation, and live counters.
//!
//! ## Library use
//!
//! ```
//! use tsa_service::{AlignRequest, Engine, ServiceConfig};
//! use tsa_seq::Seq;
//!
//! let engine = Engine::start(ServiceConfig::default());
//! let req = AlignRequest::new(
//!     "job-1",
//!     Seq::dna("GATTACA").unwrap(),
//!     Seq::dna("GATACA").unwrap(),
//!     Seq::dna("GTTACA").unwrap(),
//! );
//! let outcome = engine.submit(req).unwrap().wait();
//! println!("score = {}", outcome.result().unwrap().score);
//! engine.shutdown();
//! ```
//!
//! ## Wire use
//!
//! [`serve_stdio`] / [`serve_tcp`] speak an NDJSON protocol (one JSON
//! object per line; see [`protocol`]), and [`run_batch`] drives a file of
//! requests through the pool at full parallelism. The `tsa serve` and
//! `tsa batch` CLI commands are thin wrappers over these.
//!
//! ## Semantics worth knowing
//!
//! * **Backpressure is an error, not a buffer.** A full queue refuses
//!   the job with [`SubmitError::Overloaded`]; the engine never queues
//!   beyond its configured capacity. Batch mode uses the blocking submit
//!   path instead, throttling the producer.
//! * **Deadlines are cooperative.** A job's deadline is checked when a
//!   worker picks it up and again after the kernel runs; a mid-kernel
//!   expiry still writes the finished result to the cache before the job
//!   reports [`JobOutcome::DeadlineExceeded`].
//! * **The cache keys on content.** Sequences are fingerprinted (two
//!   independent FNV-1a digests plus length, per sequence), combined with
//!   the scoring scheme, the *resolved* algorithm, and the score-only
//!   flag — so an `auto` submission and an explicit one share an entry.

mod cache;
mod cancel;
mod engine;
mod error;
pub mod json;
pub mod protocol;
mod queue;
mod server;
mod stats;
mod worker;

pub use cache::{CacheKey, CachedResult, ResultCache};
pub use cancel::CancelToken;
pub use engine::{AlignRequest, Engine, JobHandle, ServiceConfig};
pub use error::{CancelStage, JobOutcome, JobResult, SubmitError};
pub use queue::{job_queue, JobQueue, JobReceiver, PushError};
pub use server::{run_all, run_batch, serve_listener, serve_session, serve_stdio, serve_tcp};
pub use stats::{ServiceStats, StatsSnapshot};
pub use worker::CompletedJob;
