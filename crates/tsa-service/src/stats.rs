//! Service counters and stage-latency histograms, backed by a
//! [`tsa_obs::Registry`] so the same numbers drive [`StatsSnapshot`],
//! the `stats` protocol response, and the Prometheus-style `metrics`
//! exposition.
//!
//! All counters are relaxed atomics — they are monotonic tallies read for
//! observability, never used for synchronization. At quiescence (queue
//! drained, no in-flight jobs) the identity
//! `submitted == completed + rejected + cancelled + failed` holds.

use std::fmt;
use std::time::Duration;
use tsa_obs::{Counter, Gauge, Histogram, Registry};

/// Live counters owned by the engine and shared with every worker. Every
/// instrument is registered on an owned [`Registry`] under a stable
/// `tsa_`-prefixed name (see the README's Observability section).
#[derive(Debug)]
pub struct ServiceStats {
    registry: Registry,
    pub(crate) submitted: Counter,
    pub(crate) completed: Counter,
    pub(crate) rejected: Counter,
    pub(crate) cancelled: Counter,
    pub(crate) failed: Counter,
    pub(crate) cache_hits: Counter,
    pub(crate) cache_misses: Counter,
    pub(crate) panics: Counter,
    pub(crate) respawns: Counter,
    pub(crate) downgraded: Counter,
    pub(crate) recovered: Counter,
    pub(crate) resumed: Counter,
    pub(crate) restarted: Counter,
    pub(crate) cache_recovered_hits: Counter,
    pub(crate) simd: Counter,
    pub(crate) shed: Counter,
    pub(crate) integrity_quarantined: Counter,
    queue_depth: Gauge,
    latency: Histogram,
    queue_wait: Histogram,
    kernel: Histogram,
}

impl Default for ServiceStats {
    fn default() -> Self {
        let registry = Registry::new();
        ServiceStats {
            submitted: registry.counter(
                "tsa_jobs_submitted_total",
                "Submission attempts, including rejected ones.",
            ),
            completed: registry.counter(
                "tsa_jobs_completed_total",
                "Jobs that produced a result (fresh or cached).",
            ),
            rejected: registry.counter(
                "tsa_jobs_rejected_total",
                "Jobs refused at admission (queue full, resource governor, or shutting down).",
            ),
            cancelled: registry.counter(
                "tsa_jobs_cancelled_total",
                "Jobs that missed their deadline or were cancelled via their handle.",
            ),
            failed: registry.counter(
                "tsa_jobs_failed_total",
                "Jobs whose kernel failed, panicked, or whose worker died.",
            ),
            cache_hits: registry.counter(
                "tsa_cache_hits_total",
                "Completions served from the result cache.",
            ),
            cache_misses: registry.counter(
                "tsa_cache_misses_total",
                "Completions that had to run a kernel.",
            ),
            panics: registry.counter(
                "tsa_kernel_panics_total",
                "Kernel panics caught and converted to failed outcomes.",
            ),
            respawns: registry.counter(
                "tsa_worker_respawns_total",
                "Worker threads the supervisor found dead and replaced.",
            ),
            downgraded: registry.counter(
                "tsa_jobs_downgraded_total",
                "Auto jobs the admission governor downgraded to a lower-memory algorithm.",
            ),
            recovered: registry.counter(
                "tsa_jobs_recovered_total",
                "Completed jobs preloaded into the cache from the journal at startup.",
            ),
            resumed: registry.counter(
                "tsa_jobs_resumed_total",
                "In-flight jobs resumed from a valid checkpoint snapshot at startup.",
            ),
            restarted: registry.counter(
                "tsa_jobs_restarted_total",
                "In-flight jobs re-run cleanly at startup (missing or invalid snapshot).",
            ),
            cache_recovered_hits: registry.counter(
                "tsa_cache_recovered_hits_total",
                "Cache hits served from journal-recovered entries (a subset of cache hits).",
            ),
            simd: registry.counter(
                "tsa_jobs_simd_total",
                "Kernel executions that ran a SIMD (non-scalar) score implementation.",
            ),
            shed: registry.counter(
                "tsa_jobs_shed_total",
                "Jobs refused by per-client admission (rate limit or in-flight quota); a subset of rejected.",
            ),
            integrity_quarantined: registry.counter(
                "tsa_integrity_quarantined_total",
                "Cached or journal-recovered results whose content checksum failed verification; quarantined and recomputed, never served.",
            ),
            queue_depth: registry.gauge("tsa_queue_depth", "Jobs currently queued."),
            latency: registry.histogram(
                "tsa_job_latency_us",
                "Submit-to-completion latency of completed jobs, microseconds.",
            ),
            queue_wait: registry.histogram(
                "tsa_job_queue_wait_us",
                "Time jobs spent queued before a worker picked them up, microseconds.",
            ),
            kernel: registry.histogram(
                "tsa_job_kernel_us",
                "Wall time spent inside the alignment kernel, microseconds.",
            ),
            registry,
        }
    }
}

impl ServiceStats {
    pub(crate) fn record_latency(&self, latency: Duration) {
        self.latency.record_duration_us(latency);
    }

    pub(crate) fn record_queue_wait(&self, wait: Duration) {
        self.queue_wait.record_duration_us(wait);
    }

    pub(crate) fn record_kernel(&self, elapsed: Duration) {
        self.kernel.record_duration_us(elapsed);
    }

    /// The registry every instrument lives on (for embedding callers that
    /// want to add their own metrics to the same exposition).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Prometheus-style text exposition of every metric. The live queue
    /// depth is owned by the queue, so the engine passes it in.
    pub fn expose(&self, queue_depth: usize) -> String {
        self.queue_depth
            .set(queue_depth.min(i64::MAX as usize) as i64);
        self.registry.expose()
    }

    /// A consistent-enough point-in-time copy of every counter. The live
    /// queue depth is owned by the queue itself, so the engine passes it
    /// in when snapshotting.
    pub fn snapshot(&self, queue_depth: usize) -> StatsSnapshot {
        let latency = self.latency.snapshot();
        let queue_wait = self.queue_wait.snapshot();
        let kernel = self.kernel.snapshot();
        StatsSnapshot {
            submitted: self.submitted.get(),
            completed: self.completed.get(),
            rejected: self.rejected.get(),
            cancelled: self.cancelled.get(),
            failed: self.failed.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            panics: self.panics.get(),
            respawns: self.respawns.get(),
            downgraded: self.downgraded.get(),
            recovered: self.recovered.get(),
            resumed: self.resumed.get(),
            restarted: self.restarted.get(),
            cache_recovered_hits: self.cache_recovered_hits.get(),
            simd_jobs: self.simd.get(),
            shed: self.shed.get(),
            integrity_quarantined: self.integrity_quarantined.get(),
            lanes: Vec::new(),
            queue_depth,
            latency_p50_us: latency.quantile_upper_bound(0.50),
            latency_p90_us: latency.quantile_upper_bound(0.90),
            latency_p95_us: latency.quantile_upper_bound(0.95),
            latency_p99_us: latency.quantile_upper_bound(0.99),
            queue_wait_p50_us: queue_wait.quantile_upper_bound(0.50),
            queue_wait_p95_us: queue_wait.quantile_upper_bound(0.95),
            queue_wait_p99_us: queue_wait.quantile_upper_bound(0.99),
            kernel_p50_us: kernel.quantile_upper_bound(0.50),
            kernel_p95_us: kernel.quantile_upper_bound(0.95),
            kernel_p99_us: kernel.quantile_upper_bound(0.99),
            latency_buckets: trim_buckets(latency.buckets),
            queue_wait_buckets: trim_buckets(queue_wait.buckets),
            kernel_buckets: trim_buckets(kernel.buckets),
        }
    }
}

/// Drop trailing empty buckets (the snapshot still identifies bucket `i`
/// as covering `[2^(i-1), 2^i)` µs by index).
fn trim_buckets(mut buckets: Vec<u64>) -> Vec<u64> {
    let keep = buckets.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
    buckets.truncate(keep);
    buckets
}

/// One per-client lane row in a [`StatsSnapshot`]: the fair scheduler's
/// live queue depth joined with the client governor's admission tallies.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LaneSnapshot {
    /// Client name; empty for the anonymous default lane.
    pub client: String,
    /// Jobs currently queued in this lane.
    pub queued: usize,
    /// Jobs admitted and not yet resolved (quota accounting; stays 0
    /// when no in-flight quota is configured).
    pub in_flight: u64,
    /// Admission attempts from this client.
    pub submitted: u64,
    /// Attempts shed by the client governor (rate limit or quota).
    pub rejected: u64,
}

/// Point-in-time view of the service counters, exposed through the `stats`
/// protocol request and printed at shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Submission attempts, including rejected ones.
    pub submitted: u64,
    /// Jobs that produced a result (fresh or cached).
    pub completed: u64,
    /// Jobs refused at admission (queue full or shutting down).
    pub rejected: u64,
    /// Jobs that missed their deadline or were cancelled via their handle.
    pub cancelled: u64,
    /// Jobs whose aligner configuration was invalid.
    pub failed: u64,
    /// Completions served from the result cache.
    pub cache_hits: u64,
    /// Completions that had to run a kernel.
    pub cache_misses: u64,
    /// Kernel panics caught and converted to [`crate::JobOutcome::Failed`]
    /// (a subset of `failed`).
    pub panics: u64,
    /// Worker threads the supervisor found dead and replaced.
    pub respawns: u64,
    /// `Auto` jobs the admission governor downgraded to a lower-memory
    /// algorithm to fit the budget (a subset of `completed`).
    pub downgraded: u64,
    /// Completed jobs preloaded into the cache from the crash journal at
    /// startup.
    pub recovered: u64,
    /// In-flight jobs resumed from a valid checkpoint snapshot at startup.
    pub resumed: u64,
    /// In-flight jobs re-run cleanly at startup because their snapshot was
    /// missing, stale, or corrupt.
    pub restarted: u64,
    /// Cache hits served from journal-recovered entries (a subset of
    /// `cache_hits`).
    pub cache_recovered_hits: u64,
    /// Kernel executions that ran a SIMD (non-scalar) score implementation
    /// (a subset of `cache_misses`; scores are identical either way).
    pub simd_jobs: u64,
    /// Jobs refused by per-client admission — the token-bucket rate limit
    /// or the in-flight quota (a subset of `rejected`).
    pub shed: u64,
    /// Cached or journal-recovered results whose content checksum failed
    /// verification. Each was quarantined (dropped, then recomputed
    /// fresh) instead of being served.
    pub integrity_quarantined: u64,
    /// Per-client lane rows, present only once a *named* client has been
    /// seen; empty in single-tenant operation so the `stats` wire
    /// response is unchanged for existing clients.
    pub lanes: Vec<LaneSnapshot>,
    /// Jobs currently queued (0 at quiescence).
    pub queue_depth: usize,
    /// Median submit-to-completion latency, as a power-of-two µs bound.
    pub latency_p50_us: u64,
    /// 90th-percentile latency bound (µs).
    pub latency_p90_us: u64,
    /// 95th-percentile latency bound (µs).
    pub latency_p95_us: u64,
    /// 99th-percentile latency bound (µs).
    pub latency_p99_us: u64,
    /// Median time spent queued before a worker pick-up (µs bound).
    pub queue_wait_p50_us: u64,
    /// 95th-percentile queue wait bound (µs).
    pub queue_wait_p95_us: u64,
    /// 99th-percentile queue wait bound (µs).
    pub queue_wait_p99_us: u64,
    /// Median kernel wall time (µs bound).
    pub kernel_p50_us: u64,
    /// 95th-percentile kernel wall time bound (µs).
    pub kernel_p95_us: u64,
    /// 99th-percentile kernel wall time bound (µs).
    pub kernel_p99_us: u64,
    /// Raw completion-latency buckets: `latency_buckets[i]` counts jobs
    /// with latency in `[2^(i-1), 2^i)` µs (trailing zeros trimmed), so
    /// clients can compute their own quantiles instead of trusting the
    /// power-of-two bounds above.
    pub latency_buckets: Vec<u64>,
    /// Raw queue-wait buckets, same indexing as `latency_buckets`.
    pub queue_wait_buckets: Vec<u64>,
    /// Raw kernel-time buckets, same indexing as `latency_buckets`.
    pub kernel_buckets: Vec<u64>,
}

impl StatsSnapshot {
    /// `completed + rejected + cancelled + failed` — equals `submitted`
    /// once the engine is quiescent.
    pub fn resolved(&self) -> u64 {
        self.completed + self.rejected + self.cancelled + self.failed
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "jobs: {} submitted, {} completed, {} rejected, {} cancelled, {} failed",
            self.submitted, self.completed, self.rejected, self.cancelled, self.failed
        )?;
        writeln!(
            f,
            "cache: {} hits, {} misses; queue depth {}",
            self.cache_hits, self.cache_misses, self.queue_depth
        )?;
        writeln!(
            f,
            "faults: {} kernel panics, {} worker respawns, {} governor downgrades",
            self.panics, self.respawns, self.downgraded
        )?;
        writeln!(
            f,
            "durability: {} recovered, {} resumed, {} restarted, {} recovered-cache hits",
            self.recovered, self.resumed, self.restarted, self.cache_recovered_hits
        )?;
        writeln!(
            f,
            "integrity: {} quarantined (checksum-failed entries recomputed, never served)",
            self.integrity_quarantined
        )?;
        writeln!(f, "kernels: {} SIMD-accelerated", self.simd_jobs)?;
        writeln!(
            f,
            "latency (µs, bucket upper bounds): p50 ≤ {}, p90 ≤ {}, p95 ≤ {}, p99 ≤ {}",
            self.latency_p50_us, self.latency_p90_us, self.latency_p95_us, self.latency_p99_us
        )?;
        write!(
            f,
            "stages (µs): queue-wait p50 ≤ {} p95 ≤ {} p99 ≤ {}; kernel p50 ≤ {} p95 ≤ {} p99 ≤ {}",
            self.queue_wait_p50_us,
            self.queue_wait_p95_us,
            self.queue_wait_p99_us,
            self.kernel_p50_us,
            self.kernel_p95_us,
            self.kernel_p99_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2_micros() {
        let s = ServiceStats::default();
        s.record_latency(Duration::from_micros(0)); // bucket 0
        s.record_latency(Duration::from_micros(3)); // bucket 2 (<4)
        s.record_latency(Duration::from_micros(1000)); // bucket 10 (<1024)
        let snap = s.snapshot(0);
        assert_eq!(snap.latency_buckets[0], 1);
        assert_eq!(snap.latency_buckets[2], 1);
        assert_eq!(snap.latency_buckets[10], 1);
        assert_eq!(snap.latency_buckets.len(), 11, "trailing zeros trimmed");
        assert_eq!(snap.latency_buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn snapshot_reads_counters() {
        let s = ServiceStats::default();
        s.submitted.add(5);
        s.completed.add(3);
        s.rejected.inc();
        s.cancelled.inc();
        let snap = s.snapshot(2);
        assert_eq!(snap.submitted, 5);
        assert_eq!(snap.resolved(), 5);
        assert_eq!(snap.queue_depth, 2);
        assert!(snap.latency_buckets.is_empty());
    }

    #[test]
    fn stage_histograms_are_split() {
        let s = ServiceStats::default();
        s.record_queue_wait(Duration::from_micros(5)); // bucket 3
        s.record_kernel(Duration::from_micros(500)); // bucket 9
        let snap = s.snapshot(0);
        assert_eq!(snap.queue_wait_buckets.iter().sum::<u64>(), 1);
        assert_eq!(snap.kernel_buckets.iter().sum::<u64>(), 1);
        assert_eq!(snap.queue_wait_p50_us, 8);
        assert_eq!(snap.kernel_p50_us, 512);
        assert_eq!(
            snap.queue_wait_p95_us, 8,
            "single sample: every quantile lands in its bucket"
        );
        assert_eq!(snap.kernel_p95_us, 512);
        assert!(snap.latency_buckets.is_empty());
    }

    #[test]
    fn exposition_contains_every_metric_family() {
        let s = ServiceStats::default();
        s.submitted.inc();
        s.completed.inc();
        s.record_latency(Duration::from_micros(90));
        s.record_queue_wait(Duration::from_micros(10));
        s.record_kernel(Duration::from_micros(80));
        let text = s.expose(3);
        for name in [
            "tsa_jobs_submitted_total",
            "tsa_jobs_completed_total",
            "tsa_jobs_rejected_total",
            "tsa_jobs_cancelled_total",
            "tsa_jobs_failed_total",
            "tsa_cache_hits_total",
            "tsa_cache_misses_total",
            "tsa_kernel_panics_total",
            "tsa_worker_respawns_total",
            "tsa_jobs_downgraded_total",
            "tsa_jobs_recovered_total",
            "tsa_jobs_resumed_total",
            "tsa_jobs_restarted_total",
            "tsa_cache_recovered_hits_total",
            "tsa_jobs_simd_total",
            "tsa_jobs_shed_total",
            "tsa_integrity_quarantined_total",
            "tsa_queue_depth",
            "tsa_job_latency_us",
            "tsa_job_queue_wait_us",
            "tsa_job_kernel_us",
        ] {
            assert!(text.contains(&format!("# HELP {name} ")), "missing {name}");
        }
        assert!(text.contains("tsa_queue_depth 3\n"));
        assert!(text.contains("tsa_job_latency_us_count 1\n"));
    }

    /// Golden family order + TYPE lines: scrape configs and the CI
    /// accounting check key on these exact names in this exact order.
    #[test]
    fn exposition_family_order_is_stable() {
        let text = ServiceStats::default().expose(0);
        let type_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE ")).collect();
        assert_eq!(
            type_lines,
            vec![
                "# TYPE tsa_jobs_submitted_total counter",
                "# TYPE tsa_jobs_completed_total counter",
                "# TYPE tsa_jobs_rejected_total counter",
                "# TYPE tsa_jobs_cancelled_total counter",
                "# TYPE tsa_jobs_failed_total counter",
                "# TYPE tsa_cache_hits_total counter",
                "# TYPE tsa_cache_misses_total counter",
                "# TYPE tsa_kernel_panics_total counter",
                "# TYPE tsa_worker_respawns_total counter",
                "# TYPE tsa_jobs_downgraded_total counter",
                "# TYPE tsa_jobs_recovered_total counter",
                "# TYPE tsa_jobs_resumed_total counter",
                "# TYPE tsa_jobs_restarted_total counter",
                "# TYPE tsa_cache_recovered_hits_total counter",
                "# TYPE tsa_jobs_simd_total counter",
                "# TYPE tsa_jobs_shed_total counter",
                "# TYPE tsa_integrity_quarantined_total counter",
                "# TYPE tsa_queue_depth gauge",
                "# TYPE tsa_job_latency_us histogram",
                "# TYPE tsa_job_queue_wait_us histogram",
                "# TYPE tsa_job_kernel_us histogram",
            ]
        );
        // Every TYPE line is directly preceded by its HELP line.
        let lines: Vec<&str> = text.lines().collect();
        for (i, l) in lines.iter().enumerate() {
            if let Some(name) = l
                .strip_prefix("# TYPE ")
                .map(|r| r.split(' ').next().unwrap())
            {
                assert!(
                    lines[i - 1].starts_with(&format!("# HELP {name} ")),
                    "HELP must precede TYPE for {name}"
                );
            }
        }
    }

    #[test]
    fn snapshot_renders() {
        let text = ServiceStats::default().snapshot(0).to_string();
        assert!(text.contains("submitted"));
        assert!(text.contains("cache"));
        assert!(text.contains("quarantined"));
        assert!(text.contains("p99"));
        assert!(text.contains("queue-wait"));
        assert!(text.contains("kernel"));
    }
}
