//! Service counters and the completion-latency histogram.
//!
//! All counters are relaxed atomics — they are monotonic tallies read for
//! observability, never used for synchronization. At quiescence (queue
//! drained, no in-flight jobs) the identity
//! `submitted == completed + rejected + cancelled + failed` holds.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets: bucket `i` counts completions
/// with `latency_us < 2^i` (last bucket is open-ended).
const BUCKETS: usize = 40;

/// Live counters owned by the engine and shared with every worker.
#[derive(Debug, Default)]
pub struct ServiceStats {
    pub(crate) submitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) cancelled: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) cache_hits: AtomicU64,
    pub(crate) cache_misses: AtomicU64,
    pub(crate) panics: AtomicU64,
    pub(crate) respawns: AtomicU64,
    pub(crate) downgraded: AtomicU64,
    latency: Histogram,
}

#[derive(Debug)]
struct Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        // Bucket i covers [2^(i-1), 2^i) microseconds; 0..1us lands in 0.
        let idx = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

impl ServiceStats {
    pub(crate) fn record_latency(&self, latency: Duration) {
        self.latency.record(latency);
    }

    /// A consistent-enough point-in-time copy of every counter. The live
    /// queue depth is owned by the queue itself, so the engine passes it
    /// in when snapshotting.
    pub fn snapshot(&self, queue_depth: usize) -> StatsSnapshot {
        let buckets = self.latency.snapshot();
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            respawns: self.respawns.load(Ordering::Relaxed),
            downgraded: self.downgraded.load(Ordering::Relaxed),
            queue_depth,
            latency_p50_us: quantile_upper_bound(&buckets, 0.50),
            latency_p90_us: quantile_upper_bound(&buckets, 0.90),
            latency_p99_us: quantile_upper_bound(&buckets, 0.99),
        }
    }
}

/// Upper bound (in µs) of the histogram bucket containing quantile `q`;
/// 0 when the histogram is empty.
fn quantile_upper_bound(buckets: &[u64], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = (q * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= rank {
            // Bucket i covers latencies < 2^i µs.
            return 1u64 << i.min(63);
        }
    }
    1u64 << (buckets.len() - 1).min(63)
}

/// Point-in-time view of the service counters, exposed through the `stats`
/// protocol request and printed at shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Submission attempts, including rejected ones.
    pub submitted: u64,
    /// Jobs that produced a result (fresh or cached).
    pub completed: u64,
    /// Jobs refused at admission (queue full or shutting down).
    pub rejected: u64,
    /// Jobs that missed their deadline or were cancelled via their handle.
    pub cancelled: u64,
    /// Jobs whose aligner configuration was invalid.
    pub failed: u64,
    /// Completions served from the result cache.
    pub cache_hits: u64,
    /// Completions that had to run a kernel.
    pub cache_misses: u64,
    /// Kernel panics caught and converted to [`crate::JobOutcome::Failed`]
    /// (a subset of `failed`).
    pub panics: u64,
    /// Worker threads the supervisor found dead and replaced.
    pub respawns: u64,
    /// `Auto` jobs the admission governor downgraded to a lower-memory
    /// algorithm to fit the budget (a subset of `completed`).
    pub downgraded: u64,
    /// Jobs currently queued (0 at quiescence).
    pub queue_depth: usize,
    /// Median submit-to-completion latency, as a power-of-two µs bound.
    pub latency_p50_us: u64,
    /// 90th-percentile latency bound (µs).
    pub latency_p90_us: u64,
    /// 99th-percentile latency bound (µs).
    pub latency_p99_us: u64,
}

impl StatsSnapshot {
    /// `completed + rejected + cancelled + failed` — equals `submitted`
    /// once the engine is quiescent.
    pub fn resolved(&self) -> u64 {
        self.completed + self.rejected + self.cancelled + self.failed
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "jobs: {} submitted, {} completed, {} rejected, {} cancelled, {} failed",
            self.submitted, self.completed, self.rejected, self.cancelled, self.failed
        )?;
        writeln!(
            f,
            "cache: {} hits, {} misses; queue depth {}",
            self.cache_hits, self.cache_misses, self.queue_depth
        )?;
        writeln!(
            f,
            "faults: {} kernel panics, {} worker respawns, {} governor downgrades",
            self.panics, self.respawns, self.downgraded
        )?;
        write!(
            f,
            "latency (µs, bucket upper bounds): p50 ≤ {}, p90 ≤ {}, p99 ≤ {}",
            self.latency_p50_us, self.latency_p90_us, self.latency_p99_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2_micros() {
        let s = ServiceStats::default();
        s.record_latency(Duration::from_micros(0)); // bucket 0
        s.record_latency(Duration::from_micros(3)); // bucket 2 (<4)
        s.record_latency(Duration::from_micros(1000)); // bucket 10 (<1024)
        let buckets = s.latency.snapshot();
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[2], 1);
        assert_eq!(buckets[10], 1);
        assert_eq!(buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn quantiles_from_buckets() {
        let mut buckets = vec![0u64; BUCKETS];
        buckets[3] = 90; // <8us
        buckets[8] = 10; // <256us
        assert_eq!(quantile_upper_bound(&buckets, 0.50), 8);
        assert_eq!(quantile_upper_bound(&buckets, 0.90), 8);
        assert_eq!(quantile_upper_bound(&buckets, 0.99), 256);
        assert_eq!(quantile_upper_bound(&[0; 4], 0.5), 0);
    }

    #[test]
    fn snapshot_reads_counters() {
        let s = ServiceStats::default();
        s.submitted.fetch_add(5, Ordering::Relaxed);
        s.completed.fetch_add(3, Ordering::Relaxed);
        s.rejected.fetch_add(1, Ordering::Relaxed);
        s.cancelled.fetch_add(1, Ordering::Relaxed);
        let snap = s.snapshot(2);
        assert_eq!(snap.submitted, 5);
        assert_eq!(snap.resolved(), 5);
        assert_eq!(snap.queue_depth, 2);
    }

    #[test]
    fn snapshot_renders() {
        let text = ServiceStats::default().snapshot(0).to_string();
        assert!(text.contains("submitted"));
        assert!(text.contains("cache"));
        assert!(text.contains("p99"));
    }
}
