//! The worker pool: each worker pops jobs, honors cancellation
//! checkpoints, probes the result cache, and runs the aligner.

use crate::cache::{CacheKey, CachedResult, ResultCache};
use crate::cancel::CancelToken;
use crate::error::{CancelStage, JobOutcome, JobResult};
use crate::queue::JobReceiver;
use crate::stats::ServiceStats;
use crossbeam::channel::Sender;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;
use tsa_core::{Algorithm, Aligner, Alignment3};
use tsa_scoring::Scoring;
use tsa_seq::Seq;

/// An accepted unit of work travelling from the queue to a worker.
#[derive(Debug)]
pub(crate) struct Job {
    pub id: u64,
    pub tag: String,
    pub a: Seq,
    pub b: Seq,
    pub c: Seq,
    pub scoring: Scoring,
    pub algorithm: Algorithm,
    pub score_only: bool,
    pub cancel: CancelToken,
    pub submitted: Instant,
    pub responder: Responder,
}

/// How a finished job reports back: a per-job channel (library callers
/// holding a [`crate::JobHandle`]) or a boxed callback (the NDJSON
/// server, which forwards responses to a shared writer).
pub(crate) enum Responder {
    Channel(Sender<CompletedJob>),
    Callback(Box<dyn FnOnce(CompletedJob) + Send>),
}

impl std::fmt::Debug for Responder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Responder::Channel(_) => "Responder::Channel",
            Responder::Callback(_) => "Responder::Callback",
        })
    }
}

/// A resolved job: its engine id, the caller's tag, and the outcome.
#[derive(Debug, Clone)]
pub struct CompletedJob {
    /// Engine-assigned sequential id.
    pub id: u64,
    /// Caller-supplied tag (echoed in protocol responses).
    pub tag: String,
    /// Terminal state.
    pub outcome: JobOutcome,
}

fn rows_to_strings(alignment: &Alignment3) -> [String; 3] {
    let rows = alignment.rows();
    rows.map(|row| {
        row.iter()
            .map(|r| r.map(char::from).unwrap_or('-'))
            .collect()
    })
}

/// Run one worker until the queue disconnects and drains.
pub(crate) fn worker_loop(rx: JobReceiver<Job>, cache: Arc<ResultCache>, stats: Arc<ServiceStats>) {
    while let Some(job) = rx.pop() {
        let outcome = serve_one(&job, &cache, &stats);
        respond(job.responder, job.id, job.tag, outcome);
    }
}

fn respond(responder: Responder, id: u64, tag: String, outcome: JobOutcome) {
    let done = CompletedJob { id, tag, outcome };
    match responder {
        // A dropped handle means nobody is waiting; that is fine.
        Responder::Channel(tx) => drop(tx.send(done)),
        Responder::Callback(cb) => cb(done),
    }
}

fn serve_one(job: &Job, cache: &ResultCache, stats: &ServiceStats) -> JobOutcome {
    let wait = job.submitted.elapsed();

    // Checkpoint 1: the job may have expired or been cancelled while
    // queued — no work has been done yet.
    if job.cancel.is_cancelled() {
        stats.cancelled.fetch_add(1, Ordering::Relaxed);
        return JobOutcome::Cancelled;
    }
    if job.cancel.deadline_expired() {
        stats.cancelled.fetch_add(1, Ordering::Relaxed);
        return JobOutcome::DeadlineExceeded {
            stage: CancelStage::Queued,
        };
    }

    let served = Instant::now();
    let aligner = Aligner::auto(job.scoring.clone()).algorithm(job.algorithm);
    let resolved = aligner.resolve(job.a.len(), job.b.len(), job.c.len());
    let key = CacheKey::new(
        &job.a,
        &job.b,
        &job.c,
        &job.scoring,
        resolved,
        job.score_only,
    );

    if let Some(hit) = cache.get(&key) {
        stats.cache_hits.fetch_add(1, Ordering::Relaxed);
        stats.completed.fetch_add(1, Ordering::Relaxed);
        stats.record_latency(job.submitted.elapsed());
        return JobOutcome::Done(JobResult {
            score: hit.score,
            rows: hit.rows,
            algorithm: hit.algorithm,
            cached: true,
            wait,
            service: served.elapsed(),
        });
    }
    stats.cache_misses.fetch_add(1, Ordering::Relaxed);

    let computed = if job.score_only {
        aligner
            .score3(&job.a, &job.b, &job.c)
            .map(|score| (score, None))
    } else {
        aligner
            .align3(&job.a, &job.b, &job.c)
            .map(|aln| (aln.score, Some(rows_to_strings(&aln))))
    };

    let (score, rows) = match computed {
        Ok(r) => r,
        Err(e) => {
            stats.failed.fetch_add(1, Ordering::Relaxed);
            return JobOutcome::Failed(e.to_string());
        }
    };

    // The work is done — cache it regardless of the deadline so repeat
    // requests are cheap even when this one was too slow.
    cache.put(
        key,
        CachedResult {
            score,
            rows: rows.clone(),
            algorithm: resolved,
        },
    );

    // Checkpoint 2: the deadline may have fired mid-kernel.
    if job.cancel.is_cancelled() {
        stats.cancelled.fetch_add(1, Ordering::Relaxed);
        return JobOutcome::Cancelled;
    }
    if job.cancel.deadline_expired() {
        stats.cancelled.fetch_add(1, Ordering::Relaxed);
        return JobOutcome::DeadlineExceeded {
            stage: CancelStage::Computed,
        };
    }

    stats.completed.fetch_add(1, Ordering::Relaxed);
    stats.record_latency(job.submitted.elapsed());
    JobOutcome::Done(JobResult {
        score,
        rows,
        algorithm: resolved,
        cached: false,
        wait,
        service: served.elapsed(),
    })
}
