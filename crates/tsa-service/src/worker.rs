//! The worker pool: each worker pops jobs, honors cancellation
//! checkpoints, probes the result cache, and runs the aligner inside a
//! panic-isolation boundary.
//!
//! Fault containment is layered. A panicking kernel is caught by
//! `catch_unwind` and reported as [`JobOutcome::Failed`] — the worker
//! survives. If the worker thread itself dies (a panic outside the catch
//! region), a drop guard still resolves the job's handle with `Failed`
//! so no waiter hangs, and the engine's supervisor respawns the thread.
//!
//! When the engine carries a [`tsa_obs::Tracer`], each job emits a span
//! tree: a `job` root opened at submission, with `queued`,
//! `cache_lookup`, `kernel`, `traceback`, and `respond` children marking
//! the lifecycle stages. Spans record on drop, so the tree completes
//! even when a stage panics or the job is cancelled mid-kernel.

use crate::cache::{result_checksum, CacheKey, CachedResult, ResultCache};
use crate::durability::Durability;
use crate::engine::ClientSlot;
use crate::error::{CancelStage, JobOutcome, JobResult};
use crate::faults;
use crate::governor::Reservation;
use crate::sched::FairReceiver;
use crate::stats::ServiceStats;
use crossbeam::channel::Sender;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tsa_core::{
    Algorithm, AlignError, Aligner, Alignment3, CancelProgress, CancelToken, CheckpointConfig,
    DurableStop, FrontierSnapshot, SimdKernel,
};
use tsa_obs::Span;
use tsa_scoring::Scoring;
use tsa_seq::Seq;

/// The span tree of one traced job: the root covers the whole lifecycle;
/// `queued` is opened at submission and closed when a worker picks the
/// job up (its duration *is* the queue wait).
#[derive(Debug)]
pub(crate) struct JobTrace {
    pub root: Span,
    pub queued: Option<Span>,
}

/// An accepted unit of work travelling from the queue to a worker.
#[derive(Debug)]
pub(crate) struct Job {
    pub id: u64,
    pub tag: String,
    /// Client lane this job was admitted under (empty = anonymous).
    pub client: String,
    pub a: Seq,
    pub b: Seq,
    pub c: Seq,
    pub scoring: Scoring,
    pub algorithm: Algorithm,
    pub score_only: bool,
    /// Effective SIMD kernel request (engine default already applied).
    pub kernel: SimdKernel,
    pub cancel: CancelToken,
    pub submitted: Instant,
    /// Taken by the worker before serving; `Some` until then.
    pub responder: Option<Responder>,
    /// The governor's original pick when it downgraded an `Auto` request.
    pub degraded_from: Option<Algorithm>,
    /// Share of the global memory budget, released when the job drops.
    pub reservation: Option<Reservation>,
    /// Present when the engine was configured with a tracer.
    pub trace: Option<JobTrace>,
    /// Present when the engine keeps a journal and this request is
    /// journalable: the job's durability attachment.
    pub durable: Option<DurableJob>,
    /// Share of the client's in-flight quota, released when the job
    /// resolves (or drops on any teardown path).
    pub client_slot: Option<ClientSlot>,
}

/// A job's durability attachment: its journal uid, an optional
/// pre-validated checkpoint snapshot to resume from (recovery only),
/// and the engine's durability handle (journal, checkpoint store,
/// drain flag, pacing policy).
#[derive(Debug)]
pub(crate) struct DurableJob {
    pub uid: String,
    pub resume: Option<FrontierSnapshot>,
    pub handle: Arc<Durability>,
}

impl Job {
    /// Attach a field to the root span, if this job is traced.
    fn annotate(&mut self, key: &'static str, value: impl Into<tsa_obs::FieldValue>) {
        if let Some(t) = self.trace.as_mut() {
            t.root.annotate(key, value);
        }
    }

    /// Open a child stage span under the root, if this job is traced.
    fn stage(&self, name: &'static str) -> Option<Span> {
        self.trace.as_ref().map(|t| t.root.child(name))
    }

    /// Mark a traced job as refused at admission: the `queued` stage is
    /// closed and the root records the rejection reason.
    pub(crate) fn reject(&mut self, reason: &'static str) {
        if let Some(t) = self.trace.as_mut() {
            t.queued.take();
            t.root.annotate("rejected", reason);
        }
    }
}

/// How a finished job reports back: a per-job channel (library callers
/// holding a [`crate::JobHandle`]) or a boxed callback (the NDJSON
/// server, which forwards responses to a shared writer).
pub(crate) enum Responder {
    Channel(Sender<CompletedJob>),
    Callback(Box<dyn FnOnce(CompletedJob) + Send>),
}

impl std::fmt::Debug for Responder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Responder::Channel(_) => "Responder::Channel",
            Responder::Callback(_) => "Responder::Callback",
        })
    }
}

/// A resolved job: its engine id, the caller's tag, and the outcome.
#[derive(Debug, Clone)]
pub struct CompletedJob {
    /// Engine-assigned sequential id.
    pub id: u64,
    /// Caller-supplied tag (echoed in protocol responses).
    pub tag: String,
    /// Distributed trace id, echoed in protocol responses so failures
    /// are queryable via the `trace` op; 0 = untraced.
    pub trace_id: u64,
    /// Terminal state.
    pub outcome: JobOutcome,
}

fn rows_to_strings(alignment: &Alignment3) -> [String; 3] {
    let rows = alignment.rows();
    rows.map(|row| {
        row.iter()
            .map(|r| r.map(char::from).unwrap_or('-'))
            .collect()
    })
}

/// Run one worker until the queue disconnects and drains.
pub(crate) fn worker_loop(
    rx: FairReceiver<Job>,
    cache: Arc<ResultCache>,
    stats: Arc<ServiceStats>,
) {
    while let Some(mut job) = rx.pop() {
        let mut guard = JobGuard {
            id: job.id,
            tag: job.tag.clone(),
            trace_id: job.trace.as_ref().map_or(0, |t| t.root.trace_id()),
            responder: job.responder.take(),
            stats: Arc::clone(&stats),
            durable: job
                .durable
                .as_ref()
                .map(|d| (d.uid.clone(), Arc::clone(&d.handle))),
        };
        // An injected `#fault-abort` panics *outside* the kernel isolation
        // boundary: this worker thread dies, the guard resolves the
        // handle, and the supervisor respawns the thread. Dropping `job`
        // during the unwind still closes its spans.
        if faults::wants_abort(&job.tag) {
            panic!("injected worker abort");
        }
        let outcome = serve_one(&mut job, &cache, &stats);
        if let Some(d) = &job.durable {
            resolve_durable(d, &job.tag, &outcome);
        }
        // Return the job's share of the memory budget and its client's
        // in-flight slot before the waiter can observe resolution (on
        // unwind, dropping `job` releases both).
        job.reservation.take();
        job.client_slot.take();
        job.annotate("outcome", outcome.label());
        let respond_span = job.stage("respond");
        guard.resolve(outcome);
        drop(respond_span);
        // Dropping `job` here closes the root span.
    }
}

/// Guarantees every popped job resolves exactly once. If the serve path
/// unwinds past this frame (worker death), `Drop` reports `Failed` to
/// the waiter — a [`crate::JobHandle`] must never hang.
struct JobGuard {
    id: u64,
    tag: String,
    trace_id: u64,
    responder: Option<Responder>,
    stats: Arc<ServiceStats>,
    durable: Option<(String, Arc<Durability>)>,
}

impl JobGuard {
    fn resolve(&mut self, outcome: JobOutcome) {
        if let Some(responder) = self.responder.take() {
            respond(
                responder,
                self.id,
                std::mem::take(&mut self.tag),
                self.trace_id,
                outcome,
            );
        }
    }
}

/// Resolve a durable job in the journal. Completions record their
/// reusable result; a drain-stopped job stays *in-flight* — its `job`
/// record and checkpoint survive so the next start resumes it; every
/// other terminal state is recorded as gone.
fn resolve_durable(d: &DurableJob, tag: &str, outcome: &JobOutcome) {
    // An injected `#fault-disk-slow=N` stalls the journal append the way
    // a saturated or failing disk would, so the chaos harness can compose
    // slow durability with kills and corruption.
    if let Some(delay) = faults::disk_delay_of(tag) {
        std::thread::sleep(delay);
    }
    match outcome {
        JobOutcome::Done(result) => {
            d.handle.record_done(&d.uid, result);
            d.handle.remove_checkpoint(&d.uid);
        }
        JobOutcome::Cancelled { .. } | JobOutcome::DeadlineExceeded { .. }
            if d.handle.drain_requested() => {}
        _ => {
            d.handle.record_gone(&d.uid);
            d.handle.remove_checkpoint(&d.uid);
        }
    }
}

impl Drop for JobGuard {
    fn drop(&mut self) {
        if let Some(responder) = self.responder.take() {
            self.stats.failed.inc();
            // The worker died mid-job: resolve it as gone so a restart
            // does not re-run (and re-crash on) the same poisoned job.
            if let Some((uid, d)) = self.durable.take() {
                d.record_gone(&uid);
                d.remove_checkpoint(&uid);
            }
            respond(
                responder,
                self.id,
                std::mem::take(&mut self.tag),
                self.trace_id,
                JobOutcome::Failed("worker thread died mid-job".into()),
            );
        }
    }
}

fn respond(responder: Responder, id: u64, tag: String, trace_id: u64, outcome: JobOutcome) {
    let done = CompletedJob {
        id,
        tag,
        trace_id,
        outcome,
    };
    match responder {
        // A dropped handle means nobody is waiting; that is fine.
        Responder::Channel(tx) => drop(tx.send(done)),
        Responder::Callback(cb) => cb(done),
    }
}

/// Best-effort text from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "opaque panic payload"
    }
}

/// Sleep in short slices so an injected delay still honors cancellation
/// with millisecond-scale latency.
fn cancellable_sleep(total: Duration, cancel: &CancelToken) -> Result<(), AlignError> {
    let until = Instant::now() + total;
    loop {
        if cancel.should_stop() {
            return Err(AlignError::Cancelled(CancelProgress::default()));
        }
        let now = Instant::now();
        if now >= until {
            return Ok(());
        }
        std::thread::sleep((until - now).min(Duration::from_millis(2)));
    }
}

/// Why the kernel closure stopped: an aligner error (plain path) or a
/// durable stop (checkpointing path).
enum KernelErr {
    Align(AlignError),
    Stop(DurableStop),
}

fn serve_one(job: &mut Job, cache: &ResultCache, stats: &ServiceStats) -> JobOutcome {
    let wait = job.submitted.elapsed();
    // Close the `queued` stage: a worker now owns the job.
    if let Some(t) = job.trace.as_mut() {
        t.queued.take();
    }
    stats.record_queue_wait(wait);

    // Checkpoint 1: the job may have expired or been cancelled while
    // queued — no work has been done yet.
    if job.cancel.is_cancelled() {
        stats.cancelled.inc();
        job.annotate("cancelled_at", "queued");
        return JobOutcome::Cancelled { progress: None };
    }
    if job.cancel.deadline_expired() {
        stats.cancelled.inc();
        job.annotate("deadline_at", "queued");
        return JobOutcome::DeadlineExceeded {
            stage: CancelStage::Queued,
            progress: None,
        };
    }
    // A draining engine parks queued durable jobs instead of running
    // them: their `job` record stays in the journal and the next start
    // picks them up.
    if let Some(d) = &job.durable {
        if d.handle.drain_requested() {
            stats.cancelled.inc();
            job.annotate("drained", true);
            return JobOutcome::Cancelled { progress: None };
        }
    }

    let served = Instant::now();
    let aligner = Aligner::auto(job.scoring.clone())
        .algorithm(job.algorithm)
        .kernel(job.kernel);
    let resolved = aligner.resolve(job.a.len(), job.b.len(), job.c.len());
    let key = CacheKey::new(
        &job.a,
        &job.b,
        &job.c,
        &job.scoring,
        resolved,
        job.score_only,
    );

    let mut lookup_span = job.stage("cache_lookup");
    let hit = cache.get(&key);
    // Integrity gate: a hit whose recomputed checksum disagrees with the
    // stored one is corrupt. Quarantine it (remove, count, annotate) and
    // fall through to a fresh kernel run — a wrong answer is strictly
    // worse than a recompute.
    let hit = match hit {
        Some(h) if !h.verify() => {
            cache.remove(&key);
            stats.integrity_quarantined.inc();
            if let Some(s) = lookup_span.as_mut() {
                s.annotate("quarantined", true);
            }
            job.annotate("quarantined", true);
            None
        }
        other => other,
    };
    if let Some(s) = lookup_span.as_mut() {
        s.annotate("hit", hit.is_some());
    }
    drop(lookup_span);
    if let Some(hit) = hit {
        stats.cache_hits.inc();
        if hit.recovered {
            stats.cache_recovered_hits.inc();
            job.annotate("recovered", true);
        }
        stats.completed.inc();
        stats.record_latency(job.submitted.elapsed());
        job.annotate("cached", true);
        return JobOutcome::Done(JobResult {
            score: hit.score,
            rows: hit.rows,
            algorithm: hit.algorithm,
            degraded_from: job.degraded_from,
            cached: true,
            recovered: hit.recovered,
            wait,
            service: served.elapsed(),
        });
    }
    stats.cache_misses.inc();

    // The isolation boundary: anything that unwinds out of the kernel
    // (including injected faults) is converted to a structured failure
    // instead of killing this worker.
    let tag = job.tag.clone();
    let cancel = job.cancel.clone();
    // Durable score-only jobs with a checkpointable kernel stream
    // frontier snapshots to their sink and poll the drain flag; all
    // other shapes run the plain cancellable path.
    let durable_run = job.durable.as_ref().and_then(|d| {
        (job.score_only
            && aligner
                .durable_kind(job.a.len(), job.b.len(), job.c.len())
                .is_some())
        .then(|| (d.handle.sink_for(&d.uid), Arc::clone(&d.handle)))
    });
    let resume = job.durable.as_mut().and_then(|d| d.resume.take());
    let kernel = || -> Result<(i32, Option<Alignment3>), KernelErr> {
        if faults::wants_panic(&tag) {
            panic!("injected kernel panic");
        }
        if faults::flap_now(&tag) {
            panic!("injected flap failure");
        }
        if let Some(delay) = faults::delay_of(&tag) {
            cancellable_sleep(delay, &cancel).map_err(KernelErr::Align)?;
        }
        if let Some((sink, handle)) = &durable_run {
            let ckpt = CheckpointConfig {
                sink,
                policy: handle.policy,
                drain: Some(&handle.drain),
            };
            let run = |snap: Option<&FrontierSnapshot>| {
                aligner.score3_durable(&job.a, &job.b, &job.c, &cancel, &ckpt, snap)
            };
            let result = match run(resume.as_ref()) {
                // Startup pre-validation can miss shape drift (e.g. a
                // governor downgrade changed the kernel since the
                // snapshot): re-run cleanly rather than failing the job.
                Err(DurableStop::InvalidResume(_)) => run(None),
                other => other,
            };
            result.map(|score| (score, None)).map_err(KernelErr::Stop)
        } else if job.score_only {
            aligner
                .score3_cancellable(&job.a, &job.b, &job.c, &cancel)
                .map(|score| (score, None))
                .map_err(KernelErr::Align)
        } else {
            aligner
                .align3_cancellable(&job.a, &job.b, &job.c, &cancel)
                .map(|aln| (aln.score, Some(aln)))
                .map_err(KernelErr::Align)
        }
    };
    // What the CPU actually runs for this request (degradation applied).
    let simd = job.kernel.resolve();
    if !simd.is_scalar() {
        stats.simd.inc();
    }
    let mut kernel_span = job.stage("kernel");
    if let Some(s) = kernel_span.as_mut() {
        s.annotate("algorithm", resolved.name());
        s.annotate("simd_kernel", simd.name());
    }
    let kernel_started = Instant::now();
    let computed = std::panic::catch_unwind(AssertUnwindSafe(kernel));
    stats.record_kernel(kernel_started.elapsed());
    let computed = match computed {
        Ok(result) => result,
        Err(payload) => {
            stats.panics.inc();
            stats.failed.inc();
            let message = panic_message(payload.as_ref()).to_string();
            if let Some(s) = kernel_span.as_mut() {
                s.annotate("panic", message.as_str());
            }
            drop(kernel_span);
            job.annotate("panic", message.as_str());
            return JobOutcome::Failed(format!("kernel panicked: {message}"));
        }
    };
    drop(kernel_span);

    let (score, alignment) = match computed {
        Ok(r) => r,
        // The cancellation token stopped the DP loop between planes.
        Err(KernelErr::Align(AlignError::Cancelled(progress)))
        | Err(KernelErr::Stop(DurableStop::Cancelled(progress))) => {
            stats.cancelled.inc();
            return if job.cancel.is_cancelled() {
                job.annotate("cancelled_at", "kernel");
                JobOutcome::Cancelled {
                    progress: Some(progress),
                }
            } else {
                job.annotate("deadline_at", "kernel");
                JobOutcome::DeadlineExceeded {
                    stage: CancelStage::Kernel,
                    progress: Some(progress),
                }
            };
        }
        // The drain flag stopped a durable kernel after it persisted a
        // final snapshot: the job stays in-flight and resumes next start.
        Err(KernelErr::Stop(DurableStop::Drained(progress))) => {
            stats.cancelled.inc();
            job.annotate("drained", true);
            return JobOutcome::Cancelled {
                progress: Some(progress),
            };
        }
        Err(KernelErr::Stop(DurableStop::Sink(msg))) => {
            stats.failed.inc();
            job.annotate("error", msg.as_str());
            return JobOutcome::Failed(format!("checkpoint sink failed: {msg}"));
        }
        Err(KernelErr::Align(e)) => {
            stats.failed.inc();
            job.annotate("error", e.to_string());
            return JobOutcome::Failed(e.to_string());
        }
        // Config errors, or an InvalidResume that survived the clean
        // re-run fallback (cannot happen in practice).
        Err(KernelErr::Stop(e)) => {
            stats.failed.inc();
            job.annotate("error", e.to_string());
            return JobOutcome::Failed(e.to_string());
        }
    };

    // Materialize the traceback into gapped rows and cache the result —
    // done regardless of the deadline so repeat requests are cheap even
    // when this one was too slow.
    let traceback_span = job.stage("traceback");
    let rows = alignment.as_ref().map(rows_to_strings);
    cache.put(
        key,
        CachedResult {
            score,
            rows: rows.clone(),
            algorithm: resolved,
            recovered: false,
            checksum: result_checksum(score, rows.as_ref(), resolved),
        },
    );
    drop(traceback_span);

    // Checkpoint 2: the deadline may have fired after the kernel's last
    // cancellation check.
    if job.cancel.is_cancelled() {
        stats.cancelled.inc();
        job.annotate("cancelled_at", "computed");
        return JobOutcome::Cancelled { progress: None };
    }
    if job.cancel.deadline_expired() {
        stats.cancelled.inc();
        job.annotate("deadline_at", "computed");
        return JobOutcome::DeadlineExceeded {
            stage: CancelStage::Computed,
            progress: None,
        };
    }

    stats.completed.inc();
    stats.record_latency(job.submitted.elapsed());
    job.annotate("resolved", resolved.name());
    JobOutcome::Done(JobResult {
        score,
        rows,
        algorithm: resolved,
        degraded_from: job.degraded_from,
        cached: false,
        recovered: false,
        wait,
        service: served.elapsed(),
    })
}
