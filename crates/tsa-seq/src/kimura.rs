//! Kimura two-parameter (K2P) DNA evolution: transition/transversion-
//! biased mutation, and the classic distance estimator.
//!
//! Real DNA does not mutate uniformly: *transitions* (A↔G, C↔T — within
//! purines or within pyrimidines) occur several times more often than
//! *transversions*. [`K2pModel`] generates descendants with that bias,
//! making the synthetic workloads more realistic than uniform
//! substitution; [`k2p_distance`] inverts the process, estimating
//! evolutionary distance from the observed transition/transversion
//! fractions of an aligned pair:
//!
//! ```text
//! d = −½ ln(1 − 2P − Q) − ¼ ln(1 − 2Q)
//! ```
//!
//! with `P` the transition fraction and `Q` the transversion fraction.

use crate::{Alphabet, Seq, SeqError};
use rand::Rng;

/// The transition partner of a DNA base (A↔G, C↔T).
pub fn transition_of(base: u8) -> u8 {
    match base {
        b'A' => b'G',
        b'G' => b'A',
        b'C' => b'T',
        b'T' => b'C',
        other => other,
    }
}

/// Is the `x → y` substitution a transition (as opposed to a
/// transversion)? Identical bases are neither.
pub fn is_transition(x: u8, y: u8) -> bool {
    x != y && transition_of(x) == y
}

/// Kimura two-parameter substitution model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct K2pModel {
    /// Per-site transition probability.
    pub alpha: f64,
    /// Per-site probability of *each* of the two possible transversions.
    pub beta: f64,
}

impl K2pModel {
    /// Build a model; `alpha + 2·beta` (the total per-site substitution
    /// probability) must stay within `[0, 1]`.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, SeqError> {
        if !(0.0..=1.0).contains(&alpha) || !(0.0..=1.0).contains(&beta) {
            return Err(SeqError::BadConfig(format!(
                "K2P rates out of range: alpha {alpha}, beta {beta}"
            )));
        }
        if alpha + 2.0 * beta > 1.0 {
            return Err(SeqError::BadConfig(format!(
                "total substitution probability {} exceeds 1",
                alpha + 2.0 * beta
            )));
        }
        Ok(K2pModel { alpha, beta })
    }

    /// A model with total substitution rate `total` split at
    /// transition:transversion ratio `kappa` (`alpha = kappa·beta`,
    /// counting both transversion targets).
    ///
    /// `kappa` here is the ratio of the transition rate to the rate of
    /// each single transversion; biological estimates are ~4–8 for
    /// mammalian nuclear DNA.
    pub fn with_kappa(total: f64, kappa: f64) -> Result<Self, SeqError> {
        if kappa <= 0.0 {
            return Err(SeqError::BadConfig(format!(
                "kappa {kappa} must be positive"
            )));
        }
        // total = alpha + 2 beta = (kappa + 2) beta.
        let beta = total / (kappa + 2.0);
        K2pModel::new(kappa * beta, beta)
    }

    /// Expected per-site substitution probability (`alpha + 2·beta`).
    pub fn total_rate(&self) -> f64 {
        self.alpha + 2.0 * self.beta
    }

    /// Mutate one base.
    pub fn mutate_base(&self, base: u8, rng: &mut impl Rng) -> u8 {
        let roll: f64 = rng.gen();
        if roll < self.alpha {
            transition_of(base)
        } else if roll < self.alpha + 2.0 * self.beta {
            // Pick one of the two transversion targets uniformly: the
            // complement set of {base, transition_of(base)}.
            let (t1, t2) = transversions_of(base);
            if rng.gen_bool(0.5) {
                t1
            } else {
                t2
            }
        } else {
            base
        }
    }

    /// Apply the model position-wise to a DNA sequence.
    ///
    /// # Panics
    /// Panics if `ancestor` is not DNA.
    pub fn apply(&self, ancestor: &Seq, rng: &mut impl Rng) -> Seq {
        assert_eq!(ancestor.alphabet(), Alphabet::Dna, "K2P is a DNA model");
        let out: Vec<u8> = ancestor
            .residues()
            .iter()
            .map(|&b| self.mutate_base(b, rng))
            .collect();
        Seq::new(format!("{}-k2p", ancestor.id()), Alphabet::Dna, out)
            .expect("mutation stays within DNA")
    }
}

/// The two transversion targets of a base.
fn transversions_of(base: u8) -> (u8, u8) {
    match base {
        b'A' | b'G' => (b'C', b'T'),
        _ => (b'A', b'G'),
    }
}

/// Observed transition (`P`) and transversion (`Q`) fractions of two
/// equal-length sequences (positional comparison).
///
/// # Panics
/// Panics if lengths differ.
pub fn observed_fractions(x: &Seq, y: &Seq) -> (f64, f64) {
    assert_eq!(
        x.len(),
        y.len(),
        "positional comparison needs equal lengths"
    );
    if x.is_empty() {
        return (0.0, 0.0);
    }
    let (mut ts, mut tv) = (0usize, 0usize);
    for (&a, &b) in x.residues().iter().zip(y.residues()) {
        if a == b {
            continue;
        }
        if is_transition(a, b) {
            ts += 1;
        } else {
            tv += 1;
        }
    }
    let n = x.len() as f64;
    (ts as f64 / n, tv as f64 / n)
}

/// The K2P distance estimate `d = −½ ln(1−2P−Q) − ¼ ln(1−2Q)`.
/// Returns `None` when the observed divergence saturates the formula
/// (logarithm argument ≤ 0).
pub fn k2p_distance(x: &Seq, y: &Seq) -> Option<f64> {
    let (p, q) = observed_fractions(x, y);
    let a1 = 1.0 - 2.0 * p - q;
    let a2 = 1.0 - 2.0 * q;
    if a1 <= 0.0 || a2 <= 0.0 {
        return None;
    }
    Some(-0.5 * a1.ln() - 0.25 * a2.ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_seq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn transition_partners() {
        assert_eq!(transition_of(b'A'), b'G');
        assert_eq!(transition_of(b'G'), b'A');
        assert_eq!(transition_of(b'C'), b'T');
        assert_eq!(transition_of(b'T'), b'C');
        assert!(is_transition(b'A', b'G'));
        assert!(!is_transition(b'A', b'C'));
        assert!(!is_transition(b'A', b'A'));
    }

    #[test]
    fn rates_are_validated() {
        assert!(K2pModel::new(0.1, 0.02).is_ok());
        assert!(K2pModel::new(-0.1, 0.0).is_err());
        assert!(K2pModel::new(0.8, 0.2).is_err()); // 0.8 + 0.4 > 1
        assert!(K2pModel::with_kappa(0.3, 0.0).is_err());
    }

    #[test]
    fn kappa_split() {
        let m = K2pModel::with_kappa(0.3, 4.0).unwrap();
        assert!((m.total_rate() - 0.3).abs() < 1e-12);
        assert!((m.alpha / m.beta - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rate_model_is_identity() {
        let m = K2pModel::new(0.0, 0.0).unwrap();
        let a = random_seq(Alphabet::Dna, 100, &mut rng(1));
        let d = m.apply(&a, &mut rng(2));
        assert_eq!(d.residues(), a.residues());
    }

    #[test]
    fn transition_bias_is_realized() {
        // With kappa = 8 the observed transitions should far outnumber
        // transversions.
        let m = K2pModel::with_kappa(0.2, 8.0).unwrap();
        let a = random_seq(Alphabet::Dna, 20_000, &mut rng(3));
        let d = m.apply(&a, &mut rng(4));
        let (p, q) = observed_fractions(&a, &d);
        assert!(p > 2.0 * q, "P {p} vs Q {q}");
        assert!((p + q - 0.2).abs() < 0.02, "total {}", p + q);
    }

    #[test]
    fn distance_estimator_recovers_small_rates() {
        // For small per-site probabilities, d ≈ the substitution rate.
        let m = K2pModel::with_kappa(0.1, 4.0).unwrap();
        let a = random_seq(Alphabet::Dna, 50_000, &mut rng(5));
        let d = m.apply(&a, &mut rng(6));
        let est = k2p_distance(&a, &d).expect("unsaturated");
        assert!((est - 0.105).abs() < 0.02, "estimate {est}");
    }

    #[test]
    fn distance_is_zero_for_identical() {
        let a = random_seq(Alphabet::Dna, 100, &mut rng(7));
        assert_eq!(k2p_distance(&a, &a), Some(0.0));
    }

    #[test]
    fn distance_saturates_gracefully() {
        // Maximally divergent pair: every position a transition partner.
        let a = Seq::dna("AAAA".repeat(100)).unwrap();
        let b = Seq::dna("GGGG".repeat(100)).unwrap();
        // P = 1, Q = 0: 1 − 2P − Q < 0 → saturated.
        assert_eq!(k2p_distance(&a, &b), None);
    }

    #[test]
    fn mutation_preserves_alphabet_and_length() {
        let m = K2pModel::with_kappa(0.5, 2.0).unwrap();
        let a = random_seq(Alphabet::Dna, 500, &mut rng(8));
        let d = m.apply(&a, &mut rng(9));
        assert_eq!(d.len(), a.len());
        assert!(Alphabet::Dna.validate(d.residues()).is_ok());
    }

    #[test]
    fn distance_estimator_beats_raw_identity_at_high_divergence() {
        // The K2P correction accounts for multiple hits: at high rates the
        // estimate exceeds the observed difference fraction.
        let m = K2pModel::with_kappa(0.4, 4.0).unwrap();
        let a = random_seq(Alphabet::Dna, 50_000, &mut rng(10));
        let d = m.apply(&a, &mut rng(11));
        let (p, q) = observed_fractions(&a, &d);
        let est = k2p_distance(&a, &d).expect("unsaturated");
        assert!(est > p + q, "estimate {est} vs observed {}", p + q);
    }

    #[test]
    #[should_panic(expected = "DNA model")]
    fn protein_input_panics() {
        let m = K2pModel::new(0.1, 0.01).unwrap();
        let p = Seq::protein("MKWV").unwrap();
        let _ = m.apply(&p, &mut rng(1));
    }
}
