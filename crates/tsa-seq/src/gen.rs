//! Random sequence generation.
//!
//! Deterministic given a seed (all generators take an explicit RNG or a
//! `u64` seed and use [`rand::rngs::StdRng`]), so every experiment in the
//! bench harness is reproducible run-to-run.

use crate::{Alphabet, Seq};
use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draw a uniformly random residue of `alphabet`.
pub fn random_residue(alphabet: Alphabet, rng: &mut impl Rng) -> u8 {
    let residues = alphabet.residues();
    residues[rng.gen_range(0..residues.len())]
}

/// Draw a uniformly random residue different from `exclude` — used by the
/// substitution mutation operator.
pub fn random_residue_excluding(alphabet: Alphabet, exclude: u8, rng: &mut impl Rng) -> u8 {
    debug_assert!(alphabet.residues().contains(&exclude));
    loop {
        let r = random_residue(alphabet, rng);
        if r != exclude {
            return r;
        }
    }
}

/// Generate a uniformly random sequence of `len` residues.
pub fn random_seq(alphabet: Alphabet, len: usize, rng: &mut impl Rng) -> Seq {
    let residues: Vec<u8> = (0..len).map(|_| random_residue(alphabet, rng)).collect();
    Seq::new("random", alphabet, residues).expect("generated residues are canonical")
}

/// Generate a uniformly random sequence from a bare seed.
pub fn random_seq_seeded(alphabet: Alphabet, len: usize, seed: u64) -> Seq {
    random_seq(alphabet, len, &mut StdRng::seed_from_u64(seed))
}

/// Generate a random sequence with an explicit residue composition.
///
/// `weights[i]` is the relative frequency of `alphabet.residues()[i]`.
/// Useful for GC-biased DNA or composition-realistic protein workloads.
pub fn random_seq_weighted(
    alphabet: Alphabet,
    len: usize,
    weights: &[f64],
    rng: &mut impl Rng,
) -> Result<Seq, crate::SeqError> {
    let residues = alphabet.residues();
    if weights.len() != residues.len() {
        return Err(crate::SeqError::BadConfig(format!(
            "expected {} weights for {}, got {}",
            residues.len(),
            alphabet.name(),
            weights.len()
        )));
    }
    if weights.iter().any(|&w| w < 0.0) || weights.iter().sum::<f64>() <= 0.0 {
        return Err(crate::SeqError::BadConfig(
            "weights must be non-negative and sum to a positive value".into(),
        ));
    }
    let dist = WeightedIndex::new(weights)
        .map_err(|e| crate::SeqError::BadConfig(format!("bad weights: {e}")))?;
    let body: Vec<u8> = (0..len).map(|_| residues[dist.sample(rng)]).collect();
    Ok(Seq::new("random-weighted", alphabet, body).expect("generated residues are canonical"))
}

/// Generate DNA with a target GC fraction (`0.0 ..= 1.0`).
pub fn random_dna_gc(len: usize, gc: f64, rng: &mut impl Rng) -> Result<Seq, crate::SeqError> {
    if !(0.0..=1.0).contains(&gc) {
        return Err(crate::SeqError::BadConfig(format!(
            "gc fraction {gc} out of [0, 1]"
        )));
    }
    let at = (1.0 - gc) / 2.0;
    let g = gc / 2.0;
    // residue order is A C G T
    random_seq_weighted(Alphabet::Dna, len, &[at, g, g, at], rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn random_seq_has_requested_length_and_alphabet() {
        let s = random_seq(Alphabet::Protein, 100, &mut rng(1));
        assert_eq!(s.len(), 100);
        assert!(Alphabet::Protein.validate(s.residues()).is_ok());
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = random_seq_seeded(Alphabet::Dna, 64, 7);
        let b = random_seq_seeded(Alphabet::Dna, 64, 7);
        let c = random_seq_seeded(Alphabet::Dna, 64, 8);
        assert_eq!(a.residues(), b.residues());
        assert_ne!(a.residues(), c.residues());
    }

    #[test]
    fn zero_length_is_fine() {
        assert!(random_seq(Alphabet::Dna, 0, &mut rng(1)).is_empty());
    }

    #[test]
    fn excluding_never_returns_excluded() {
        let mut r = rng(3);
        for _ in 0..200 {
            assert_ne!(random_residue_excluding(Alphabet::Dna, b'A', &mut r), b'A');
        }
    }

    #[test]
    fn weighted_respects_zero_weights() {
        let mut r = rng(5);
        // Only C and G allowed.
        let s = random_seq_weighted(Alphabet::Dna, 500, &[0.0, 1.0, 1.0, 0.0], &mut r).unwrap();
        assert!(s.residues().iter().all(|&b| b == b'C' || b == b'G'));
    }

    #[test]
    fn weighted_rejects_bad_config() {
        let mut r = rng(5);
        assert!(random_seq_weighted(Alphabet::Dna, 10, &[1.0; 3], &mut r).is_err());
        assert!(random_seq_weighted(Alphabet::Dna, 10, &[-1.0, 1.0, 1.0, 1.0], &mut r).is_err());
        assert!(random_seq_weighted(Alphabet::Dna, 10, &[0.0; 4], &mut r).is_err());
    }

    #[test]
    fn gc_bias_shifts_composition() {
        let mut r = rng(9);
        let hi = random_dna_gc(4000, 0.9, &mut r).unwrap();
        let lo = random_dna_gc(4000, 0.1, &mut r).unwrap();
        let gc_frac = |s: &Seq| {
            s.residues()
                .iter()
                .filter(|&&b| b == b'G' || b == b'C')
                .count() as f64
                / s.len() as f64
        };
        assert!(gc_frac(&hi) > 0.8, "{}", gc_frac(&hi));
        assert!(gc_frac(&lo) < 0.2, "{}", gc_frac(&lo));
    }

    #[test]
    fn gc_out_of_range_rejected() {
        assert!(random_dna_gc(10, 1.5, &mut rng(1)).is_err());
    }

    #[test]
    fn uniform_composition_is_roughly_uniform() {
        let s = random_seq(Alphabet::Dna, 8000, &mut rng(11));
        for &b in Alphabet::Dna.residues() {
            let frac = s.residues().iter().filter(|&&x| x == b).count() as f64 / s.len() as f64;
            assert!((frac - 0.25).abs() < 0.05, "{}: {frac}", b as char);
        }
    }
}
