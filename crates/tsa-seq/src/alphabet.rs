//! Biological alphabets with validation and canonicalization.
//!
//! The aligner itself is alphabet-agnostic (it works on raw `u8` residues and
//! a substitution function), but workload generation, FASTA IO, and scoring
//! matrices all need to agree on which residues are legal. The [`Alphabet`]
//! enum is that single point of agreement.

use crate::SeqError;

/// The 20 standard amino acids in the conventional one-letter order used by
/// BLOSUM/PAM matrix tables.
pub const AMINO_ACIDS: &[u8; 20] = b"ARNDCQEGHILKMFPSTWYV";

/// The four DNA nucleotides.
pub const DNA_BASES: &[u8; 4] = b"ACGT";

/// The four RNA nucleotides.
pub const RNA_BASES: &[u8; 4] = b"ACGU";

/// A residue alphabet. Determines which bytes are valid sequence content.
///
/// Validation is case-insensitive; canonicalization upper-cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Alphabet {
    /// `A C G T` (+ `N` wildcard accepted on input).
    Dna,
    /// `A C G U` (+ `N` wildcard accepted on input).
    Rna,
    /// The 20 standard amino acids (+ `X` wildcard accepted on input).
    Protein,
}

impl Alphabet {
    /// Human-readable name, used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            Alphabet::Dna => "DNA",
            Alphabet::Rna => "RNA",
            Alphabet::Protein => "protein",
        }
    }

    /// The canonical residues of this alphabet, excluding wildcards.
    pub fn residues(self) -> &'static [u8] {
        match self {
            Alphabet::Dna => DNA_BASES,
            Alphabet::Rna => RNA_BASES,
            Alphabet::Protein => AMINO_ACIDS,
        }
    }

    /// The wildcard residue accepted on input (`N` for nucleotides, `X` for
    /// protein).
    pub fn wildcard(self) -> u8 {
        match self {
            Alphabet::Dna | Alphabet::Rna => b'N',
            Alphabet::Protein => b'X',
        }
    }

    /// Number of canonical residues.
    pub fn size(self) -> usize {
        self.residues().len()
    }

    /// Is `byte` (case-insensitively) a member of this alphabet, including
    /// the wildcard?
    pub fn contains(self, byte: u8) -> bool {
        let up = byte.to_ascii_uppercase();
        up == self.wildcard() || self.residues().contains(&up)
    }

    /// Validate a residue string; returns the position and byte of the first
    /// offender, if any.
    pub fn validate(self, residues: &[u8]) -> Result<(), SeqError> {
        for (position, &byte) in residues.iter().enumerate() {
            if !self.contains(byte) {
                return Err(SeqError::InvalidResidue {
                    byte,
                    position,
                    alphabet: self.name(),
                });
            }
        }
        Ok(())
    }

    /// Upper-case every residue in place.
    pub fn canonicalize(self, residues: &mut [u8]) {
        for b in residues {
            *b = b.to_ascii_uppercase();
        }
    }

    /// Index of a canonical residue within [`Alphabet::residues`], or `None`
    /// for wildcards / invalid bytes. Used by dense scoring-matrix lookups.
    pub fn index_of(self, byte: u8) -> Option<usize> {
        let up = byte.to_ascii_uppercase();
        self.residues().iter().position(|&r| r == up)
    }

    /// Infer the most plausible alphabet for a residue string: DNA if it
    /// fits, then RNA, then protein.
    pub fn infer(residues: &[u8]) -> Option<Alphabet> {
        [Alphabet::Dna, Alphabet::Rna, Alphabet::Protein]
            .into_iter()
            .find(|a| a.validate(residues).is_ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dna_membership() {
        for &b in b"ACGTacgtNn" {
            assert!(Alphabet::Dna.contains(b), "{}", b as char);
        }
        assert!(!Alphabet::Dna.contains(b'U'));
        assert!(!Alphabet::Dna.contains(b'-'));
        assert!(!Alphabet::Dna.contains(b'Z'));
    }

    #[test]
    fn rna_membership() {
        assert!(Alphabet::Rna.contains(b'U'));
        assert!(Alphabet::Rna.contains(b'u'));
        assert!(!Alphabet::Rna.contains(b'T'));
    }

    #[test]
    fn protein_membership() {
        for &b in AMINO_ACIDS {
            assert!(Alphabet::Protein.contains(b));
            assert!(Alphabet::Protein.contains(b.to_ascii_lowercase()));
        }
        assert!(Alphabet::Protein.contains(b'X'));
        // B, J, O, U, Z are not standard amino acids here.
        for &b in b"BJOUZ" {
            assert!(!Alphabet::Protein.contains(b), "{}", b as char);
        }
    }

    #[test]
    fn validate_reports_first_offender() {
        let err = Alphabet::Dna.validate(b"ACGXT").unwrap_err();
        assert_eq!(
            err,
            SeqError::InvalidResidue {
                byte: b'X',
                position: 3,
                alphabet: "DNA"
            }
        );
    }

    #[test]
    fn validate_accepts_empty() {
        assert!(Alphabet::Protein.validate(b"").is_ok());
    }

    #[test]
    fn canonicalize_uppercases() {
        let mut v = b"acgt".to_vec();
        Alphabet::Dna.canonicalize(&mut v);
        assert_eq!(v, b"ACGT");
    }

    #[test]
    fn index_of_roundtrip() {
        for (i, &r) in AMINO_ACIDS.iter().enumerate() {
            assert_eq!(Alphabet::Protein.index_of(r), Some(i));
            assert_eq!(Alphabet::Protein.index_of(r.to_ascii_lowercase()), Some(i));
        }
        assert_eq!(Alphabet::Protein.index_of(b'X'), None);
        assert_eq!(Alphabet::Dna.index_of(b'G'), Some(2));
    }

    #[test]
    fn infer_prefers_dna() {
        assert_eq!(Alphabet::infer(b"ACGT"), Some(Alphabet::Dna));
        assert_eq!(Alphabet::infer(b"ACGU"), Some(Alphabet::Rna));
        assert_eq!(Alphabet::infer(b"MKWVT"), Some(Alphabet::Protein));
        assert_eq!(Alphabet::infer(b"123"), None);
    }

    #[test]
    fn sizes() {
        assert_eq!(Alphabet::Dna.size(), 4);
        assert_eq!(Alphabet::Rna.size(), 4);
        assert_eq!(Alphabet::Protein.size(), 20);
    }
}
