//! Minimal, dependency-light FASTA parsing and emission.
//!
//! Supports multi-line records, `>id description` headers, comment lines
//! beginning with `;` (a legacy FASTA convention), and CRLF line endings.
//! Parsing validates residues against a caller-supplied [`Alphabet`], or
//! infers one per record with [`parse_auto`].

use crate::{Alphabet, Seq, SeqError};
use bytes::{BufMut, BytesMut};

/// Parse FASTA text, validating every record against `alphabet`.
///
/// Returns the records in file order. An input with no records yields an
/// empty vector; residue data before the first header is an error.
pub fn parse(input: &str, alphabet: Alphabet) -> Result<Vec<Seq>, SeqError> {
    let raw = parse_raw(input)?;
    raw.into_iter()
        .map(|r| {
            let seq = Seq::new(r.id, alphabet, r.residues)?;
            Ok(match r.description {
                Some(d) => seq.with_description(d),
                None => seq,
            })
        })
        .collect()
}

/// Parse FASTA text, inferring the alphabet of each record independently
/// (DNA preferred, then RNA, then protein).
pub fn parse_auto(input: &str) -> Result<Vec<Seq>, SeqError> {
    let raw = parse_raw(input)?;
    raw.into_iter()
        .map(|r| {
            let alphabet = Alphabet::infer(&r.residues).ok_or(SeqError::Fasta {
                line: r.header_line,
                message: format!("record `{}` fits no known alphabet", r.id),
            })?;
            let seq = Seq::new(r.id, alphabet, r.residues)?;
            Ok(match r.description {
                Some(d) => seq.with_description(d),
                None => seq,
            })
        })
        .collect()
}

/// Serialize records as FASTA with lines wrapped at `width` residues
/// (`width == 0` means no wrapping).
pub fn emit(seqs: &[Seq], width: usize) -> String {
    let mut out = BytesMut::new();
    for s in seqs {
        out.put_u8(b'>');
        out.put_slice(s.id().as_bytes());
        if let Some(d) = s.description() {
            out.put_u8(b' ');
            out.put_slice(d.as_bytes());
        }
        out.put_u8(b'\n');
        if width == 0 {
            out.put_slice(s.residues());
            out.put_u8(b'\n');
        } else {
            for chunk in s.residues().chunks(width) {
                out.put_slice(chunk);
                out.put_u8(b'\n');
            }
            if s.is_empty() {
                // keep a blank body line so the record count survives
                // round-trips of empty sequences
            }
        }
    }
    String::from_utf8(out.to_vec()).expect("FASTA output is ASCII")
}

struct RawRecord {
    id: String,
    description: Option<String>,
    residues: Vec<u8>,
    header_line: usize,
}

fn parse_raw(input: &str) -> Result<Vec<RawRecord>, SeqError> {
    let mut records: Vec<RawRecord> = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.trim_end_matches('\r');
        if line.starts_with(';') || line.trim().is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            let header = header.trim();
            if header.is_empty() {
                return Err(SeqError::Fasta {
                    line: line_no,
                    message: "header with empty id".into(),
                });
            }
            let (id, description) = match header.split_once(char::is_whitespace) {
                Some((id, rest)) => (id.to_string(), Some(rest.trim().to_string())),
                None => (header.to_string(), None),
            };
            records.push(RawRecord {
                id,
                description,
                residues: Vec::new(),
                header_line: line_no,
            });
        } else {
            let record = records.last_mut().ok_or(SeqError::Fasta {
                line: line_no,
                message: "sequence data before first `>` header".into(),
            })?;
            record
                .residues
                .extend(line.bytes().filter(|b| !b.is_ascii_whitespace()));
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = ">s1 first sequence\nACGT\nACGT\n>s2\nTTTT\n";

    #[test]
    fn parses_two_records() {
        let seqs = parse(SAMPLE, Alphabet::Dna).unwrap();
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].id(), "s1");
        assert_eq!(seqs[0].description(), Some("first sequence"));
        assert_eq!(seqs[0].residues(), b"ACGTACGT");
        assert_eq!(seqs[1].id(), "s2");
        assert_eq!(seqs[1].description(), None);
        assert_eq!(seqs[1].residues(), b"TTTT");
    }

    #[test]
    fn tolerates_crlf_comments_and_blank_lines() {
        let input = "; comment\r\n>s1\r\nAC\r\n\r\nGT\r\n";
        let seqs = parse(input, Alphabet::Dna).unwrap();
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0].residues(), b"ACGT");
    }

    #[test]
    fn lowercase_input_is_canonicalized() {
        let seqs = parse(">s\nacgt\n", Alphabet::Dna).unwrap();
        assert_eq!(seqs[0].residues(), b"ACGT");
    }

    #[test]
    fn data_before_header_is_an_error() {
        let err = parse("ACGT\n>s\nAC\n", Alphabet::Dna).unwrap_err();
        assert!(matches!(err, SeqError::Fasta { line: 1, .. }));
    }

    #[test]
    fn empty_header_is_an_error() {
        let err = parse(">\nACGT\n", Alphabet::Dna).unwrap_err();
        assert!(matches!(err, SeqError::Fasta { line: 1, .. }));
    }

    #[test]
    fn invalid_residue_is_reported() {
        let err = parse(">s\nACQT\n", Alphabet::Dna).unwrap_err();
        assert!(matches!(err, SeqError::InvalidResidue { byte: b'Q', .. }));
    }

    #[test]
    fn empty_input_yields_no_records() {
        assert!(parse("", Alphabet::Dna).unwrap().is_empty());
        assert!(parse("\n\n; only comments\n", Alphabet::Dna)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn auto_infers_per_record() {
        let seqs = parse_auto(">d\nACGT\n>r\nACGU\n>p\nMKWV\n").unwrap();
        assert_eq!(seqs[0].alphabet(), Alphabet::Dna);
        assert_eq!(seqs[1].alphabet(), Alphabet::Rna);
        assert_eq!(seqs[2].alphabet(), Alphabet::Protein);
    }

    #[test]
    fn auto_rejects_unclassifiable() {
        let err = parse_auto(">s\nAC9T\n").unwrap_err();
        assert!(matches!(err, SeqError::Fasta { .. }));
    }

    #[test]
    fn emit_wraps_lines() {
        let s = Seq::new("s1", Alphabet::Dna, b"ACGTACGTAC".to_vec()).unwrap();
        let out = emit(std::slice::from_ref(&s), 4);
        assert_eq!(out, ">s1\nACGT\nACGT\nAC\n");
        let unwrapped = emit(std::slice::from_ref(&s), 0);
        assert_eq!(unwrapped, ">s1\nACGTACGTAC\n");
    }

    #[test]
    fn emit_includes_description() {
        let s = Seq::new("s1", Alphabet::Dna, b"AC".to_vec())
            .unwrap()
            .with_description("hello world");
        assert_eq!(emit(&[s], 0), ">s1 hello world\nAC\n");
    }

    #[test]
    fn round_trip() {
        let seqs = parse(SAMPLE, Alphabet::Dna).unwrap();
        let emitted = emit(&seqs, 60);
        let reparsed = parse(&emitted, Alphabet::Dna).unwrap();
        assert_eq!(seqs, reparsed);
    }
}
