//! Per-sequence summary statistics (used by `tsa info` and workload
//! logging).

use crate::{Alphabet, Seq};

/// Composition and summary statistics of one sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct SeqStats {
    /// Sequence length.
    pub len: usize,
    /// `(residue, count)` sorted by descending count, then residue.
    pub composition: Vec<(u8, usize)>,
    /// GC fraction (DNA/RNA; `None` for protein).
    pub gc: Option<f64>,
    /// Shannon entropy of the residue distribution, in bits.
    pub entropy_bits: f64,
}

/// Compute statistics for a sequence.
pub fn seq_stats(seq: &Seq) -> SeqStats {
    let mut counts = [0usize; 256];
    for &b in seq.residues() {
        counts[b as usize] += 1;
    }
    let mut composition: Vec<(u8, usize)> = (0..=255u8)
        .filter(|&b| counts[b as usize] > 0)
        .map(|b| (b, counts[b as usize]))
        .collect();
    composition.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let gc = match seq.alphabet() {
        Alphabet::Dna | Alphabet::Rna => {
            if seq.is_empty() {
                Some(0.0)
            } else {
                let gc = counts[b'G' as usize] + counts[b'C' as usize];
                Some(gc as f64 / seq.len() as f64)
            }
        }
        Alphabet::Protein => None,
    };

    let n = seq.len() as f64;
    let entropy_bits = if seq.is_empty() {
        0.0
    } else {
        composition
            .iter()
            .map(|&(_, c)| {
                let p = c as f64 / n;
                -p * p.log2()
            })
            .sum()
    };

    SeqStats {
        len: seq.len(),
        composition,
        gc,
        entropy_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_counts_and_order() {
        let s = Seq::dna("AACCCG").unwrap();
        let st = seq_stats(&s);
        assert_eq!(st.len, 6);
        assert_eq!(st.composition, vec![(b'C', 3), (b'A', 2), (b'G', 1)]);
    }

    #[test]
    fn gc_fraction() {
        let s = Seq::dna("GGCC").unwrap();
        assert_eq!(seq_stats(&s).gc, Some(1.0));
        let s = Seq::dna("AATT").unwrap();
        assert_eq!(seq_stats(&s).gc, Some(0.0));
        let s = Seq::dna("ACGT").unwrap();
        assert_eq!(seq_stats(&s).gc, Some(0.5));
        let p = Seq::protein("MKWV").unwrap();
        assert_eq!(seq_stats(&p).gc, None);
    }

    #[test]
    fn entropy_extremes() {
        // Single-symbol sequence: zero entropy.
        let s = Seq::dna("AAAA").unwrap();
        assert!(seq_stats(&s).entropy_bits.abs() < 1e-12);
        // Uniform 4 symbols: 2 bits.
        let s = Seq::dna("ACGT").unwrap();
        assert!((seq_stats(&s).entropy_bits - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sequence() {
        let s = Seq::dna("").unwrap();
        let st = seq_stats(&s);
        assert_eq!(st.len, 0);
        assert!(st.composition.is_empty());
        assert_eq!(st.gc, Some(0.0));
        assert_eq!(st.entropy_bits, 0.0);
    }
}
