//! Error type shared across the sequence substrate.

use std::fmt;

/// Errors produced while constructing, parsing, or generating sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqError {
    /// A residue not permitted by the target alphabet was encountered.
    InvalidResidue {
        /// Offending byte.
        byte: u8,
        /// 0-based position within the sequence.
        position: usize,
        /// Name of the alphabet that rejected the byte.
        alphabet: &'static str,
    },
    /// FASTA input was structurally malformed.
    Fasta {
        /// 1-based line number of the problem.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// An empty sequence where a non-empty one is required.
    Empty,
    /// A configuration parameter was out of its legal range.
    BadConfig(String),
}

impl fmt::Display for SeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqError::InvalidResidue {
                byte,
                position,
                alphabet,
            } => write!(
                f,
                "invalid residue {:?} (0x{byte:02x}) at position {position} for alphabet {alphabet}",
                char::from(*byte)
            ),
            SeqError::Fasta { line, message } => {
                write!(f, "malformed FASTA at line {line}: {message}")
            }
            SeqError::Empty => write!(f, "sequence must be non-empty"),
            SeqError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for SeqError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_residue() {
        let e = SeqError::InvalidResidue {
            byte: b'Z',
            position: 3,
            alphabet: "DNA",
        };
        let s = e.to_string();
        assert!(s.contains("'Z'"), "{s}");
        assert!(s.contains("position 3"), "{s}");
        assert!(s.contains("DNA"), "{s}");
    }

    #[test]
    fn display_fasta() {
        let e = SeqError::Fasta {
            line: 7,
            message: "record with no header".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn display_empty_and_config() {
        assert!(SeqError::Empty.to_string().contains("non-empty"));
        assert!(SeqError::BadConfig("p out of range".into())
            .to_string()
            .contains("p out of range"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SeqError::Empty);
    }
}
