//! 2-bit packed DNA encoding.
//!
//! The SIMD kernels want DNA residues as dense small integers (`A=0`,
//! `C=1`, `G=2`, `T=3`) so substitution lookups become 4-entry shuffles
//! instead of 256-entry table gathers, and so a whole sequence packs four
//! residues per byte. [`PackedDna`] is that representation: construction
//! validates the sequence is strict `ACGT` (anything else — including
//! lowercase or ambiguity codes — returns `None`, and the caller keeps its
//! byte-alphabet path), and accessors unpack either one code or the whole
//! code vector.

/// The canonical 2-bit DNA code of a residue, or `None` for non-`ACGT`.
#[inline(always)]
pub fn dna_code(residue: u8) -> Option<u8> {
    match residue {
        b'A' => Some(0),
        b'C' => Some(1),
        b'G' => Some(2),
        b'T' => Some(3),
        _ => None,
    }
}

/// The residue letter of a 2-bit code (`0..=3`).
#[inline(always)]
pub fn dna_letter(code: u8) -> u8 {
    debug_assert!(code < 4);
    b"ACGT"[code as usize & 3]
}

/// A strict-`ACGT` sequence packed four residues per byte, little-endian
/// within the byte (residue `i` lives in bits `2·(i%4) ..`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedDna {
    packed: Box<[u8]>,
    len: usize,
}

impl PackedDna {
    /// Pack a residue slice, or `None` if any residue is not `ACGT`.
    pub fn from_residues(residues: &[u8]) -> Option<PackedDna> {
        let mut packed = vec![0u8; residues.len().div_ceil(4)];
        for (i, &r) in residues.iter().enumerate() {
            packed[i / 4] |= dna_code(r)? << (2 * (i % 4));
        }
        Some(PackedDna {
            packed: packed.into_boxed_slice(),
            len: residues.len(),
        })
    }

    /// Number of residues.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed bytes (four 2-bit codes per byte).
    pub fn as_bytes(&self) -> &[u8] {
        &self.packed
    }

    /// The 2-bit code of residue `i`.
    #[inline(always)]
    pub fn code(&self, i: usize) -> u8 {
        debug_assert!(i < self.len);
        (self.packed[i / 4] >> (2 * (i % 4))) & 3
    }

    /// Unpack to one code byte (`0..=3`) per residue.
    pub fn codes(&self) -> Vec<u8> {
        (0..self.len).map(|i| self.code(i)).collect()
    }

    /// Unpack back to residue letters.
    pub fn to_residues(&self) -> Vec<u8> {
        (0..self.len).map(|i| dna_letter(self.code(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_phase() {
        for len in 0..20 {
            let residues: Vec<u8> = (0..len).map(|i| dna_letter((i * 7 % 4) as u8)).collect();
            let p = PackedDna::from_residues(&residues).unwrap();
            assert_eq!(p.len(), len);
            assert_eq!(p.is_empty(), len == 0);
            assert_eq!(p.to_residues(), residues);
            let codes = p.codes();
            for (i, &c) in codes.iter().enumerate() {
                assert_eq!(c, p.code(i));
                assert_eq!(dna_letter(c), residues[i]);
            }
            assert_eq!(p.as_bytes().len(), len.div_ceil(4));
        }
    }

    #[test]
    fn rejects_non_acgt() {
        assert!(PackedDna::from_residues(b"ACGT").is_some());
        assert!(PackedDna::from_residues(b"ACGU").is_none());
        assert!(PackedDna::from_residues(b"acgt").is_none());
        assert!(PackedDna::from_residues(b"ACGN").is_none());
        assert_eq!(dna_code(b'X'), None);
    }

    #[test]
    fn packing_is_dense() {
        let p = PackedDna::from_residues(b"TGCA").unwrap();
        // T=3, G=2, C=1, A=0 little-endian within the byte: 0b00_01_10_11.
        assert_eq!(p.as_bytes(), &[0b00_01_10_11]);
    }
}
