//! Sequence substrate for the `three-seq-align` workspace.
//!
//! This crate provides everything the aligner needs to *have something to
//! align*:
//!
//! * [`Alphabet`] — DNA / RNA / protein alphabets with validation and
//!   canonicalization (`alphabet` module);
//! * [`Seq`] — an owned, validated biological sequence with an id
//!   (`seq` module);
//! * FASTA parsing and emission (`fasta` module);
//! * random sequence generation (`gen` module);
//! * a mutation model and a *related-family* generator (`mutate` and
//!   `family` modules) used to synthesize realistic three-sequence
//!   workloads: a random ancestor is mutated independently into three
//!   descendants with controlled substitution and indel rates. This is the
//!   substitute for the (unavailable) biological benchmark sequences of the
//!   original evaluation — see `DESIGN.md` §3.
//!
//! # Example
//!
//! ```
//! use tsa_seq::{Alphabet, Seq, family::FamilyConfig};
//!
//! let s = Seq::dna("ACGTACGT").unwrap();
//! assert_eq!(s.len(), 8);
//!
//! let fam = FamilyConfig::new(64, 0.1, 0.02).generate(42);
//! assert_eq!(fam.members.len(), 3);
//! for m in &fam.members {
//!     assert!(Alphabet::Dna.validate(m.residues()).is_ok());
//! }
//! ```

pub mod alphabet;
pub mod error;
pub mod family;
pub mod fasta;
pub mod gen;
pub mod kimura;
pub mod kmer;
pub mod mutate;
pub mod packed;
pub mod seq;
pub mod stats;

pub use alphabet::Alphabet;
pub use error::SeqError;
pub use packed::PackedDna;
pub use seq::Seq;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, SeqError>;
