//! Related-sequence-family workloads.
//!
//! The original evaluation aligned triples of homologous biological
//! sequences. In their absence we synthesize a *family*: a random ancestor
//! mutated independently into three descendants. Identity between members is
//! controlled by the mutation rates, and lengths stay near the configured
//! ancestor length, so runtime experiments can sweep `n` cleanly.

use crate::gen::random_seq;
use crate::mutate::MutationModel;
use crate::{Alphabet, Seq, SeqError};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A generated three-sequence workload.
#[derive(Debug, Clone)]
pub struct Family {
    /// The common ancestor the members were mutated from.
    pub ancestor: Seq,
    /// The three descendant sequences — the aligner's inputs.
    pub members: [Seq; 3],
    /// The configuration used to generate this family.
    pub config: FamilyConfig,
    /// The seed used (for reproducibility in experiment logs).
    pub seed: u64,
}

impl Family {
    /// Borrow the three members as a tuple, the shape most aligner entry
    /// points take.
    pub fn triple(&self) -> (&Seq, &Seq, &Seq) {
        (&self.members[0], &self.members[1], &self.members[2])
    }

    /// Mean pairwise identity between the three members (positional, over
    /// the shorter of each pair) — a quick divergence summary for logs.
    pub fn mean_pairwise_identity(&self) -> f64 {
        let [a, b, c] = &self.members;
        (a.identity_with(b) + a.identity_with(c) + b.identity_with(c)) / 3.0
    }
}

/// Configuration for [`Family`] generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FamilyConfig {
    /// Length of the random ancestor.
    pub ancestor_len: usize,
    /// Per-descendant substitution rate.
    pub substitution: f64,
    /// Per-descendant insertion *and* deletion rate (symmetric indels keep
    /// expected length constant).
    pub indel: f64,
    /// Alphabet of the whole family.
    pub alphabet: Alphabet,
}

impl FamilyConfig {
    /// DNA family with the given ancestor length, substitution rate and
    /// (symmetric) indel rate.
    pub fn new(ancestor_len: usize, substitution: f64, indel: f64) -> Self {
        FamilyConfig {
            ancestor_len,
            substitution,
            indel,
            alphabet: Alphabet::Dna,
        }
    }

    /// Same, over the protein alphabet.
    pub fn protein(ancestor_len: usize, substitution: f64, indel: f64) -> Self {
        FamilyConfig {
            alphabet: Alphabet::Protein,
            ..FamilyConfig::new(ancestor_len, substitution, indel)
        }
    }

    /// The mutation model each descendant is drawn from.
    pub fn model(&self) -> Result<MutationModel, SeqError> {
        MutationModel::new(self.substitution, self.indel, self.indel)
    }

    /// Generate a family deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if the rates are out of range; use [`FamilyConfig::try_generate`]
    /// for fallible generation.
    pub fn generate(&self, seed: u64) -> Family {
        self.try_generate(seed).expect("valid family config")
    }

    /// Fallible variant of [`FamilyConfig::generate`].
    pub fn try_generate(&self, seed: u64) -> Result<Family, SeqError> {
        let model = self.model()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let ancestor = random_seq(self.alphabet, self.ancestor_len, &mut rng)
            .with_id(format!("ancestor-{seed}"));
        let mut make = |name: &str| {
            model
                .apply(&ancestor, &mut rng)
                .with_id(format!("{name}-{seed}"))
        };
        let members = [make("A"), make("B"), make("C")];
        Ok(Family {
            ancestor,
            members,
            config: *self,
            seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = FamilyConfig::new(80, 0.1, 0.02);
        let f1 = cfg.generate(99);
        let f2 = cfg.generate(99);
        for (a, b) in f1.members.iter().zip(&f2.members) {
            assert_eq!(a.residues(), b.residues());
        }
        let f3 = cfg.generate(100);
        assert_ne!(f1.members[0].residues(), f3.members[0].residues());
    }

    #[test]
    fn members_are_near_ancestor_length() {
        let cfg = FamilyConfig::new(200, 0.1, 0.05);
        let fam = cfg.generate(1);
        for m in &fam.members {
            let delta = (m.len() as i64 - 200).unsigned_abs();
            assert!(delta < 60, "len {}", m.len());
        }
    }

    #[test]
    fn zero_rates_give_identical_members() {
        let fam = FamilyConfig::new(50, 0.0, 0.0).generate(5);
        for m in &fam.members {
            assert_eq!(m.residues(), fam.ancestor.residues());
        }
        assert!((fam.mean_pairwise_identity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn higher_rates_reduce_identity() {
        let lo = FamilyConfig::new(400, 0.05, 0.0).generate(7);
        let hi = FamilyConfig::new(400, 0.5, 0.0).generate(7);
        assert!(lo.mean_pairwise_identity() > hi.mean_pairwise_identity());
    }

    #[test]
    fn protein_families_use_protein_alphabet() {
        let fam = FamilyConfig::protein(60, 0.2, 0.02).generate(3);
        for m in &fam.members {
            assert_eq!(m.alphabet(), Alphabet::Protein);
        }
    }

    #[test]
    fn triple_borrows_in_order() {
        let fam = FamilyConfig::new(10, 0.1, 0.0).generate(11);
        let (a, b, c) = fam.triple();
        assert_eq!(a.residues(), fam.members[0].residues());
        assert_eq!(b.residues(), fam.members[1].residues());
        assert_eq!(c.residues(), fam.members[2].residues());
    }

    #[test]
    fn invalid_rates_surface_as_errors() {
        let cfg = FamilyConfig::new(10, 0.9, 0.5); // sub + del > 1
        assert!(cfg.try_generate(0).is_err());
    }

    #[test]
    fn member_ids_embed_seed() {
        let fam = FamilyConfig::new(10, 0.1, 0.0).generate(42);
        assert_eq!(fam.members[0].id(), "A-42");
        assert_eq!(fam.members[2].id(), "C-42");
    }
}
