//! A point-mutation model: substitutions, insertions, deletions.
//!
//! Applied to an ancestor sequence, it produces a descendant whose expected
//! divergence is controlled by per-position rates. This is the engine behind
//! the three-sequence family workloads in [`crate::family`].

use crate::gen::{random_residue, random_residue_excluding};
use crate::{Seq, SeqError};
use rand::Rng;

/// Per-position mutation rates. All rates are probabilities in `[0, 1]`;
/// `substitution + deletion` must not exceed 1 (they compete for the same
/// position), while insertion is evaluated independently before each
/// position and once after the last.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MutationModel {
    /// Probability that a position is substituted by a different residue.
    pub substitution: f64,
    /// Probability that a position is deleted.
    pub deletion: f64,
    /// Probability of inserting a random residue before a position.
    pub insertion: f64,
}

impl MutationModel {
    /// Build a model, validating ranges.
    pub fn new(substitution: f64, deletion: f64, insertion: f64) -> Result<Self, SeqError> {
        for (name, v) in [
            ("substitution", substitution),
            ("deletion", deletion),
            ("insertion", insertion),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(SeqError::BadConfig(format!(
                    "{name} rate {v} out of [0, 1]"
                )));
            }
        }
        if substitution + deletion > 1.0 {
            return Err(SeqError::BadConfig(format!(
                "substitution + deletion = {} exceeds 1",
                substitution + deletion
            )));
        }
        Ok(MutationModel {
            substitution,
            deletion,
            insertion,
        })
    }

    /// A pure-substitution model (no indels) — keeps lengths equal, which
    /// some experiments rely on.
    pub fn substitutions_only(rate: f64) -> Result<Self, SeqError> {
        MutationModel::new(rate, 0.0, 0.0)
    }

    /// The identity model: no mutation at all.
    pub fn identity() -> Self {
        MutationModel {
            substitution: 0.0,
            deletion: 0.0,
            insertion: 0.0,
        }
    }

    /// Apply the model to `ancestor`, producing a mutated descendant.
    pub fn apply(&self, ancestor: &Seq, rng: &mut impl Rng) -> Seq {
        let alphabet = ancestor.alphabet();
        let mut out = Vec::with_capacity(ancestor.len() + ancestor.len() / 8 + 4);
        for &residue in ancestor.residues() {
            if rng.gen_bool(self.insertion) {
                out.push(random_residue(alphabet, rng));
            }
            let roll: f64 = rng.gen();
            if roll < self.deletion {
                // position deleted
            } else if roll < self.deletion + self.substitution {
                out.push(random_residue_excluding(alphabet, residue, rng));
            } else {
                out.push(residue);
            }
        }
        if rng.gen_bool(self.insertion) {
            out.push(random_residue(alphabet, rng));
        }
        Seq::new(format!("{}-mut", ancestor.id()), alphabet, out)
            .expect("mutation preserves alphabet membership")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_seq;
    use crate::Alphabet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn identity_model_is_noop() {
        let mut r = rng(1);
        let a = random_seq(Alphabet::Dna, 50, &mut r);
        let d = MutationModel::identity().apply(&a, &mut r);
        assert_eq!(d.residues(), a.residues());
    }

    #[test]
    fn substitutions_only_preserves_length() {
        let mut r = rng(2);
        let a = random_seq(Alphabet::Protein, 200, &mut r);
        let m = MutationModel::substitutions_only(0.3).unwrap();
        let d = m.apply(&a, &mut r);
        assert_eq!(d.len(), a.len());
        assert!(d.identity_with(&a) < 1.0);
    }

    #[test]
    fn substitution_rate_roughly_respected() {
        let mut r = rng(3);
        let a = random_seq(Alphabet::Protein, 5000, &mut r);
        let m = MutationModel::substitutions_only(0.2).unwrap();
        let d = m.apply(&a, &mut r);
        let identity = d.identity_with(&a);
        assert!((identity - 0.8).abs() < 0.03, "identity {identity}");
    }

    #[test]
    fn full_substitution_changes_everything() {
        let mut r = rng(4);
        let a = random_seq(Alphabet::Dna, 100, &mut r);
        let m = MutationModel::substitutions_only(1.0).unwrap();
        let d = m.apply(&a, &mut r);
        assert_eq!(d.identity_with(&a), 0.0);
    }

    #[test]
    fn deletions_shrink_insertions_grow() {
        let mut r = rng(5);
        let a = random_seq(Alphabet::Dna, 2000, &mut r);
        let del = MutationModel::new(0.0, 0.3, 0.0).unwrap().apply(&a, &mut r);
        assert!(del.len() < a.len());
        let ins = MutationModel::new(0.0, 0.0, 0.3).unwrap().apply(&a, &mut r);
        assert!(ins.len() > a.len());
    }

    #[test]
    fn bad_rates_rejected() {
        assert!(MutationModel::new(1.1, 0.0, 0.0).is_err());
        assert!(MutationModel::new(-0.1, 0.0, 0.0).is_err());
        assert!(MutationModel::new(0.0, 0.0, 2.0).is_err());
        assert!(MutationModel::new(0.7, 0.7, 0.0).is_err());
    }

    #[test]
    fn descendants_stay_in_alphabet() {
        let mut r = rng(6);
        let a = random_seq(Alphabet::Rna, 300, &mut r);
        let m = MutationModel::new(0.2, 0.05, 0.05).unwrap();
        let d = m.apply(&a, &mut r);
        assert!(Alphabet::Rna.validate(d.residues()).is_ok());
    }

    #[test]
    fn empty_ancestor_can_only_gain_insertions() {
        let mut r = rng(7);
        let a = Seq::dna("").unwrap();
        let m = MutationModel::new(0.5, 0.2, 1.0).unwrap();
        let d = m.apply(&a, &mut r);
        assert_eq!(d.len(), 1); // exactly the single trailing-insert slot
    }
}
