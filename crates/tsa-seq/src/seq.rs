//! The owned, validated sequence type.

use crate::{Alphabet, SeqError};
use std::fmt;

/// An owned biological sequence: an identifier, an optional description, a
/// declared [`Alphabet`], and canonical (upper-case, validated) residues.
///
/// `Seq` is the unit of input to every aligner in the workspace. Residues
/// are stored as raw bytes; construction validates them against the declared
/// alphabet and upper-cases them, so downstream code never needs to
/// re-validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Seq {
    id: String,
    description: Option<String>,
    alphabet: Alphabet,
    residues: Vec<u8>,
}

impl Seq {
    /// Build a sequence with an explicit id, validating against `alphabet`.
    pub fn new(
        id: impl Into<String>,
        alphabet: Alphabet,
        residues: impl Into<Vec<u8>>,
    ) -> Result<Self, SeqError> {
        let mut residues = residues.into();
        alphabet.validate(&residues)?;
        alphabet.canonicalize(&mut residues);
        Ok(Seq {
            id: id.into(),
            description: None,
            alphabet,
            residues,
        })
    }

    /// Shorthand for an anonymous DNA sequence.
    pub fn dna(residues: impl AsRef<[u8]>) -> Result<Self, SeqError> {
        Seq::new("seq", Alphabet::Dna, residues.as_ref())
    }

    /// Shorthand for an anonymous RNA sequence.
    pub fn rna(residues: impl AsRef<[u8]>) -> Result<Self, SeqError> {
        Seq::new("seq", Alphabet::Rna, residues.as_ref())
    }

    /// Shorthand for an anonymous protein sequence.
    pub fn protein(residues: impl AsRef<[u8]>) -> Result<Self, SeqError> {
        Seq::new("seq", Alphabet::Protein, residues.as_ref())
    }

    /// Attach or replace the free-form description (FASTA header remainder).
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = Some(description.into());
        self
    }

    /// Replace the identifier.
    pub fn with_id(mut self, id: impl Into<String>) -> Self {
        self.id = id.into();
        self
    }

    /// The sequence identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The description, if any.
    pub fn description(&self) -> Option<&str> {
        self.description.as_deref()
    }

    /// The declared alphabet.
    pub fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    /// The canonical residues.
    pub fn residues(&self) -> &[u8] {
        &self.residues
    }

    /// Number of residues.
    pub fn len(&self) -> usize {
        self.residues.len()
    }

    /// True if the sequence has no residues.
    pub fn is_empty(&self) -> bool {
        self.residues.is_empty()
    }

    /// The residues reversed — used by divide-and-conquer (Hirschberg)
    /// backward passes.
    pub fn reversed(&self) -> Seq {
        let mut residues = self.residues.clone();
        residues.reverse();
        Seq {
            id: format!("{}-rev", self.id),
            description: self.description.clone(),
            alphabet: self.alphabet,
            residues,
        }
    }

    /// A sub-sequence `[start, end)` (panics on out-of-range, like slicing).
    pub fn slice(&self, start: usize, end: usize) -> Seq {
        Seq {
            id: format!("{}[{start}..{end}]", self.id),
            description: None,
            alphabet: self.alphabet,
            residues: self.residues[start..end].to_vec(),
        }
    }

    /// Residues as a `&str` (always valid ASCII by construction).
    pub fn as_str(&self) -> &str {
        // Residues are validated ASCII letters, so this cannot fail.
        std::str::from_utf8(&self.residues).expect("residues are ASCII")
    }

    /// Fraction of positions at which `self` and `other` hold identical
    /// residues, over the shorter length; a rough similarity proxy used by
    /// tests and the workload generator.
    pub fn identity_with(&self, other: &Seq) -> f64 {
        let n = self.len().min(other.len());
        if n == 0 {
            return 0.0;
        }
        let same = self
            .residues
            .iter()
            .zip(&other.residues)
            .filter(|(a, b)| a == b)
            .count();
        same as f64 / n as f64
    }
}

impl fmt::Display for Seq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ">{}", self.id)?;
        if let Some(d) = &self.description {
            write!(f, " {d}")?;
        }
        writeln!(f)?;
        write!(f, "{}", self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_canonicalizes() {
        let s = Seq::dna("acGt").unwrap();
        assert_eq!(s.residues(), b"ACGT");
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.alphabet(), Alphabet::Dna);
    }

    #[test]
    fn construction_rejects_bad_residue() {
        let err = Seq::dna("ACZT").unwrap_err();
        assert!(matches!(err, SeqError::InvalidResidue { byte: b'Z', .. }));
    }

    #[test]
    fn empty_is_allowed() {
        let s = Seq::protein("").unwrap();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn id_and_description() {
        let s = Seq::new("chr1", Alphabet::Dna, b"ACGT".to_vec())
            .unwrap()
            .with_description("test contig");
        assert_eq!(s.id(), "chr1");
        assert_eq!(s.description(), Some("test contig"));
        let s = s.with_id("chr2");
        assert_eq!(s.id(), "chr2");
    }

    #[test]
    fn reversed_reverses() {
        let s = Seq::dna("ACGT").unwrap();
        let r = s.reversed();
        assert_eq!(r.residues(), b"TGCA");
        assert_eq!(r.reversed().residues(), s.residues());
    }

    #[test]
    fn slice_takes_half_open_range() {
        let s = Seq::dna("ACGTAC").unwrap();
        assert_eq!(s.slice(1, 4).residues(), b"CGT");
        assert_eq!(s.slice(0, 0).residues(), b"");
        assert_eq!(s.slice(0, 6).residues(), s.residues());
    }

    #[test]
    #[should_panic]
    fn slice_out_of_range_panics() {
        let s = Seq::dna("ACGT").unwrap();
        let _ = s.slice(2, 9);
    }

    #[test]
    fn identity_fraction() {
        let a = Seq::dna("ACGT").unwrap();
        let b = Seq::dna("ACGA").unwrap();
        assert!((a.identity_with(&b) - 0.75).abs() < 1e-12);
        assert!((a.identity_with(&a) - 1.0).abs() < 1e-12);
        let empty = Seq::dna("").unwrap();
        assert_eq!(empty.identity_with(&a), 0.0);
    }

    #[test]
    fn display_is_fasta_like() {
        let s = Seq::new("id1", Alphabet::Dna, b"ACGT".to_vec())
            .unwrap()
            .with_description("desc");
        assert_eq!(s.to_string(), ">id1 desc\nACGT");
    }

    #[test]
    fn as_str_matches_bytes() {
        let s = Seq::protein("MKWV").unwrap();
        assert_eq!(s.as_str(), "MKWV");
    }
}
