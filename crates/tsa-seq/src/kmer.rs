//! K-mer indexing: the seeding substrate for anchored alignment.
//!
//! A [`KmerIndex`] maps every length-`k` substring of a sequence to its
//! start positions. Exact three-way seed matches (k-mers present in all
//! three inputs) become the *anchors* the anchored aligner chains; see
//! `tsa-core::anchored`.

use crate::Seq;
use std::collections::HashMap;

/// An index of all k-mers of one sequence.
#[derive(Debug, Clone)]
pub struct KmerIndex {
    k: usize,
    map: HashMap<Vec<u8>, Vec<usize>>,
}

impl KmerIndex {
    /// Index every k-mer of `seq` (positions in residue coordinates).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn build(seq: &Seq, k: usize) -> Self {
        assert!(k > 0, "k-mer length must be positive");
        let mut map: HashMap<Vec<u8>, Vec<usize>> = HashMap::new();
        let residues = seq.residues();
        if residues.len() >= k {
            for start in 0..=residues.len() - k {
                map.entry(residues[start..start + k].to_vec())
                    .or_default()
                    .push(start);
            }
        }
        KmerIndex { k, map }
    }

    /// The indexed k-mer length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of distinct k-mers.
    pub fn distinct(&self) -> usize {
        self.map.len()
    }

    /// Positions at which `kmer` occurs (empty if absent or wrong length).
    pub fn positions(&self, kmer: &[u8]) -> &[usize] {
        self.map.get(kmer).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterate `(kmer, positions)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &[usize])> {
        self.map.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))
    }
}

/// All `(pos_a, pos_b, pos_c)` triples at which the same k-mer starts in
/// all three sequences. K-mers occurring more than `max_occurrences`
/// times in any one sequence are skipped (low-complexity repeats would
/// otherwise explode the product).
pub fn shared_kmers(
    a: &Seq,
    b: &Seq,
    c: &Seq,
    k: usize,
    max_occurrences: usize,
) -> Vec<(usize, usize, usize)> {
    let ia = KmerIndex::build(a, k);
    let ib = KmerIndex::build(b, k);
    let ic = KmerIndex::build(c, k);
    let mut out = Vec::new();
    for (kmer, pa) in ia.iter() {
        if pa.len() > max_occurrences {
            continue;
        }
        let pb = ib.positions(kmer);
        if pb.is_empty() || pb.len() > max_occurrences {
            continue;
        }
        let pc = ic.positions(kmer);
        if pc.is_empty() || pc.len() > max_occurrences {
            continue;
        }
        for &x in pa {
            for &y in pb {
                for &z in pc {
                    out.push((x, y, z));
                }
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_counts_positions() {
        let s = Seq::dna("ACGACGA").unwrap();
        let idx = KmerIndex::build(&s, 3);
        assert_eq!(idx.k(), 3);
        assert_eq!(idx.positions(b"ACG"), &[0, 3]);
        assert_eq!(idx.positions(b"CGA"), &[1, 4]);
        assert_eq!(idx.positions(b"TTT"), &[] as &[usize]);
        // 5 windows, distinct: ACG, CGA, GAC, ACG(dup), CGA(dup) → 3.
        assert_eq!(idx.distinct(), 3);
    }

    #[test]
    fn short_sequence_has_no_kmers() {
        let s = Seq::dna("AC").unwrap();
        let idx = KmerIndex::build(&s, 3);
        assert_eq!(idx.distinct(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_panics() {
        let s = Seq::dna("ACGT").unwrap();
        let _ = KmerIndex::build(&s, 0);
    }

    #[test]
    fn shared_kmers_finds_common_seed() {
        let a = Seq::dna("TTGATTACA").unwrap();
        let b = Seq::dna("CCGATTACACC").unwrap();
        let c = Seq::dna("GATTACAGG").unwrap();
        let shared = shared_kmers(&a, &b, &c, 7, 4);
        assert!(shared.contains(&(2, 2, 0)), "{shared:?}");
    }

    #[test]
    fn repeat_cap_suppresses_low_complexity() {
        let a = Seq::dna("AAAAAAAAAA").unwrap();
        let uncapped = shared_kmers(&a, &a, &a, 3, 100);
        assert_eq!(uncapped.len(), 8 * 8 * 8);
        let capped = shared_kmers(&a, &a, &a, 3, 4);
        assert!(capped.is_empty());
    }

    #[test]
    fn no_shared_kmers_between_disjoint_sequences() {
        let a = Seq::dna("AAAA").unwrap();
        let b = Seq::dna("CCCC").unwrap();
        let c = Seq::dna("GGGG").unwrap();
        assert!(shared_kmers(&a, &b, &c, 2, 10).is_empty());
    }

    #[test]
    fn output_is_sorted() {
        let a = Seq::dna("ACGTACGT").unwrap();
        let shared = shared_kmers(&a, &a, &a, 4, 10);
        let mut sorted = shared.clone();
        sorted.sort_unstable();
        assert_eq!(shared, sorted);
        assert!(!shared.is_empty());
    }
}
