//! Property tests for the sequence substrate.

use proptest::prelude::*;
use tsa_seq::family::FamilyConfig;
use tsa_seq::mutate::MutationModel;
use tsa_seq::{fasta, Alphabet, Seq};

fn dna_residues(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop::sample::select(vec![b'A', b'C', b'G', b'T']),
        0..=max_len,
    )
}

fn id_string() -> impl Strategy<Value = String> {
    "[A-Za-z0-9_.:-]{1,12}"
}

proptest! {
    #[test]
    fn fasta_round_trips(
        records in prop::collection::vec((id_string(), dna_residues(50)), 1..5),
        width in 0usize..80,
    ) {
        let seqs: Vec<Seq> = records
            .iter()
            .map(|(id, res)| Seq::new(id.clone(), Alphabet::Dna, res.clone()).unwrap())
            .collect();
        let text = fasta::emit(&seqs, width);
        let parsed = fasta::parse(&text, Alphabet::Dna).unwrap();
        prop_assert_eq!(parsed, seqs);
    }

    #[test]
    fn reverse_is_an_involution(res in dna_residues(64)) {
        let s = Seq::dna(&res).unwrap();
        let twice = s.reversed().reversed();
        prop_assert_eq!(twice.residues(), s.residues());
    }

    #[test]
    fn slices_partition_the_sequence(res in dna_residues(64), cut_frac in 0.0f64..=1.0) {
        let s = Seq::dna(&res).unwrap();
        let cut = (s.len() as f64 * cut_frac) as usize;
        let left = s.slice(0, cut);
        let right = s.slice(cut, s.len());
        let mut joined = left.residues().to_vec();
        joined.extend_from_slice(right.residues());
        prop_assert_eq!(joined.as_slice(), s.residues());
    }

    #[test]
    fn identity_is_symmetric_and_bounded(x in dna_residues(40), y in dna_residues(40)) {
        let a = Seq::dna(&x).unwrap();
        let b = Seq::dna(&y).unwrap();
        let ab = a.identity_with(&b);
        prop_assert!((ab - b.identity_with(&a)).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn mutation_keeps_alphabet_and_roughly_keeps_length(
        res in dna_residues(200),
        sub in 0.0f64..=0.5,
        seed in 0u64..1000,
    ) {
        use rand::SeedableRng;
        let ancestor = Seq::dna(&res).unwrap();
        let model = MutationModel::new(sub, 0.05, 0.05).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let d = model.apply(&ancestor, &mut rng);
        prop_assert!(Alphabet::Dna.validate(d.residues()).is_ok());
        // Symmetric indels: length stays within generous bounds.
        prop_assert!(d.len() <= 2 * ancestor.len() + 5);
    }

    #[test]
    fn families_are_seed_deterministic(len in 1usize..60, seed in 0u64..500) {
        let cfg = FamilyConfig::new(len, 0.2, 0.05);
        let f1 = cfg.generate(seed);
        let f2 = cfg.generate(seed);
        for (a, b) in f1.members.iter().zip(&f2.members) {
            prop_assert_eq!(a.residues(), b.residues());
        }
    }

    #[test]
    fn parse_auto_never_panics_on_arbitrary_text(text in ".{0,200}") {
        let _ = fasta::parse_auto(&text);
    }
}
