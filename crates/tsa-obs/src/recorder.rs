//! The always-on flight recorder: a bounded ring of *completed* trace
//! trees, fed span-by-span as a [`SpanSink`].
//!
//! Spans with a nonzero `trace_id` are buffered per trace until the
//! trace's root span (the one with no parent) arrives — drop-guard
//! ordering guarantees the root records last within a process — at
//! which point a retention decision is made for the whole tree:
//!
//! * **Notable traces are always retained**: any span carrying an
//!   error/panic/rejection/shed annotation, a retry/hedge/resubmit
//!   attempt, a `hedge_loser` mark, a cancellation or deadline field,
//!   or a non-`done` outcome.
//! * **Slow traces are always retained**: root duration ≥ the
//!   configured `slow_us` threshold (0 disables the slow trigger).
//! * **Everything else is sampled**: one in `sample_one_in` clean
//!   traces is kept (deterministically, by trace id), the rest are
//!   counted and dropped.
//!
//! Both the pending buffer and the completed ring are bounded by
//! `capacity`, so memory stays flat under a flood of any size; the ring
//! evicts oldest-first.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

use crate::trace::{SpanRecord, SpanSink};

/// Field keys/values that make a whole trace worth keeping verbatim.
fn span_notable(span: &StitchSpan) -> bool {
    span.fields.iter().any(|(k, v)| match k.as_str() {
        "error" | "panic" | "rejected" | "shed" | "hedge_loser" | "cancelled_at"
        | "deadline_at" => true,
        "kind" => matches!(v.as_str(), "retry" | "hedge" | "resubmit" | "rehash"),
        "outcome" | "status" => v != "done",
        _ => false,
    })
}

/// Sizing and retention policy for a [`FlightRecorder`].
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Completed trace trees retained (and pending traces buffered).
    pub capacity: usize,
    /// Root spans at least this long are always retained; 0 disables
    /// the slow trigger.
    pub slow_us: u64,
    /// Keep one in this many *clean* traces (deterministic by trace
    /// id); ≤ 1 keeps every one.
    pub sample_one_in: u64,
}

impl Default for RecorderConfig {
    fn default() -> RecorderConfig {
        RecorderConfig {
            capacity: 256,
            slow_us: 0,
            sample_one_in: 1,
        }
    }
}

/// One span of a (possibly cross-process) stitched trace tree. Unlike
/// [`SpanRecord`] the name and field values are owned strings, so spans
/// parsed back off the wire and locally recorded ones mix freely.
#[derive(Debug, Clone, PartialEq)]
pub struct StitchSpan {
    /// Which cluster shard recorded the span; `None` = the coordinator
    /// (or a standalone server).
    pub shard: Option<u64>,
    /// Span id, unique only within its recording process.
    pub id: u64,
    /// Parent span id — resolved first within the same shard, then
    /// against the coordinator's id space (cross-process parenting).
    pub parent: Option<u64>,
    /// Stage name (`"job"`, `"kernel"`, `"attempt"`, …).
    pub name: String,
    /// Start, microseconds since the recording process's epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Fields, stringified, in annotation order.
    pub fields: Vec<(String, String)>,
}

impl StitchSpan {
    /// Convert a locally recorded span (no shard tag).
    pub fn from_record(rec: &SpanRecord) -> StitchSpan {
        StitchSpan {
            shard: None,
            id: rec.id,
            parent: rec.parent,
            name: rec.name.to_string(),
            start_us: rec.start_us,
            dur_us: rec.dur_us,
            fields: rec
                .fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// Value of the first field named `key`, if present.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A completed trace: every span that arrived before (and including)
/// the root.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceTree {
    /// The distributed trace id.
    pub trace_id: u64,
    /// True when retained for cause (error/overload/slow) rather than
    /// by sampling.
    pub notable: bool,
    /// Spans in arrival order (children before their parents).
    pub spans: Vec<StitchSpan>,
}

/// Live counters describing what the recorder has seen and kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecorderStats {
    /// Traces whose root span arrived.
    pub completed: u64,
    /// Traces admitted to the ring (notable, slow, or sampled in).
    pub retained: u64,
    /// Clean traces dropped by sampling.
    pub sampled_out: u64,
    /// Traces pushed out of the ring or the pending buffer by bound.
    pub evicted: u64,
    /// Traces currently buffered awaiting their root span.
    pub pending: u64,
    /// Traces currently stored in the ring.
    pub stored: u64,
}

#[derive(Debug)]
struct Inner {
    pending: HashMap<u64, Vec<StitchSpan>>,
    pending_order: VecDeque<u64>,
    done: VecDeque<TraceTree>,
    completed: u64,
    retained: u64,
    sampled_out: u64,
    evicted: u64,
}

/// The bounded trace-tree ring. Install it as (part of) a tracer's
/// sink; query with [`FlightRecorder::get`] / [`FlightRecorder::recent`].
#[derive(Debug)]
pub struct FlightRecorder {
    config: RecorderConfig,
    inner: Mutex<Inner>,
}

impl FlightRecorder {
    /// A recorder with the given policy (capacity is floored at 1).
    pub fn new(mut config: RecorderConfig) -> FlightRecorder {
        config.capacity = config.capacity.max(1);
        FlightRecorder {
            config,
            inner: Mutex::new(Inner {
                pending: HashMap::new(),
                pending_order: VecDeque::new(),
                done: VecDeque::new(),
                completed: 0,
                retained: 0,
                sampled_out: 0,
                evicted: 0,
            }),
        }
    }

    /// The retained tree for `trace_id`, newest match first.
    pub fn get(&self, trace_id: u64) -> Option<TraceTree> {
        let inner = self.inner.lock().unwrap();
        inner
            .done
            .iter()
            .rev()
            .find(|t| t.trace_id == trace_id)
            .cloned()
    }

    /// Up to `limit` notable (slow/failed/overloaded) traces, newest
    /// first.
    pub fn recent(&self, limit: usize) -> Vec<TraceTree> {
        let inner = self.inner.lock().unwrap();
        inner
            .done
            .iter()
            .rev()
            .filter(|t| t.notable)
            .take(limit)
            .cloned()
            .collect()
    }

    /// Every retained trace, newest first. The SIGUSR1 dump path.
    pub fn all(&self) -> Vec<TraceTree> {
        let inner = self.inner.lock().unwrap();
        inner.done.iter().rev().cloned().collect()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RecorderStats {
        let inner = self.inner.lock().unwrap();
        RecorderStats {
            completed: inner.completed,
            retained: inner.retained,
            sampled_out: inner.sampled_out,
            evicted: inner.evicted,
            pending: inner.pending.len() as u64,
            stored: inner.done.len() as u64,
        }
    }

    /// Every retained trace rendered as a text tree, newest first,
    /// separated by blank lines.
    pub fn dump_text(&self) -> String {
        let mut out = String::new();
        for tree in self.all() {
            out.push_str(&render_tree(&tree));
            out.push('\n');
        }
        out
    }

    fn sampled_in(&self, trace_id: u64) -> bool {
        self.config.sample_one_in <= 1 || trace_id % self.config.sample_one_in == 0
    }
}

impl SpanSink for FlightRecorder {
    fn record(&self, rec: &SpanRecord) {
        if rec.trace_id == 0 {
            return;
        }
        let span = StitchSpan::from_record(rec);
        // A propagated root (remote parent) completes its process-local
        // subtree: the worker's recorder must not wait for a coordinator
        // span that will never arrive here.
        let is_root = rec.parent.is_none() || rec.remote_parent;
        let mut inner = self.inner.lock().unwrap();
        match inner.pending.entry(rec.trace_id) {
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(span),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(vec![span]);
                inner.pending_order.push_back(rec.trace_id);
            }
        }
        if is_root {
            let spans = inner.pending.remove(&rec.trace_id).unwrap_or_default();
            inner.pending_order.retain(|t| *t != rec.trace_id);
            inner.completed += 1;
            let notable = spans.iter().any(span_notable);
            let slow = self.config.slow_us > 0 && rec.dur_us >= self.config.slow_us;
            if !(notable || slow || self.sampled_in(rec.trace_id)) {
                inner.sampled_out += 1;
                return;
            }
            inner.retained += 1;
            inner.done.push_back(TraceTree {
                trace_id: rec.trace_id,
                notable: notable || slow,
                spans,
            });
            if inner.done.len() > self.config.capacity {
                inner.done.pop_front();
                inner.evicted += 1;
            }
        } else if inner.pending.len() > self.config.capacity {
            // A rootless flood (leaked or out-of-order spans) cannot
            // grow the buffer: the oldest incomplete trace goes.
            if let Some(oldest) = inner.pending_order.pop_front() {
                inner.pending.remove(&oldest);
                inner.evicted += 1;
            }
        }
    }
}

/// Render one stitched tree as indented text, cross-process parents
/// resolved shard-first then coordinator:
///
/// ```text
/// trace 00000000000000ab
///   submit#1 1200us tag=j1
///     attempt#2 900us kind=primary shard=0
///       job#1 850us [shard 0] outcome=done
///         kernel#3 700us [shard 0] algorithm=wavefront
/// ```
pub fn render_tree(tree: &TraceTree) -> String {
    // Parent resolution leans on the drop-order invariant: a real
    // parent always records *after* its children, so within a shard a
    // parent id must appear later in arrival order. A worker root whose
    // propagated parent id happens to collide with a local span id is
    // therefore still stitched under the coordinator span, not the
    // colliding local one (which already ended).
    let mut children: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in tree.spans.iter().enumerate() {
        let parent_idx = s.parent.and_then(|p| {
            let same_shard_later = tree
                .spans
                .iter()
                .enumerate()
                .skip(i + 1)
                .find(|(_, c)| c.shard == s.shard && c.id == p)
                .map(|(j, _)| j);
            same_shard_later.or_else(|| {
                // Cross-process: a sharded span's parent lives in the
                // coordinator's id space.
                s.shard.and_then(|_| {
                    tree.spans
                        .iter()
                        .position(|c| c.shard.is_none() && c.id == p)
                })
            })
        });
        match parent_idx {
            Some(j) => children.entry(j).or_default().push(i),
            None => roots.push(i),
        }
    }
    let by_start = |a: &usize, b: &usize| {
        let (sa, sb) = (&tree.spans[*a], &tree.spans[*b]);
        sa.start_us.cmp(&sb.start_us).then(sa.id.cmp(&sb.id))
    };
    roots.sort_by(by_start);
    for v in children.values_mut() {
        v.sort_by(by_start);
    }
    let mut out = format!("trace {:016x}\n", tree.trace_id);
    let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 1)).collect();
    while let Some((i, depth)) = stack.pop() {
        let s = &tree.spans[i];
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!("{}#{} {}us", s.name, s.id, s.dur_us));
        if let Some(shard) = s.shard {
            out.push_str(&format!(" [shard {shard}]"));
        }
        for (k, v) in &s.fields {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        if let Some(kids) = children.get(&i) {
            for &k in kids.iter().rev() {
                stack.push((k, depth + 1));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceContext, Tracer};
    use std::sync::Arc;

    fn recorder(config: RecorderConfig) -> (Tracer, Arc<FlightRecorder>) {
        let rec = Arc::new(FlightRecorder::new(config));
        (Tracer::new(rec.clone()), rec)
    }

    fn ctx(trace_id: u64) -> TraceContext {
        TraceContext {
            trace_id,
            parent_span: 0,
        }
    }

    #[test]
    fn completes_a_trace_when_its_root_records() {
        let (tracer, rec) = recorder(RecorderConfig::default());
        {
            let root = tracer.span_in("job", ctx(5)).with("tag", "j1");
            root.child("kernel").end();
            assert_eq!(rec.stats().pending, 1, "kernel buffered, root still open");
        }
        let stats = rec.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.retained, 1);
        assert_eq!(stats.pending, 0);
        let tree = rec.get(5).expect("retained");
        let names: Vec<_> = tree.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["kernel", "job"]);
        assert!(!tree.notable);
    }

    #[test]
    fn untraced_spans_are_ignored() {
        let (tracer, rec) = recorder(RecorderConfig::default());
        tracer.span("job").end();
        assert_eq!(rec.stats().completed, 0);
        assert_eq!(rec.stats().pending, 0);
    }

    #[test]
    fn notable_traces_survive_sampling() {
        let (tracer, rec) = recorder(RecorderConfig {
            sample_one_in: u64::MAX, // sample every clean trace out
            ..RecorderConfig::default()
        });
        tracer.span_in("job", ctx(10)).end(); // clean → sampled out
        tracer
            .span_in("job", ctx(11))
            .with("outcome", "failed")
            .end();
        tracer
            .span_in("submit", ctx(12))
            .with("shed", "breakers open")
            .end();
        {
            let root = tracer.span_in("submit", ctx(13));
            root.child("attempt").with("kind", "retry").end();
        }
        tracer
            .span_in("submit", ctx(14))
            .with("hedge_loser", true)
            .end();
        tracer.span_in("job", ctx(15)).with("outcome", "done").end(); // clean
        let stats = rec.stats();
        assert_eq!(stats.completed, 6);
        assert_eq!(stats.retained, 4);
        assert_eq!(stats.sampled_out, 2);
        for id in [11, 12, 13, 14] {
            assert!(rec.get(id).is_some_and(|t| t.notable), "trace {id}");
        }
        assert!(rec.get(10).is_none());
        assert!(rec.get(15).is_none());
        let recent: Vec<u64> = rec.recent(10).iter().map(|t| t.trace_id).collect();
        assert_eq!(recent, vec![14, 13, 12, 11], "newest first, notable only");
    }

    #[test]
    fn slow_threshold_marks_traces_notable() {
        let rec = FlightRecorder::new(RecorderConfig {
            slow_us: 100,
            sample_one_in: u64::MAX,
            ..RecorderConfig::default()
        });
        let span = |trace_id, dur_us| SpanRecord {
            id: 1,
            trace_id,
            parent: None,
            remote_parent: false,
            name: "job",
            start_us: 0,
            dur_us,
            fields: Vec::new(),
        };
        rec.record(&span(1, 50)); // fast and clean → dropped
        rec.record(&span(2, 150)); // slow → kept
        assert!(rec.get(1).is_none());
        assert!(rec.get(2).is_some_and(|t| t.notable));
    }

    #[test]
    fn memory_stays_bounded_under_a_ten_thousand_job_flood() {
        let (tracer, rec) = recorder(RecorderConfig {
            capacity: 64,
            ..RecorderConfig::default()
        });
        for i in 1..=10_000u64 {
            let root = tracer.span_in("job", ctx(i)).with("outcome", "failed");
            root.child("kernel").end();
        }
        let stats = rec.stats();
        assert_eq!(stats.completed, 10_000);
        assert_eq!(stats.stored, 64, "ring bounded at capacity");
        assert_eq!(stats.pending, 0);
        assert_eq!(stats.evicted, 10_000 - 64);
        assert_eq!(rec.all().len(), 64);
        // Newest flood entries survived.
        assert!(rec.get(10_000).is_some());
        assert!(rec.get(1).is_none());
        assert_eq!(tracer.open_spans(), 0, "no leaked spans");
    }

    #[test]
    fn rootless_spans_cannot_grow_the_pending_buffer() {
        let rec = FlightRecorder::new(RecorderConfig {
            capacity: 8,
            ..RecorderConfig::default()
        });
        for i in 1..=1000u64 {
            rec.record(&SpanRecord {
                id: 2,
                trace_id: i,
                parent: Some(1), // root never arrives
                remote_parent: false,
                name: "kernel",
                start_us: 0,
                dur_us: 1,
                fields: Vec::new(),
            });
        }
        let stats = rec.stats();
        assert!(stats.pending <= 9, "pending bounded, saw {}", stats.pending);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn render_tree_stitches_across_id_spaces() {
        // Coordinator spans (shard None) and a worker subtree (shard 0)
        // whose ids collide with coordinator ids.
        let mk = |shard, id, parent, name: &str, start_us| StitchSpan {
            shard,
            id,
            parent,
            name: name.to_string(),
            start_us,
            dur_us: 10,
            fields: Vec::new(),
        };
        // Arrival order: children before parents, worker spans appended
        // after the coordinator's own (the stitch order).
        let tree = TraceTree {
            trace_id: 0xAB,
            notable: false,
            spans: vec![
                mk(None, 2, Some(1), "attempt", 1),
                mk(None, 1, None, "submit", 0),
                // Worker root parents under coordinator span 2 even
                // though the worker also has a span id 2 of its own —
                // a same-shard parent must record *later*, and the
                // worker's kernel#2 recorded earlier.
                mk(Some(0), 2, Some(1), "kernel", 1),
                mk(Some(0), 1, Some(2), "job", 0),
                mk(Some(7), 9, Some(999), "orphan", 5),
            ],
        };
        let text = render_tree(&tree);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "trace 00000000000000ab");
        assert_eq!(lines[1], "  submit#1 10us");
        assert_eq!(lines[2], "    attempt#2 10us");
        assert_eq!(lines[3], "      job#1 10us [shard 0]");
        assert_eq!(lines[4], "        kernel#2 10us [shard 0]");
        assert_eq!(
            lines[5], "  orphan#9 10us [shard 7]",
            "unresolvable parents float to the top"
        );
    }
}
