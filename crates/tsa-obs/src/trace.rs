//! Structured tracing: spans with ids, parents, and typed fields,
//! recorded to a pluggable sink when they end.
//!
//! The central invariant is that **a span always records exactly once**,
//! however its scope exits: `Drop` performs the recording, so a span
//! held across a `panic!` still lands in the sink as the stack unwinds.
//! The service relies on this to emit complete span trees for jobs that
//! panic, miss deadlines, or are cancelled. [`Tracer::open_spans`]
//! exposes the live-span balance so tests can assert none leaked.

use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A propagated trace identity: which distributed trace a span belongs
/// to and which remote span is its parent. Crosses process boundaries
/// as a single string field (`"<trace_id as 16 hex digits>:<parent
/// span id>"`), so any NDJSON line can carry it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace identity, minted once per logical submission. Never 0 in
    /// a valid context — 0 is the in-band "untraced" marker.
    pub trace_id: u64,
    /// Span id (in the *sender's* id space) the receiver should parent
    /// its root span under. 0 means "no parent": the receiver's root
    /// is the trace root.
    pub parent_span: u64,
}

impl TraceContext {
    /// The wire form: 16 lowercase hex digits, a colon, and the parent
    /// span id in decimal.
    pub fn render(&self) -> String {
        format!("{:016x}:{}", self.trace_id, self.parent_span)
    }

    /// Parse the wire form. `None` for malformed input or a zero
    /// trace id.
    pub fn parse(s: &str) -> Option<TraceContext> {
        let (hex, parent) = s.split_once(':')?;
        let trace_id = u64::from_str_radix(hex, 16).ok()?;
        let parent_span = parent.parse::<u64>().ok()?;
        if trace_id == 0 {
            return None;
        }
        Some(TraceContext {
            trace_id,
            parent_span,
        })
    }
}

/// A typed span field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Free-form text.
    Str(String),
    /// Unsigned quantity (ids, counts, microseconds).
    U64(u64),
    /// Signed quantity.
    I64(i64),
    /// Flag.
    Bool(bool),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::Str(s) => f.write_str(s),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl FieldValue {
    fn to_json(&self) -> String {
        match self {
            FieldValue::Str(s) => format!("\"{}\"", crate::json_escape(s)),
            FieldValue::U64(v) => v.to_string(),
            FieldValue::I64(v) => v.to_string(),
            FieldValue::Bool(v) => v.to_string(),
        }
    }
}

impl From<&str> for FieldValue {
    fn from(s: &str) -> Self {
        FieldValue::Str(s.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(s: String) -> Self {
        FieldValue::Str(s)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// A finished span, as delivered to a [`SpanSink`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Tracer-unique span id (monotonic, starts at 1).
    pub id: u64,
    /// Distributed trace this span belongs to; 0 = untraced.
    pub trace_id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// True when `parent` names a span in *another process* (a
    /// propagated [`TraceContext`]): this span is the local root of its
    /// process's subtree even though it has a parent.
    pub remote_parent: bool,
    /// Static stage name (e.g. `"job"`, `"kernel"`).
    pub name: &'static str,
    /// Start time in microseconds since the tracer's epoch.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
    /// Fields and annotations, in the order they were attached.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl SpanRecord {
    /// Value of the first field named `key`, if present.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Where finished spans go. Implementations must tolerate concurrent
/// calls from many threads.
pub trait SpanSink: Send + Sync {
    /// Deliver one finished span.
    fn record(&self, span: &SpanRecord);
}

struct TracerInner {
    epoch: Instant,
    next_id: AtomicU64,
    open: AtomicI64,
    sink: Arc<dyn SpanSink>,
}

/// Hands out spans and delivers them to its sink. Cheap to clone.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("open_spans", &self.open_spans())
            .finish()
    }
}

impl Tracer {
    /// A tracer delivering finished spans to `sink`.
    pub fn new(sink: Arc<dyn SpanSink>) -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                open: AtomicI64::new(0),
                sink,
            }),
        }
    }

    /// Start a root span. It records to the sink when dropped.
    pub fn span(&self, name: &'static str) -> Span {
        self.start_span(name, None, 0)
    }

    /// Start a root span under a propagated [`TraceContext`]: the span
    /// carries the context's trace id, and its parent is the remote
    /// span named by `ctx.parent_span` (none when 0). This is how a
    /// worker parents its `job` tree under the coordinator's attempt
    /// span.
    pub fn span_in(&self, name: &'static str, ctx: TraceContext) -> Span {
        let parent = (ctx.parent_span != 0).then_some(ctx.parent_span);
        let mut span = self.start_span(name, parent, ctx.trace_id);
        span.remote_parent = span.parent.is_some();
        span
    }

    /// Start a span in an existing trace under a *local* parent span
    /// id. Unlike [`Tracer::span_in`] the parent lives in this process,
    /// so a [`crate::FlightRecorder`] buffers the span rather than
    /// treating it as a subtree root. This is how the coordinator opens
    /// fresh `attempt` spans under a submission's long-lived root.
    pub fn span_under(&self, name: &'static str, trace_id: u64, parent: u64) -> Span {
        self.start_span(name, Some(parent), trace_id)
    }

    /// Mint a fresh, never-zero trace id: wall-clock nanoseconds mixed
    /// (FNV-1a) with the pid and a per-tracer counter, so concurrent
    /// tracers and rapid submissions cannot collide in practice.
    pub fn mint_trace_id(&self) -> u64 {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let seq = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for word in [nanos, std::process::id() as u64, seq] {
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h.max(1)
    }

    /// Number of spans started but not yet ended. Zero means every span
    /// tree emitted completely — the invariant the fault tests assert.
    pub fn open_spans(&self) -> i64 {
        self.inner.open.load(Ordering::Relaxed)
    }

    fn start_span(&self, name: &'static str, parent: Option<u64>, trace_id: u64) -> Span {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.inner.open.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        Span {
            tracer: self.clone(),
            id,
            trace_id,
            parent,
            remote_parent: false,
            name,
            start: now,
            start_us: now.duration_since(self.inner.epoch).as_micros() as u64,
            fields: Vec::new(),
        }
    }
}

/// An in-flight span. Ends — and records to the tracer's sink — when
/// dropped, including during panic unwinding.
pub struct Span {
    tracer: Tracer,
    id: u64,
    trace_id: u64,
    parent: Option<u64>,
    remote_parent: bool,
    name: &'static str,
    start: Instant,
    start_us: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Span")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("parent", &self.parent)
            .finish()
    }
}

impl Span {
    /// This span's tracer-unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The distributed trace this span belongs to; 0 = untraced.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// A context that parents remote work under this span: same trace
    /// id, `parent_span` = this span's id. `None` when untraced.
    pub fn context(&self) -> Option<TraceContext> {
        (self.trace_id != 0).then_some(TraceContext {
            trace_id: self.trace_id,
            parent_span: self.id,
        })
    }

    /// Start a child span. The child should end before its parent, but
    /// nothing breaks if it does not — records carry explicit parents.
    pub fn child(&self, name: &'static str) -> Span {
        self.tracer.start_span(name, Some(self.id), self.trace_id)
    }

    /// Attach a field. Keys may repeat; order is preserved.
    pub fn annotate(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        self.fields.push((key, value.into()));
    }

    /// Builder-style [`Span::annotate`].
    pub fn with(mut self, key: &'static str, value: impl Into<FieldValue>) -> Span {
        self.annotate(key, value);
        self
    }

    /// End the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        self.tracer.inner.open.fetch_sub(1, Ordering::Relaxed);
        let record = SpanRecord {
            id: self.id,
            trace_id: self.trace_id,
            parent: self.parent,
            remote_parent: self.remote_parent,
            name: self.name,
            start_us: self.start_us,
            dur_us: self.start.elapsed().as_micros() as u64,
            fields: std::mem::take(&mut self.fields),
        };
        self.tracer.inner.sink.record(&record);
    }
}

/// A bounded in-memory recorder: keeps the most recent `capacity`
/// finished spans. Doubles as the collector for tests.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: Mutex<VecDeque<SpanRecord>>,
}

impl RingSink {
    /// A ring buffer holding at most `capacity` spans (minimum 1).
    pub fn with_capacity(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::new()),
        }
    }

    /// Copy of the retained spans, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.buf.lock().unwrap().iter().cloned().collect()
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SpanSink for RingSink {
    fn record(&self, span: &SpanRecord) {
        let mut buf = self.buf.lock().unwrap();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(span.clone());
    }
}

/// Human-readable one-line-per-span sink.
///
/// ```text
/// [   1204us +355us] kernel#3 <-#1 algorithm=wavefront
/// ```
pub struct TextSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> TextSink<W> {
    /// Write spans as text lines to `writer`.
    pub fn new(writer: W) -> TextSink<W> {
        TextSink {
            writer: Mutex::new(writer),
        }
    }
}

impl<W: Write + Send> SpanSink for TextSink<W> {
    fn record(&self, span: &SpanRecord) {
        let mut line = format!(
            "[{:>8}us +{}us] {}#{}",
            span.start_us, span.dur_us, span.name, span.id
        );
        if let Some(parent) = span.parent {
            line.push_str(&format!(" <-#{parent}"));
        }
        if span.trace_id != 0 {
            line.push_str(&format!(" trace={:016x}", span.trace_id));
        }
        for (k, v) in &span.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        line.push('\n');
        let mut w = self.writer.lock().unwrap();
        let _ = w.write_all(line.as_bytes());
        let _ = w.flush();
    }
}

/// JSON-lines sink: one JSON object per finished span.
///
/// ```text
/// {"span":"kernel","id":3,"parent":1,"start_us":1204,"dur_us":355,"fields":{"algorithm":"wavefront"}}
/// ```
pub struct JsonSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonSink<W> {
    /// Write spans as JSON lines to `writer`.
    pub fn new(writer: W) -> JsonSink<W> {
        JsonSink {
            writer: Mutex::new(writer),
        }
    }
}

impl<W: Write + Send> SpanSink for JsonSink<W> {
    fn record(&self, span: &SpanRecord) {
        let mut line = format!(
            "{{\"span\":\"{}\",\"id\":{},\"parent\":{},\"start_us\":{},\"dur_us\":{}",
            crate::json_escape(span.name),
            span.id,
            span.parent
                .map_or_else(|| "null".to_string(), |p| p.to_string()),
            span.start_us,
            span.dur_us
        );
        if span.trace_id != 0 {
            line.push_str(&format!(",\"trace_id\":\"{:016x}\"", span.trace_id));
        }
        line.push_str(",\"fields\":{");
        for (i, (k, v)) in span.fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("\"{}\":{}", crate::json_escape(k), v.to_json()));
        }
        line.push_str("}}\n");
        let mut w = self.writer.lock().unwrap();
        let _ = w.write_all(line.as_bytes());
        let _ = w.flush();
    }
}

/// Fan a span out to several sinks.
pub struct MultiSink {
    sinks: Vec<Arc<dyn SpanSink>>,
}

impl MultiSink {
    /// A sink forwarding each record to every sink in `sinks`.
    pub fn new(sinks: Vec<Arc<dyn SpanSink>>) -> MultiSink {
        MultiSink { sinks }
    }
}

impl SpanSink for MultiSink {
    fn record(&self, span: &SpanRecord) {
        for sink in &self.sinks {
            sink.record(span);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collector() -> (Tracer, Arc<RingSink>) {
        let sink = Arc::new(RingSink::with_capacity(64));
        (Tracer::new(sink.clone()), sink)
    }

    #[test]
    fn spans_record_on_drop_with_parentage() {
        let (tracer, sink) = collector();
        {
            let mut root = tracer.span("job").with("tag", "t1");
            let child = root.child("kernel");
            assert_eq!(tracer.open_spans(), 2);
            drop(child);
            root.annotate("outcome", "done");
        }
        assert_eq!(tracer.open_spans(), 0);
        let spans = sink.snapshot();
        assert_eq!(spans.len(), 2);
        // Children end first.
        assert_eq!(spans[0].name, "kernel");
        assert_eq!(spans[0].parent, Some(spans[1].id));
        assert_eq!(spans[1].name, "job");
        assert_eq!(spans[1].parent, None);
        assert_eq!(spans[1].field("tag"), Some(&FieldValue::Str("t1".into())));
        assert_eq!(
            spans[1].field("outcome"),
            Some(&FieldValue::Str("done".into()))
        );
    }

    #[test]
    fn panicking_scope_still_records_its_spans() {
        let (tracer, sink) = collector();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let root = tracer.span("job");
            let _child = root.child("kernel");
            panic!("boom");
        }));
        assert!(result.is_err());
        assert_eq!(tracer.open_spans(), 0, "unwind closed every span");
        let names: Vec<_> = sink.snapshot().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["kernel", "job"]);
    }

    #[test]
    fn ring_sink_evicts_oldest() {
        let sink = Arc::new(RingSink::with_capacity(2));
        let tracer = Tracer::new(sink.clone());
        for _ in 0..3 {
            tracer.span("s").end();
        }
        assert_eq!(sink.len(), 2);
        let ids: Vec<_> = sink.snapshot().iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn text_sink_formats_lines() {
        let buf = Arc::new(Mutex::new(Vec::<u8>::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let tracer = Tracer::new(Arc::new(TextSink::new(Shared(buf.clone()))));
        let root = tracer.span("job").with("tag", "x");
        root.child("kernel").end();
        root.end();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("kernel#2 <-#1"));
        assert!(lines[1].contains("job#1"));
        assert!(lines[1].contains("tag=x"));
    }

    #[test]
    fn json_sink_emits_valid_shape() {
        let buf = Arc::new(Mutex::new(Vec::<u8>::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let tracer = Tracer::new(Arc::new(JsonSink::new(Shared(buf.clone()))));
        tracer
            .span("job")
            .with("tag", "a\"b")
            .with("cells", 42u64)
            .with("cached", true)
            .end();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(text.starts_with("{\"span\":\"job\",\"id\":1,\"parent\":null,"));
        assert!(text.contains("\"fields\":{\"tag\":\"a\\\"b\",\"cells\":42,\"cached\":true}"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn trace_context_round_trips_the_wire_form() {
        let ctx = TraceContext {
            trace_id: 0xDEAD_BEEF_0000_0001,
            parent_span: 42,
        };
        let wire = ctx.render();
        assert_eq!(wire, "deadbeef00000001:42");
        assert_eq!(TraceContext::parse(&wire), Some(ctx));
        assert_eq!(TraceContext::parse("nope"), None);
        assert_eq!(TraceContext::parse("0000000000000000:1"), None);
        assert_eq!(TraceContext::parse("zz:1"), None);
    }

    #[test]
    fn span_in_propagates_trace_id_and_remote_parent() {
        let (tracer, sink) = collector();
        let ctx = TraceContext {
            trace_id: 7,
            parent_span: 99,
        };
        {
            let root = tracer.span_in("job", ctx);
            assert_eq!(root.trace_id(), 7);
            let child = root.child("kernel");
            assert_eq!(child.trace_id(), 7, "children inherit the trace id");
            let down = root.context().expect("traced span has a context");
            assert_eq!(down.trace_id, 7);
            assert_eq!(down.parent_span, root.id());
        }
        let spans = sink.snapshot();
        assert!(spans.iter().all(|s| s.trace_id == 7));
        assert_eq!(
            spans[1].parent,
            Some(99),
            "root parents under the remote span"
        );
        // A rootless context (parent 0) yields a true root.
        let free = tracer.span_in(
            "job",
            TraceContext {
                trace_id: 8,
                parent_span: 0,
            },
        );
        assert!(free.context().is_some());
        drop(free);
        assert_eq!(sink.snapshot().last().unwrap().parent, None);
        // Untraced spans have no context.
        assert!(tracer.span("job").context().is_none());
    }

    #[test]
    fn minted_trace_ids_are_nonzero_and_distinct() {
        let (tracer, _) = collector();
        let a = tracer.mint_trace_id();
        let b = tracer.mint_trace_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn sinks_emit_trace_ids_only_when_traced() {
        let buf = Arc::new(Mutex::new(Vec::<u8>::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let tracer = Tracer::new(Arc::new(JsonSink::new(Shared(buf.clone()))));
        tracer.span("a").end();
        tracer
            .span_in(
                "b",
                TraceContext {
                    trace_id: 0xAB,
                    parent_span: 0,
                },
            )
            .end();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert!(!lines[0].contains("trace_id"));
        assert!(lines[1].contains("\"trace_id\":\"00000000000000ab\""));
    }

    #[test]
    fn multi_sink_fans_out() {
        let a = Arc::new(RingSink::with_capacity(4));
        let b = Arc::new(RingSink::with_capacity(4));
        let tracer = Tracer::new(Arc::new(MultiSink::new(vec![a.clone(), b.clone()])));
        tracer.span("s").end();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
