//! Structured tracing: spans with ids, parents, and typed fields,
//! recorded to a pluggable sink when they end.
//!
//! The central invariant is that **a span always records exactly once**,
//! however its scope exits: `Drop` performs the recording, so a span
//! held across a `panic!` still lands in the sink as the stack unwinds.
//! The service relies on this to emit complete span trees for jobs that
//! panic, miss deadlines, or are cancelled. [`Tracer::open_spans`]
//! exposes the live-span balance so tests can assert none leaked.

use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A typed span field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Free-form text.
    Str(String),
    /// Unsigned quantity (ids, counts, microseconds).
    U64(u64),
    /// Signed quantity.
    I64(i64),
    /// Flag.
    Bool(bool),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::Str(s) => f.write_str(s),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl FieldValue {
    fn to_json(&self) -> String {
        match self {
            FieldValue::Str(s) => format!("\"{}\"", crate::json_escape(s)),
            FieldValue::U64(v) => v.to_string(),
            FieldValue::I64(v) => v.to_string(),
            FieldValue::Bool(v) => v.to_string(),
        }
    }
}

impl From<&str> for FieldValue {
    fn from(s: &str) -> Self {
        FieldValue::Str(s.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(s: String) -> Self {
        FieldValue::Str(s)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// A finished span, as delivered to a [`SpanSink`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Tracer-unique span id (monotonic, starts at 1).
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Static stage name (e.g. `"job"`, `"kernel"`).
    pub name: &'static str,
    /// Start time in microseconds since the tracer's epoch.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
    /// Fields and annotations, in the order they were attached.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl SpanRecord {
    /// Value of the first field named `key`, if present.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Where finished spans go. Implementations must tolerate concurrent
/// calls from many threads.
pub trait SpanSink: Send + Sync {
    /// Deliver one finished span.
    fn record(&self, span: &SpanRecord);
}

struct TracerInner {
    epoch: Instant,
    next_id: AtomicU64,
    open: AtomicI64,
    sink: Arc<dyn SpanSink>,
}

/// Hands out spans and delivers them to its sink. Cheap to clone.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("open_spans", &self.open_spans())
            .finish()
    }
}

impl Tracer {
    /// A tracer delivering finished spans to `sink`.
    pub fn new(sink: Arc<dyn SpanSink>) -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                open: AtomicI64::new(0),
                sink,
            }),
        }
    }

    /// Start a root span. It records to the sink when dropped.
    pub fn span(&self, name: &'static str) -> Span {
        self.start_span(name, None)
    }

    /// Number of spans started but not yet ended. Zero means every span
    /// tree emitted completely — the invariant the fault tests assert.
    pub fn open_spans(&self) -> i64 {
        self.inner.open.load(Ordering::Relaxed)
    }

    fn start_span(&self, name: &'static str, parent: Option<u64>) -> Span {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.inner.open.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        Span {
            tracer: self.clone(),
            id,
            parent,
            name,
            start: now,
            start_us: now.duration_since(self.inner.epoch).as_micros() as u64,
            fields: Vec::new(),
        }
    }
}

/// An in-flight span. Ends — and records to the tracer's sink — when
/// dropped, including during panic unwinding.
pub struct Span {
    tracer: Tracer,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start: Instant,
    start_us: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Span")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("parent", &self.parent)
            .finish()
    }
}

impl Span {
    /// This span's tracer-unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Start a child span. The child should end before its parent, but
    /// nothing breaks if it does not — records carry explicit parents.
    pub fn child(&self, name: &'static str) -> Span {
        self.tracer.start_span(name, Some(self.id))
    }

    /// Attach a field. Keys may repeat; order is preserved.
    pub fn annotate(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        self.fields.push((key, value.into()));
    }

    /// Builder-style [`Span::annotate`].
    pub fn with(mut self, key: &'static str, value: impl Into<FieldValue>) -> Span {
        self.annotate(key, value);
        self
    }

    /// End the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        self.tracer.inner.open.fetch_sub(1, Ordering::Relaxed);
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name,
            start_us: self.start_us,
            dur_us: self.start.elapsed().as_micros() as u64,
            fields: std::mem::take(&mut self.fields),
        };
        self.tracer.inner.sink.record(&record);
    }
}

/// A bounded in-memory recorder: keeps the most recent `capacity`
/// finished spans. Doubles as the collector for tests.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: Mutex<VecDeque<SpanRecord>>,
}

impl RingSink {
    /// A ring buffer holding at most `capacity` spans (minimum 1).
    pub fn with_capacity(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::new()),
        }
    }

    /// Copy of the retained spans, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.buf.lock().unwrap().iter().cloned().collect()
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SpanSink for RingSink {
    fn record(&self, span: &SpanRecord) {
        let mut buf = self.buf.lock().unwrap();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(span.clone());
    }
}

/// Human-readable one-line-per-span sink.
///
/// ```text
/// [   1204us +355us] kernel#3 <-#1 algorithm=wavefront
/// ```
pub struct TextSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> TextSink<W> {
    /// Write spans as text lines to `writer`.
    pub fn new(writer: W) -> TextSink<W> {
        TextSink {
            writer: Mutex::new(writer),
        }
    }
}

impl<W: Write + Send> SpanSink for TextSink<W> {
    fn record(&self, span: &SpanRecord) {
        let mut line = format!(
            "[{:>8}us +{}us] {}#{}",
            span.start_us, span.dur_us, span.name, span.id
        );
        if let Some(parent) = span.parent {
            line.push_str(&format!(" <-#{parent}"));
        }
        for (k, v) in &span.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        line.push('\n');
        let mut w = self.writer.lock().unwrap();
        let _ = w.write_all(line.as_bytes());
        let _ = w.flush();
    }
}

/// JSON-lines sink: one JSON object per finished span.
///
/// ```text
/// {"span":"kernel","id":3,"parent":1,"start_us":1204,"dur_us":355,"fields":{"algorithm":"wavefront"}}
/// ```
pub struct JsonSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonSink<W> {
    /// Write spans as JSON lines to `writer`.
    pub fn new(writer: W) -> JsonSink<W> {
        JsonSink {
            writer: Mutex::new(writer),
        }
    }
}

impl<W: Write + Send> SpanSink for JsonSink<W> {
    fn record(&self, span: &SpanRecord) {
        let mut line = format!(
            "{{\"span\":\"{}\",\"id\":{},\"parent\":{},\"start_us\":{},\"dur_us\":{}",
            crate::json_escape(span.name),
            span.id,
            span.parent
                .map_or_else(|| "null".to_string(), |p| p.to_string()),
            span.start_us,
            span.dur_us
        );
        line.push_str(",\"fields\":{");
        for (i, (k, v)) in span.fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("\"{}\":{}", crate::json_escape(k), v.to_json()));
        }
        line.push_str("}}\n");
        let mut w = self.writer.lock().unwrap();
        let _ = w.write_all(line.as_bytes());
        let _ = w.flush();
    }
}

/// Fan a span out to several sinks.
pub struct MultiSink {
    sinks: Vec<Arc<dyn SpanSink>>,
}

impl MultiSink {
    /// A sink forwarding each record to every sink in `sinks`.
    pub fn new(sinks: Vec<Arc<dyn SpanSink>>) -> MultiSink {
        MultiSink { sinks }
    }
}

impl SpanSink for MultiSink {
    fn record(&self, span: &SpanRecord) {
        for sink in &self.sinks {
            sink.record(span);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collector() -> (Tracer, Arc<RingSink>) {
        let sink = Arc::new(RingSink::with_capacity(64));
        (Tracer::new(sink.clone()), sink)
    }

    #[test]
    fn spans_record_on_drop_with_parentage() {
        let (tracer, sink) = collector();
        {
            let mut root = tracer.span("job").with("tag", "t1");
            let child = root.child("kernel");
            assert_eq!(tracer.open_spans(), 2);
            drop(child);
            root.annotate("outcome", "done");
        }
        assert_eq!(tracer.open_spans(), 0);
        let spans = sink.snapshot();
        assert_eq!(spans.len(), 2);
        // Children end first.
        assert_eq!(spans[0].name, "kernel");
        assert_eq!(spans[0].parent, Some(spans[1].id));
        assert_eq!(spans[1].name, "job");
        assert_eq!(spans[1].parent, None);
        assert_eq!(spans[1].field("tag"), Some(&FieldValue::Str("t1".into())));
        assert_eq!(
            spans[1].field("outcome"),
            Some(&FieldValue::Str("done".into()))
        );
    }

    #[test]
    fn panicking_scope_still_records_its_spans() {
        let (tracer, sink) = collector();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let root = tracer.span("job");
            let _child = root.child("kernel");
            panic!("boom");
        }));
        assert!(result.is_err());
        assert_eq!(tracer.open_spans(), 0, "unwind closed every span");
        let names: Vec<_> = sink.snapshot().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["kernel", "job"]);
    }

    #[test]
    fn ring_sink_evicts_oldest() {
        let sink = Arc::new(RingSink::with_capacity(2));
        let tracer = Tracer::new(sink.clone());
        for _ in 0..3 {
            tracer.span("s").end();
        }
        assert_eq!(sink.len(), 2);
        let ids: Vec<_> = sink.snapshot().iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn text_sink_formats_lines() {
        let buf = Arc::new(Mutex::new(Vec::<u8>::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let tracer = Tracer::new(Arc::new(TextSink::new(Shared(buf.clone()))));
        let root = tracer.span("job").with("tag", "x");
        root.child("kernel").end();
        root.end();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("kernel#2 <-#1"));
        assert!(lines[1].contains("job#1"));
        assert!(lines[1].contains("tag=x"));
    }

    #[test]
    fn json_sink_emits_valid_shape() {
        let buf = Arc::new(Mutex::new(Vec::<u8>::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let tracer = Tracer::new(Arc::new(JsonSink::new(Shared(buf.clone()))));
        tracer
            .span("job")
            .with("tag", "a\"b")
            .with("cells", 42u64)
            .with("cached", true)
            .end();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(text.starts_with("{\"span\":\"job\",\"id\":1,\"parent\":null,"));
        assert!(text.contains("\"fields\":{\"tag\":\"a\\\"b\",\"cells\":42,\"cached\":true}"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn multi_sink_fans_out() {
        let a = Arc::new(RingSink::with_capacity(4));
        let b = Arc::new(RingSink::with_capacity(4));
        let tracer = Tracer::new(Arc::new(MultiSink::new(vec![a.clone(), b.clone()])));
        tracer.span("s").end();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
