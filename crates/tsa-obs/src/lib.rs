//! # tsa-obs — zero-dependency observability primitives
//!
//! The wavefront algorithm's value proposition is parallel efficiency,
//! and the service layer's is predictable behavior under load — both are
//! claims about *where time goes*. This crate provides the two
//! instruments the rest of the workspace uses to answer that question,
//! with no dependencies (not even the vendored stand-ins):
//!
//! * **[`trace`]** — a structured tracing facade: [`Tracer`] hands out
//!   [`Span`]s with ids, parents, and typed fields. Spans record
//!   themselves to a pluggable [`SpanSink`] when they end — including
//!   when they end by *drop during unwind*, so a panicking kernel still
//!   produces a complete span tree. Sinks included: an in-memory ring
//!   buffer ([`RingSink`]), a human-readable line writer
//!   ([`TextSink`]), and a JSON-lines writer ([`JsonSink`]).
//! * **[`metrics`]** — a [`Registry`] of named [`Counter`]s, [`Gauge`]s
//!   and power-of-two [`Histogram`]s, rendered on demand as
//!   Prometheus-style text exposition ([`Registry::expose`]).
//! * **[`recorder`]** — an always-on flight recorder: a bounded ring of
//!   completed distributed-trace trees ([`FlightRecorder`]) that always
//!   retains errors, sheds, retries, hedges, and slow requests, samples
//!   the rest, and renders stitched trees as text ([`render_tree`]).
//!
//! All of it is cheap enough to leave on: counters and histogram
//! records are single relaxed atomic RMWs; an unsampled span costs two
//! `Instant` reads plus one sink call at end.

pub mod aggregate;
pub mod metrics;
pub mod recorder;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, HISTOGRAM_BUCKETS};
pub use recorder::{
    render_tree, FlightRecorder, RecorderConfig, RecorderStats, StitchSpan, TraceTree,
};
pub use trace::{
    FieldValue, JsonSink, MultiSink, RingSink, Span, SpanRecord, SpanSink, TextSink, TraceContext,
    Tracer,
};

/// Escape a string for inclusion in a JSON string literal (shared by the
/// JSON span sink and callers embedding exposition text in JSON).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_controls_and_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }
}
