//! Merging several Prometheus-style text expositions into one.
//!
//! The cluster coordinator gathers one exposition per worker (plus its
//! own registry) and needs a single scrape body that shows both the
//! cluster totals and the per-shard breakdown. [`merge_expositions`]
//! does that purely textually: for every metric family it emits the
//! summed series first, then each source's series again with a
//! `shard="<label>"` label injected, so dashboards can graph either.
//!
//! One subtlety is histogram tails: [`crate::Registry::expose`] elides
//! trailing empty buckets, so two workers can disagree about which `le`
//! bounds exist. A worker missing a bound *above* its largest observed
//! value has, by cumulativity, all of its observations under that
//! bound — its `+Inf` count is the correct contribution there.

use std::collections::HashMap;

/// One parsed sample line: `name` or `name{labels}`, and its value.
#[derive(Debug, Clone)]
struct Sample {
    name: String,
    /// Label pairs without the surrounding braces (`le="4"`); empty
    /// when the series is unlabeled.
    labels: String,
    value: f64,
}

#[derive(Debug, Default)]
struct Family {
    help: String,
    typ: String,
    /// Per input part: that part's samples of this family, in order.
    per_part: Vec<(usize, Vec<Sample>)>,
}

/// Merge labeled expositions into one body: per family, summed series
/// followed by per-source series labeled `shard="<label>"`.
pub fn merge_expositions(parts: &[(String, String)]) -> String {
    let mut order: Vec<String> = Vec::new();
    let mut families: HashMap<String, Family> = HashMap::new();

    for (part_idx, (_, text)) in parts.iter().enumerate() {
        let mut current: Option<String> = None;
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, help) = match rest.split_once(' ') {
                    Some((n, h)) => (n.to_string(), h.to_string()),
                    None => (rest.to_string(), String::new()),
                };
                let fam = fetch(&mut families, &mut order, &name);
                if fam.help.is_empty() {
                    fam.help = help;
                }
                current = Some(name);
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, typ) = match rest.split_once(' ') {
                    Some((n, t)) => (n.to_string(), t.to_string()),
                    None => (rest.to_string(), String::new()),
                };
                let fam = fetch(&mut families, &mut order, &name);
                if fam.typ.is_empty() {
                    fam.typ = typ;
                }
                current = Some(name);
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let Some(sample) = parse_sample(line) else {
                continue;
            };
            // A sample belongs to the family whose header preceded it;
            // headerless strays get an implicit untyped family.
            let family_name = match &current {
                Some(f) if sample.name == *f || sample.name.starts_with(&format!("{f}_")) => {
                    f.clone()
                }
                _ => sample.name.clone(),
            };
            let fam = fetch(&mut families, &mut order, &family_name);
            match fam.per_part.last_mut() {
                Some((idx, samples)) if *idx == part_idx => samples.push(sample),
                _ => fam.per_part.push((part_idx, vec![sample])),
            }
        }
    }

    let mut out = String::new();
    for name in &order {
        let fam = &families[name];
        out.push_str(&format!("# HELP {name} {}\n", fam.help));
        let typ = if fam.typ.is_empty() {
            "untyped"
        } else {
            &fam.typ
        };
        out.push_str(&format!("# TYPE {name} {typ}\n"));
        if typ == "histogram" {
            emit_summed_histogram(&mut out, name, fam);
        } else {
            emit_summed_generic(&mut out, fam);
        }
        for (part_idx, samples) in &fam.per_part {
            let shard = &parts[*part_idx].0;
            for s in samples {
                let labels = if s.labels.is_empty() {
                    format!("shard=\"{shard}\"")
                } else {
                    format!("shard=\"{shard}\",{}", s.labels)
                };
                out.push_str(&format!("{}{{{labels}}} {}\n", s.name, fmt(s.value)));
            }
        }
    }
    out
}

fn fetch<'a>(
    families: &'a mut HashMap<String, Family>,
    order: &mut Vec<String>,
    name: &str,
) -> &'a mut Family {
    if !families.contains_key(name) {
        order.push(name.to_string());
        families.insert(name.to_string(), Family::default());
    }
    families.get_mut(name).unwrap()
}

fn parse_sample(line: &str) -> Option<Sample> {
    let (series, value) = line.rsplit_once(' ')?;
    let value: f64 = value.parse().ok()?;
    match series.split_once('{') {
        Some((name, labels)) => Some(Sample {
            name: name.to_string(),
            labels: labels.strip_suffix('}')?.to_string(),
            value,
        }),
        None => Some(Sample {
            name: series.to_string(),
            labels: String::new(),
            value,
        }),
    }
}

/// Sum series across parts, keyed by `(name, labels)`, preserving
/// first-seen order.
fn emit_summed_generic(out: &mut String, fam: &Family) {
    let mut order: Vec<(String, String)> = Vec::new();
    let mut sums: HashMap<(String, String), f64> = HashMap::new();
    for (_, samples) in &fam.per_part {
        for s in samples {
            let key = (s.name.clone(), s.labels.clone());
            if let Some(total) = sums.get_mut(&key) {
                *total += s.value;
            } else {
                sums.insert(key.clone(), s.value);
                order.push(key);
            }
        }
    }
    for key in &order {
        let series = if key.1.is_empty() {
            key.0.clone()
        } else {
            format!("{}{{{}}}", key.0, key.1)
        };
        out.push_str(&format!("{series} {}\n", fmt(sums[key])));
    }
}

/// Sum a histogram family across parts over the *union* of bucket
/// bounds, crediting each part's `+Inf` count at any bound above its
/// own elided tail.
fn emit_summed_histogram(out: &mut String, name: &str, fam: &Family) {
    let bucket_name = format!("{name}_bucket");
    let sum_name = format!("{name}_sum");
    let count_name = format!("{name}_count");

    // Per part: finite (le, cumulative) pairs, +Inf count, _sum, _count.
    struct PartHist {
        finite: Vec<(u64, f64)>,
        inf: f64,
        sum: f64,
        count: f64,
    }
    let mut hists: Vec<PartHist> = Vec::new();
    let mut union: Vec<u64> = Vec::new();
    for (_, samples) in &fam.per_part {
        let mut h = PartHist {
            finite: Vec::new(),
            inf: 0.0,
            sum: 0.0,
            count: 0.0,
        };
        for s in samples {
            if s.name == bucket_name {
                match le_bound(&s.labels) {
                    Some(LeBound::Finite(le)) => {
                        if !union.contains(&le) {
                            union.push(le);
                        }
                        h.finite.push((le, s.value));
                    }
                    Some(LeBound::Inf) => h.inf = s.value,
                    None => {}
                }
            } else if s.name == sum_name {
                h.sum = s.value;
            } else if s.name == count_name {
                h.count = s.value;
            }
        }
        h.finite.sort_by_key(|&(le, _)| le);
        hists.push(h);
    }
    union.sort_unstable();

    // A part's cumulative count at a bound it never emitted: past its
    // elided tail everything it observed is below the bound (+Inf
    // count); between its recorded bounds the largest bound below
    // carries the cumulative count; below its first bound it is 0.
    fn cumulative_at(h: &PartHist, le: u64) -> f64 {
        match h.finite.last() {
            None => h.inf,
            Some(&(max, _)) if le > max => h.inf,
            _ => h
                .finite
                .iter()
                .rev()
                .find(|&&(b, _)| b <= le)
                .map_or(0.0, |&(_, v)| v),
        }
    }
    for &le in &union {
        let total: f64 = hists.iter().map(|h| cumulative_at(h, le)).sum();
        out.push_str(&format!("{bucket_name}{{le=\"{le}\"}} {}\n", fmt(total)));
    }
    let inf: f64 = hists.iter().map(|h| h.inf).sum();
    let sum: f64 = hists.iter().map(|h| h.sum).sum();
    let count: f64 = hists.iter().map(|h| h.count).sum();
    out.push_str(&format!("{bucket_name}{{le=\"+Inf\"}} {}\n", fmt(inf)));
    out.push_str(&format!("{sum_name} {}\n", fmt(sum)));
    out.push_str(&format!("{count_name} {}\n", fmt(count)));
}

enum LeBound {
    Finite(u64),
    Inf,
}

fn le_bound(labels: &str) -> Option<LeBound> {
    for pair in labels.split(',') {
        if let Some(v) = pair.trim().strip_prefix("le=\"") {
            let v = v.strip_suffix('"')?;
            return if v == "+Inf" {
                Some(LeBound::Inf)
            } else {
                v.parse().ok().map(LeBound::Finite)
            };
        }
    }
    None
}

/// Integral values print without a decimal point, matching
/// [`crate::Registry::expose`] output for counters and gauges.
fn fmt(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_counters_and_labels_per_shard_series() {
        let a = "# HELP tsa_jobs_total Jobs.\n# TYPE tsa_jobs_total counter\ntsa_jobs_total 3\n";
        let b = "# HELP tsa_jobs_total Jobs.\n# TYPE tsa_jobs_total counter\ntsa_jobs_total 4\n";
        let merged = merge_expositions(&[("0".into(), a.into()), ("1".into(), b.into())]);
        assert!(merged.contains("# HELP tsa_jobs_total Jobs.\n"));
        assert!(
            merged.contains("\ntsa_jobs_total 7\n") || merged.starts_with("tsa_jobs_total 7\n")
        );
        assert!(merged.contains("tsa_jobs_total{shard=\"0\"} 3\n"));
        assert!(merged.contains("tsa_jobs_total{shard=\"1\"} 4\n"));
    }

    #[test]
    fn histogram_merge_credits_elided_tails_at_higher_bounds() {
        // Part 0 observed only small values: its exposition stops at
        // le="2". Part 1 reaches le="8". At le="4" and le="8", part 0
        // must contribute its full count (3), not zero.
        let a = concat!(
            "# HELP lat_us Latency.\n# TYPE lat_us histogram\n",
            "lat_us_bucket{le=\"1\"} 1\n",
            "lat_us_bucket{le=\"2\"} 3\n",
            "lat_us_bucket{le=\"+Inf\"} 3\n",
            "lat_us_sum 5\nlat_us_count 3\n"
        );
        let b = concat!(
            "# HELP lat_us Latency.\n# TYPE lat_us histogram\n",
            "lat_us_bucket{le=\"1\"} 0\n",
            "lat_us_bucket{le=\"2\"} 1\n",
            "lat_us_bucket{le=\"4\"} 1\n",
            "lat_us_bucket{le=\"8\"} 2\n",
            "lat_us_bucket{le=\"+Inf\"} 2\n",
            "lat_us_sum 13\nlat_us_count 2\n"
        );
        let merged = merge_expositions(&[("0".into(), a.into()), ("1".into(), b.into())]);
        assert!(merged.contains("lat_us_bucket{le=\"1\"} 1\n"), "{merged}");
        assert!(merged.contains("lat_us_bucket{le=\"2\"} 4\n"), "{merged}");
        assert!(merged.contains("lat_us_bucket{le=\"4\"} 4\n"), "{merged}");
        assert!(merged.contains("lat_us_bucket{le=\"8\"} 5\n"), "{merged}");
        assert!(
            merged.contains("lat_us_bucket{le=\"+Inf\"} 5\n"),
            "{merged}"
        );
        assert!(merged.contains("lat_us_sum 18\n"));
        assert!(merged.contains("lat_us_count 5\n"));
        assert!(merged.contains("lat_us_bucket{shard=\"1\",le=\"8\"} 2\n"));
    }

    #[test]
    fn empty_expositions_merge_to_nothing() {
        assert_eq!(merge_expositions(&[]), "");
        assert_eq!(
            merge_expositions(&[("0".into(), String::new()), ("1".into(), "\n\n".into())]),
            ""
        );
    }

    #[test]
    fn empty_part_does_not_perturb_a_real_one() {
        let a = "# HELP up Up.\n# TYPE up gauge\nup 1\n";
        let merged = merge_expositions(&[("0".into(), a.into()), ("1".into(), String::new())]);
        assert!(merged.contains("\nup 1\n"));
        assert!(merged.contains("up{shard=\"0\"} 1\n"));
        assert!(!merged.contains("shard=\"1\""));
    }

    #[test]
    fn single_shard_passthrough_keeps_every_value() {
        let a = concat!(
            "# HELP tsa_jobs_total Jobs.\n# TYPE tsa_jobs_total counter\n",
            "tsa_jobs_total 9\n",
            "# HELP lat_us Latency.\n# TYPE lat_us histogram\n",
            "lat_us_bucket{le=\"1\"} 2\n",
            "lat_us_bucket{le=\"+Inf\"} 4\n",
            "lat_us_sum 7\nlat_us_count 4\n"
        );
        let merged = merge_expositions(&[("solo".into(), a.into())]);
        // The summed series of one part is that part, verbatim values.
        assert!(merged.contains("\ntsa_jobs_total 9\n"));
        assert!(merged.contains("lat_us_bucket{le=\"1\"} 2\n"), "{merged}");
        assert!(merged.contains("lat_us_bucket{le=\"+Inf\"} 4\n"));
        assert!(merged.contains("lat_us_sum 7\n"));
        assert!(merged.contains("lat_us_count 4\n"));
        // ... plus the shard-labeled copy of each series.
        assert!(merged.contains("tsa_jobs_total{shard=\"solo\"} 9\n"));
        assert!(merged.contains("lat_us_bucket{shard=\"solo\",le=\"1\"} 2\n"));
    }

    #[test]
    fn disjoint_bucket_sets_merge_over_the_union() {
        // No shared finite bound at all: part 0 stops at le="2", part 1
        // starts at le="4". Every union bound must interpolate the
        // other part correctly — 0 below its first bound, its +Inf
        // count above its elided tail.
        let a = concat!(
            "# HELP lat_us Latency.\n# TYPE lat_us histogram\n",
            "lat_us_bucket{le=\"1\"} 1\n",
            "lat_us_bucket{le=\"2\"} 3\n",
            "lat_us_bucket{le=\"+Inf\"} 3\n",
            "lat_us_sum 5\nlat_us_count 3\n"
        );
        let b = concat!(
            "# HELP lat_us Latency.\n# TYPE lat_us histogram\n",
            "lat_us_bucket{le=\"4\"} 1\n",
            "lat_us_bucket{le=\"8\"} 2\n",
            "lat_us_bucket{le=\"+Inf\"} 2\n",
            "lat_us_sum 11\nlat_us_count 2\n"
        );
        let merged = merge_expositions(&[("0".into(), a.into()), ("1".into(), b.into())]);
        // le=1,2: part 1 contributes 0 (below its first bound).
        assert!(merged.contains("lat_us_bucket{le=\"1\"} 1\n"), "{merged}");
        assert!(merged.contains("lat_us_bucket{le=\"2\"} 3\n"), "{merged}");
        // le=4,8: part 0's tail was elided, so its +Inf count (3) counts.
        assert!(merged.contains("lat_us_bucket{le=\"4\"} 4\n"), "{merged}");
        assert!(merged.contains("lat_us_bucket{le=\"8\"} 5\n"), "{merged}");
        assert!(merged.contains("lat_us_bucket{le=\"+Inf\"} 5\n"));
        assert!(merged.contains("lat_us_sum 16\n"));
        assert!(merged.contains("lat_us_count 5\n"));
    }

    #[test]
    fn golden_merge_of_recorder_families_and_breaker_gauges() {
        // Byte-exact golden: the coordinator part carries the breaker
        // gauge plus its own flight-recorder families; a worker part
        // carries only recorder families. Family order in the merged
        // exposition must be first-seen order across parts, each family
        // emitting summed series before shard-labeled copies — any
        // reordering or reformatting regression fails the comparison.
        let coordinator = concat!(
            "# HELP tsa_cluster_breaker_state Breaker state per member (0 closed, 1 open, 2 half-open).\n",
            "# TYPE tsa_cluster_breaker_state gauge\n",
            "tsa_cluster_breaker_state{member=\"0\"} 0\n",
            "tsa_cluster_breaker_state{member=\"1\"} 2\n",
            "# HELP tsa_recorder_traces_total Distributed traces completed (root span recorded).\n",
            "# TYPE tsa_recorder_traces_total counter\n",
            "tsa_recorder_traces_total 6\n",
            "# HELP tsa_recorder_retained_total Completed traces admitted to the flight-recorder ring.\n",
            "# TYPE tsa_recorder_retained_total counter\n",
            "tsa_recorder_retained_total 4\n",
            "# HELP tsa_recorder_sampled_out_total Clean traces dropped by probabilistic sampling.\n",
            "# TYPE tsa_recorder_sampled_out_total counter\n",
            "tsa_recorder_sampled_out_total 2\n",
            "# HELP tsa_recorder_evicted_total Traces pushed out of the ring or pending buffer by the bound.\n",
            "# TYPE tsa_recorder_evicted_total counter\n",
            "tsa_recorder_evicted_total 0\n",
            "# HELP tsa_recorder_pending_traces Traces buffered awaiting their root span.\n",
            "# TYPE tsa_recorder_pending_traces gauge\n",
            "tsa_recorder_pending_traces 1\n",
        );
        let worker = concat!(
            "# HELP tsa_recorder_traces_total Distributed traces completed (root span recorded).\n",
            "# TYPE tsa_recorder_traces_total counter\n",
            "tsa_recorder_traces_total 3\n",
            "# HELP tsa_recorder_retained_total Completed traces admitted to the flight-recorder ring.\n",
            "# TYPE tsa_recorder_retained_total counter\n",
            "tsa_recorder_retained_total 3\n",
            "# HELP tsa_recorder_sampled_out_total Clean traces dropped by probabilistic sampling.\n",
            "# TYPE tsa_recorder_sampled_out_total counter\n",
            "tsa_recorder_sampled_out_total 0\n",
            "# HELP tsa_recorder_evicted_total Traces pushed out of the ring or pending buffer by the bound.\n",
            "# TYPE tsa_recorder_evicted_total counter\n",
            "tsa_recorder_evicted_total 1\n",
            "# HELP tsa_recorder_pending_traces Traces buffered awaiting their root span.\n",
            "# TYPE tsa_recorder_pending_traces gauge\n",
            "tsa_recorder_pending_traces 0\n",
        );
        let merged = merge_expositions(&[
            ("coordinator".into(), coordinator.into()),
            ("0".into(), worker.into()),
        ]);
        let golden = concat!(
            "# HELP tsa_cluster_breaker_state Breaker state per member (0 closed, 1 open, 2 half-open).\n",
            "# TYPE tsa_cluster_breaker_state gauge\n",
            "tsa_cluster_breaker_state{member=\"0\"} 0\n",
            "tsa_cluster_breaker_state{member=\"1\"} 2\n",
            "tsa_cluster_breaker_state{shard=\"coordinator\",member=\"0\"} 0\n",
            "tsa_cluster_breaker_state{shard=\"coordinator\",member=\"1\"} 2\n",
            "# HELP tsa_recorder_traces_total Distributed traces completed (root span recorded).\n",
            "# TYPE tsa_recorder_traces_total counter\n",
            "tsa_recorder_traces_total 9\n",
            "tsa_recorder_traces_total{shard=\"coordinator\"} 6\n",
            "tsa_recorder_traces_total{shard=\"0\"} 3\n",
            "# HELP tsa_recorder_retained_total Completed traces admitted to the flight-recorder ring.\n",
            "# TYPE tsa_recorder_retained_total counter\n",
            "tsa_recorder_retained_total 7\n",
            "tsa_recorder_retained_total{shard=\"coordinator\"} 4\n",
            "tsa_recorder_retained_total{shard=\"0\"} 3\n",
            "# HELP tsa_recorder_sampled_out_total Clean traces dropped by probabilistic sampling.\n",
            "# TYPE tsa_recorder_sampled_out_total counter\n",
            "tsa_recorder_sampled_out_total 2\n",
            "tsa_recorder_sampled_out_total{shard=\"coordinator\"} 2\n",
            "tsa_recorder_sampled_out_total{shard=\"0\"} 0\n",
            "# HELP tsa_recorder_evicted_total Traces pushed out of the ring or pending buffer by the bound.\n",
            "# TYPE tsa_recorder_evicted_total counter\n",
            "tsa_recorder_evicted_total 1\n",
            "tsa_recorder_evicted_total{shard=\"coordinator\"} 0\n",
            "tsa_recorder_evicted_total{shard=\"0\"} 1\n",
            "# HELP tsa_recorder_pending_traces Traces buffered awaiting their root span.\n",
            "# TYPE tsa_recorder_pending_traces gauge\n",
            "tsa_recorder_pending_traces 1\n",
            "tsa_recorder_pending_traces{shard=\"coordinator\"} 1\n",
            "tsa_recorder_pending_traces{shard=\"0\"} 0\n",
        );
        assert_eq!(merged, golden);
    }

    #[test]
    fn families_unique_to_one_part_still_appear() {
        let a = "# HELP only_a A.\n# TYPE only_a gauge\nonly_a 2\n";
        let b = "# HELP only_b B.\n# TYPE only_b gauge\nonly_b -1\n";
        let merged = merge_expositions(&[("x".into(), a.into()), ("y".into(), b.into())]);
        assert!(merged.contains("only_a 2\n"));
        assert!(merged.contains("only_a{shard=\"x\"} 2\n"));
        assert!(merged.contains("only_b -1\n"));
        assert!(merged.contains("only_b{shard=\"y\"} -1\n"));
    }
}
