//! Metrics registry: counters, gauges, and power-of-two histograms with
//! Prometheus-style text exposition.
//!
//! Handles are cheap `Arc` clones around atomics; recording never locks.
//! The registry itself is only locked to register a metric or to render
//! the exposition text, both cold paths.
//!
//! ## Family naming conventions
//!
//! Every family this workspace registers is prefixed `tsa_` and grouped
//! by subsystem so dashboards can glob them:
//!
//! * `tsa_jobs_*`, `tsa_queue_*`, `tsa_cache_*` — the service engine's
//!   throughput, queueing, and result-cache picture.
//! * `tsa_cluster_*` — coordinator-side families (routing, respawns,
//!   breaker state); per-worker series carry a `shard` label when the
//!   cluster merges expositions.
//! * `tsa_integrity_*` — result-integrity verification. The load-bearing
//!   family is `tsa_integrity_quarantined_total`: cached or
//!   journal-recovered results whose content checksum failed and were
//!   therefore quarantined and recomputed, never served. Any nonzero
//!   rate here means storage is corrupting data under the service.
//!   The count is durable: journal compaction carries the tally across
//!   worker restarts, so it is monotonic per state directory, not per
//!   process.
//!
//! The chaos harness (`tsa chaos run`) asserts over these families —
//! its quarantine-accounting invariant requires the cluster-summed
//! `tsa_integrity_quarantined_total` to equal the number of bit flips
//! it injected into journals that were subsequently replayed.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of power-of-two histogram buckets: bucket `i` counts values
/// `< 2^i` (bucket 0 counts zeros; the last bucket is open-ended).
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A counter not attached to any registry (for tests or scratch use).
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Add (possibly negative) `delta`.
    pub fn add(&self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

/// A power-of-two histogram over `u64` values (the service records
/// microseconds). One atomic increment per observation; bucket `i`
/// covers `[2^(i-1), 2^i)` with zeros landing in bucket 0.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Arc::new(HistInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }
}

/// Index of the bucket covering `value`: the smallest `i` with
/// `value < 2^i`, clamped to the open-ended last bucket.
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
}

impl Histogram {
    /// A histogram not attached to any registry.
    pub fn detached() -> Histogram {
        Histogram::default()
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration in whole microseconds.
    pub fn record_duration_us(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Point-in-time copy of the buckets, sum, and count.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .inner
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.inner.sum.load(Ordering::Relaxed),
            count: self.inner.count.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (`buckets[i]` counts values in `[2^(i-1), 2^i)`).
    pub buckets: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Upper bound of the bucket containing quantile `q` (0 when empty).
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        quantile_upper_bound(&self.buckets, q)
    }
}

/// Upper bound (`2^i`) of the power-of-two bucket containing quantile
/// `q`; 0 when the histogram is empty.
pub fn quantile_upper_bound(buckets: &[u64], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = (q * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= rank {
            return 1u64 << i.min(63);
        }
    }
    1u64 << (buckets.len() - 1).min(63)
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn type_name(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    name: String,
    help: String,
    instrument: Instrument,
}

/// An ordered collection of named metrics. Registration order is
/// exposition order, so output is stable for golden tests. Registering
/// the same name twice returns a handle to the existing metric (the
/// kinds must match).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    entries: Arc<Mutex<Vec<Entry>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register(&self, name: &str, help: &str, instrument: Instrument) -> Instrument {
        let mut entries = self.entries.lock().unwrap();
        if let Some(existing) = entries.iter().find(|e| e.name == name) {
            assert_eq!(
                existing.instrument.type_name(),
                instrument.type_name(),
                "metric {name:?} re-registered with a different type"
            );
            return existing.instrument.clone();
        }
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            instrument: instrument.clone(),
        });
        instrument
    }

    /// Register (or look up) a counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        match self.register(name, help, Instrument::Counter(Counter::default())) {
            Instrument::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        match self.register(name, help, Instrument::Gauge(Gauge::default())) {
            Instrument::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Register (or look up) a histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        match self.register(name, help, Instrument::Histogram(Histogram::default())) {
            Instrument::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Render every metric as Prometheus-style text exposition: `# HELP`
    /// and `# TYPE` lines followed by samples. Histograms emit cumulative
    /// `_bucket{le="2^i"}` lines (bucket bounds are exclusive powers of
    /// two, approximated as inclusive `le` values), then `_sum` and
    /// `_count`. Trailing all-empty buckets are elided after the first
    /// bucket at or beyond the largest observed value.
    pub fn expose(&self) -> String {
        let entries = self.entries.lock().unwrap();
        let mut out = String::new();
        for e in entries.iter() {
            out.push_str(&format!("# HELP {} {}\n", e.name, e.help));
            out.push_str(&format!("# TYPE {} {}\n", e.name, e.instrument.type_name()));
            match &e.instrument {
                Instrument::Counter(c) => out.push_str(&format!("{} {}\n", e.name, c.get())),
                Instrument::Gauge(g) => out.push_str(&format!("{} {}\n", e.name, g.get())),
                Instrument::Histogram(h) => {
                    let snap = h.snapshot();
                    let last_used = snap
                        .buckets
                        .iter()
                        .rposition(|&c| c > 0)
                        .unwrap_or(0)
                        .max(1);
                    let mut cumulative = 0u64;
                    for (i, &count) in snap.buckets.iter().enumerate().take(last_used + 1) {
                        cumulative += count;
                        out.push_str(&format!(
                            "{}_bucket{{le=\"{}\"}} {}\n",
                            e.name,
                            1u64 << i.min(63),
                            cumulative
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{{le=\"+Inf\"}} {}\n",
                        e.name, snap.count
                    ));
                    out.push_str(&format!("{}_sum {}\n", e.name, snap.sum));
                    out.push_str(&format!("{}_count {}\n", e.name, snap.count));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("c_total", "a counter");
        let g = reg.gauge("g", "a gauge");
        c.inc();
        c.add(4);
        g.set(7);
        g.add(-2);
        assert_eq!(c.get(), 5);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn reregistration_returns_same_instrument() {
        let reg = Registry::new();
        let a = reg.counter("dup_total", "help");
        let b = reg.counter("dup_total", "ignored");
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(reg.expose().matches("dup_total").count(), 3); // HELP, TYPE, sample
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn reregistration_with_kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x", "h");
        reg.gauge("x", "h");
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::detached();
        h.record(0); // bucket 0
        h.record(3); // bucket 2 (<4)
        h.record(1000); // bucket 10 (<1024)
        let snap = h.snapshot();
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[2], 1);
        assert_eq!(snap.buckets[10], 1);
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, 1003);
        assert_eq!(snap.quantile_upper_bound(0.5), 4);
    }

    #[test]
    fn histogram_records_durations_in_micros() {
        let h = Histogram::detached();
        h.record_duration_us(Duration::from_micros(999));
        assert_eq!(h.snapshot().sum, 999);
    }

    #[test]
    fn quantiles_from_buckets() {
        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        buckets[3] = 90; // <8us
        buckets[8] = 10; // <256us
        assert_eq!(quantile_upper_bound(&buckets, 0.50), 8);
        assert_eq!(quantile_upper_bound(&buckets, 0.90), 8);
        assert_eq!(quantile_upper_bound(&buckets, 0.99), 256);
        assert_eq!(quantile_upper_bound(&[0; 4], 0.5), 0);
    }

    #[test]
    fn exposition_shape_is_prometheus_like() {
        let reg = Registry::new();
        reg.counter("jobs_total", "Jobs.").add(2);
        let h = reg.histogram("lat_us", "Latency.");
        h.record(3);
        h.record(100);
        let text = reg.expose();
        assert!(text.contains("# HELP jobs_total Jobs.\n"));
        assert!(text.contains("# TYPE jobs_total counter\n"));
        assert!(text.contains("jobs_total 2\n"));
        assert!(text.contains("# TYPE lat_us histogram\n"));
        assert!(text.contains("lat_us_bucket{le=\"4\"} 1\n"));
        assert!(text.contains("lat_us_bucket{le=\"128\"} 2\n"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("lat_us_sum 103\n"));
        assert!(text.contains("lat_us_count 2\n"));
        // Cumulative bucket counts never decrease.
        let mut prev = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{le=\"")) {
            if line.contains("+Inf") {
                continue;
            }
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= prev);
            prev = v;
        }
    }

    /// Golden rendering: the exposition is byte-for-byte stable —
    /// registration order, HELP/TYPE lines, cumulative buckets, elided
    /// tail. Scrapers and the CI accounting check rely on this shape.
    #[test]
    fn exposition_golden() {
        let reg = Registry::new();
        reg.counter("jobs_total", "Jobs handled.").add(7);
        reg.gauge("depth", "Queue depth.").set(2);
        let h = reg.histogram("lat_us", "Latency, microseconds.");
        h.record(0); // bucket 0
        h.record(3); // bucket 2
        h.record(5); // bucket 3
        let want = "\
# HELP jobs_total Jobs handled.
# TYPE jobs_total counter
jobs_total 7
# HELP depth Queue depth.
# TYPE depth gauge
depth 2
# HELP lat_us Latency, microseconds.
# TYPE lat_us histogram
lat_us_bucket{le=\"1\"} 1
lat_us_bucket{le=\"2\"} 1
lat_us_bucket{le=\"4\"} 2
lat_us_bucket{le=\"8\"} 3
lat_us_bucket{le=\"+Inf\"} 3
lat_us_sum 8
lat_us_count 3
";
        assert_eq!(reg.expose(), want);
    }

    #[test]
    fn empty_histogram_still_exposes_inf_bucket() {
        let reg = Registry::new();
        reg.histogram("empty_us", "Nothing recorded.");
        let text = reg.expose();
        assert!(text.contains("empty_us_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("empty_us_count 0\n"));
    }
}
