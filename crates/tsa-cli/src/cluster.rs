//! `tsa cluster` — coordinator front end over [`tsa_cluster`].
//!
//! Spawns/attaches the worker set, prints the topology, then either
//! runs one batch through the cluster (default: stdin) or serves the
//! NDJSON protocol over TCP through the poll(2) event-loop front door.

use std::io::Read;
use std::time::Duration;

use crate::args::ClusterArgs;
use tsa_cluster::{ClusterConfig, Coordinator};

pub fn run_cluster(c: ClusterArgs) -> Result<(), String> {
    let config = ClusterConfig {
        binary: None, // workers re-execute this binary
        workers: c.workers,
        attach: c.attach.clone(),
        state_dir: c.state_dir.as_ref().map(std::path::PathBuf::from),
        worker_threads: c.worker_threads,
        queue: c.queue,
        cache: c.cache,
        deadline_ms: c.deadline_ms,
        kernel: c.kernel.clone(),
        heartbeat: Duration::from_millis(c.heartbeat_ms),
        breaker_threshold: c.breaker_threshold,
        breaker_cooldown: Duration::from_millis(c.breaker_cooldown_ms),
        retry_budget: c.retry_budget,
        hedge_after_ms: c.hedge_after_ms,
        client_rate: c.client_rate,
        max_in_flight_per_client: c.max_in_flight_per_client,
        flight_recorder: c.flight_recorder,
        slow_ms: c.slow_ms,
        trace_sample: c.trace_sample,
    };
    let coordinator = Coordinator::start(config).map_err(|e| format!("cluster: {e}"))?;
    for (shard, addr, spawned) in coordinator.topology() {
        let kind = if spawned { "spawned" } else { "attached" };
        eprintln!("# tsa cluster: shard {shard} {kind} at {addr}");
    }

    match &c.listen {
        Some(addr) => {
            let listener =
                std::net::TcpListener::bind(addr).map_err(|e| format!("cluster: {addr}: {e}"))?;
            let bound = listener.local_addr().map_err(|e| format!("cluster: {e}"))?;
            eprintln!("# tsa cluster: listening on {bound}");
            let options = tsa_cluster::FrontOptions {
                idle_timeout: (c.idle_timeout_ms > 0)
                    .then(|| Duration::from_millis(c.idle_timeout_ms)),
            };
            tsa_cluster::serve_front_with(&coordinator, listener, options)
                .map_err(|e| format!("cluster: {e}"))?;
        }
        None => {
            let input = match c.batch.as_deref() {
                Some("-") | None => {
                    let mut buf = String::new();
                    std::io::stdin()
                        .read_to_string(&mut buf)
                        .map_err(|e| format!("cluster: stdin: {e}"))?;
                    buf
                }
                Some(path) => {
                    std::fs::read_to_string(path).map_err(|e| format!("cluster: {path}: {e}"))?
                }
            };
            let mut stdout = std::io::stdout().lock();
            let summary = tsa_cluster::run_batch(&coordinator, &input, &mut stdout)
                .map_err(|e| format!("cluster: {e}"))?;
            let line = coordinator.shutdown("shutdown");
            eprintln!("{line}");
            eprintln!("# batch outcomes: {summary}");
            crate::commands::report_flagged(&summary.flagged);
            if !summary.all_ok() {
                return Err(format!("batch had non-success outcomes: {summary}"));
            }
        }
    }
    Ok(())
}
